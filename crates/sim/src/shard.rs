//! Multi-threaded driver for the packed kernel: one worker per shard,
//! conservative time-window barriers, deterministic by construction.
//!
//! # Protocol
//!
//! Every message in the packed kernel takes at least one tick, so a shard
//! that has processed every event at tick `t` cannot receive anything new
//! *for* tick `t` — the lookahead window is one tick. The drive loop is
//! therefore lock-step per populated tick:
//!
//! 1. each worker processes its local events at tick `t`, appending
//!    cross-shard events (with their delivery ticks) to per-destination
//!    outboxes — the "batched event horizon" exchange;
//! 2. **barrier A** — all outboxes complete;
//! 3. each worker drains the inboxes addressed to it into its timer wheel
//!    and publishes the earliest tick it now has scheduled;
//! 4. **barrier B** — all published; every worker independently computes
//!    the same global minimum and jumps there (empty ticks are skipped
//!    entirely, so quiescing runs cost no idle barriers).
//!
//! # Why the result is shard-count invariant
//!
//! Each event is processed by the one shard owning its target, at the same
//! tick, in the same canonical intra-tick order (packed words sort by
//! `(to, kind, slot, aux)` regardless of which shard produced them), with
//! delays that are stateless hashes of per-channel history. By induction
//! over populated ticks, the global state sequence — and hence the merged
//! report — is identical for every shard count, and trivially identical
//! across reruns. [`ScaleRunReport::fingerprint`] is the gate.

use crate::packed::PackedKernel;
pub use crate::packed::{EatExcerpt, ScaleConfig, ScaleRunReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Runs the kernel to quiescence (or its horizon) with one OS thread per
/// shard, returning the merged report. With a single shard no threads are
/// spawned. The result is bit-identical to
/// [`PackedKernel::run_sequential`] on the same kernel.
pub fn run_sharded(kernel: PackedKernel) -> ScaleRunReport {
    let started = std::time::Instant::now();
    let k = kernel.shards.len();
    if k == 1 {
        let mut report = kernel.run_sequential();
        report.wall_nanos = started.elapsed().as_nanos().max(1);
        return report;
    }
    let cfg = kernel.config.clone();
    let colors = kernel.colors();
    let horizon = cfg.horizon;
    let mut kernel = kernel;
    let owner = std::mem::take(&mut kernel.owner);

    // mailboxes[src][dst]: events src produced for dst in the current
    // window. Only src writes before barrier A; only dst drains after it,
    // so every lock is uncontended — the Mutex exists to satisfy the
    // compiler's aliasing rules, not to arbitrate.
    type Mailbox = Mutex<Vec<(u64, u64)>>;
    let mailboxes: Vec<Vec<Mailbox>> = (0..k)
        .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    // next_at[s]: earliest pending tick in shard s, published in step 3.
    let next_at: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(k);

    let shard_states: Vec<_> = std::mem::take(&mut kernel.shards);
    let finished: Vec<Mutex<Option<crate::packed::ShardHandle>>> =
        (0..k).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (sid, mut shard) in shard_states.into_iter().enumerate() {
            let cfg = &cfg;
            let colors = &colors;
            let owner = &owner;
            let mailboxes = &mailboxes;
            let next_at = &next_at;
            let barrier = &barrier;
            let finished = &finished;
            scope.spawn(move || {
                let mut out: Vec<Vec<(u64, u64)>> = (0..k).map(|_| Vec::new()).collect();
                let mut now = 0u64;
                // Prime the consensus with the pre-scheduled first hungers.
                next_at[sid].store(shard.next_event_after(0), Ordering::Relaxed);
                barrier.wait();
                loop {
                    let next = (0..k)
                        .map(|s| next_at[s].load(Ordering::Relaxed))
                        .min()
                        .expect("at least one shard");
                    if next == u64::MAX || next > horizon {
                        break;
                    }
                    now = next;
                    shard.process_tick(cfg, colors, owner, now, &mut out);
                    for (dst, batch) in out.iter_mut().enumerate() {
                        if !batch.is_empty() {
                            mailboxes[sid][dst]
                                .lock()
                                .expect("mailbox lock")
                                .append(batch);
                        }
                    }
                    barrier.wait(); // A: all outboxes complete
                    for row in mailboxes.iter() {
                        let mut inbox = row[sid].lock().expect("mailbox lock");
                        shard.accept(now, &mut inbox);
                    }
                    next_at[sid].store(shard.next_event_after(now), Ordering::Relaxed);
                    barrier.wait(); // B: all minima published
                }
                *finished[sid].lock().expect("result lock") = Some(shard.into_handle(now));
            });
        }
    });

    let shards = finished
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker finished")
        })
        .collect::<Vec<_>>();
    kernel.owner = owner;
    let final_tick = shards.iter().map(|h| h.final_tick).max().unwrap_or(0);
    kernel.shards = shards.into_iter().map(|h| h.state).collect();
    kernel.into_report(final_tick, started.elapsed().as_nanos().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::partition::greedy_edge_cut;
    use ekbd_graph::{coloring, random, topology, ConflictGraph};

    fn kernel(g: &ConflictGraph, shards: usize, seed: u64) -> PackedKernel {
        let colors: Vec<u32> = coloring::greedy(g);
        let part = greedy_edge_cut(g, shards);
        PackedKernel::new(g, &colors, &part, ScaleConfig::default().seed(seed))
    }

    #[test]
    fn sequential_matches_threaded_on_ring() {
        let g = topology::ring(24);
        let seq = kernel(&g, 3, 7).run_sequential();
        let thr = run_sharded(kernel(&g, 3, 7));
        assert_eq!(seq.fingerprint(), thr.fingerprint());
        assert_eq!(seq.eats, thr.eats);
    }

    #[test]
    fn fingerprint_is_shard_count_invariant() {
        let g = random::connected_gnp(60, 0.08, 3);
        let one = run_sharded(kernel(&g, 1, 5));
        assert!(
            one.verdict(),
            "fault-free run must pass: {}",
            one.fingerprint()
        );
        for shards in [2, 3, 4, 8] {
            let many = run_sharded(kernel(&g, shards, 5));
            assert_eq!(
                one.fingerprint(),
                many.fingerprint(),
                "shards={shards} diverged"
            );
            assert_eq!(one.eats, many.eats);
        }
    }

    #[test]
    fn reruns_are_byte_identical() {
        let g = random::powerlaw(80, 3, 11);
        let a = run_sharded(kernel(&g, 4, 9));
        let b = run_sharded(kernel(&g, 4, 9));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.excerpts, b.excerpts);
    }

    #[test]
    fn every_process_completes_its_sessions() {
        let g = topology::grid(6, 5);
        let r = run_sharded(kernel(&g, 2, 2));
        assert!(r.verdict(), "{}", r.fingerprint());
        assert_eq!(r.starving, 0);
        assert!(r.eats.iter().all(|&e| e == ScaleConfig::default().sessions));
        assert_eq!(
            r.latency.count(),
            r.eats.iter().map(|&e| e as u64).sum::<u64>()
        );
        assert!(r.mistakes == 0);
        assert!(r.events > 0 && r.messages > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let g = topology::ring(16);
        let a = run_sharded(kernel(&g, 2, 1));
        let b = run_sharded(kernel(&g, 2, 2));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
