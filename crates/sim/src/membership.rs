//! Dynamic-membership fault stream: seeded join/leave schedules.
//!
//! The paper proves its guarantees on a *fixed* conflict graph; a
//! [`MembershipPlan`] makes the graph itself part of the fault model. The
//! maximum population is fixed at construction (process ids are dense
//! indices, as everywhere in the workspace), and membership is a presence
//! bit per process: a process whose plan starts with a [`join`] is
//! *initially absent* and boots mid-run; a present process may [`leave`]
//! gracefully (it gets a final [`NodeEvent::Leave`](crate::NodeEvent::Leave)
//! to drain held resources) or crash-stop out of the system
//! ([`crash_leave`]) without any warning to itself or its neighbors.
//!
//! The paper-level "leave then rejoin" is deliberately *not* expressible as
//! same-id membership events: rejoining under the same identity is the
//! crash/recovery fault stream ([`FaultPlan`](crate::FaultPlan), PR 3),
//! while membership models rejoin-as-a-*new*-id — a leave of the old id
//! plus a join of a fresh (initially absent) id. The plan validator
//! enforces this: at most one join and one leave per process, with the join
//! first. That restriction is what makes incremental recoloring inductively
//! safe (see `ekbd_graph::membership`).
//!
//! [`join`]: MembershipPlan::join
//! [`leave`]: MembershipPlan::leave
//! [`crash_leave`]: MembershipPlan::crash_leave

use crate::time::Time;
use crate::ProcessId;
use std::fmt;

/// One scheduled membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipEvent {
    /// An initially-absent process boots and joins the system.
    Join {
        /// The joining process.
        process: ProcessId,
        /// When the join fires.
        at: Time,
    },
    /// A present process leaves the system permanently.
    Leave {
        /// The departing process.
        process: ProcessId,
        /// When the leave fires.
        at: Time,
        /// Graceful leaves hand the node one final
        /// [`NodeEvent::Leave`](crate::NodeEvent::Leave) so it can drain
        /// (discharge forks, answer deferred requests); a crash-stop leave
        /// removes it with no warning at all.
        graceful: bool,
    },
}

impl MembershipEvent {
    /// The process this event targets.
    pub fn process(&self) -> ProcessId {
        match self {
            MembershipEvent::Join { process, .. } | MembershipEvent::Leave { process, .. } => {
                *process
            }
        }
    }

    /// When this event fires.
    pub fn at(&self) -> Time {
        match self {
            MembershipEvent::Join { at, .. } | MembershipEvent::Leave { at, .. } => *at,
        }
    }
}

/// Error returned by [`MembershipPlan::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipPlanError {
    /// An event targets a process outside `0..n`.
    OutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The population size.
        n: usize,
    },
    /// A process has more than one join scheduled.
    DuplicateJoin(ProcessId),
    /// A process has more than one leave scheduled.
    DuplicateLeave(ProcessId),
    /// A process is scheduled to rejoin under the same id (leave at or
    /// before its join): same-id rejoin is the crash/recovery fault
    /// stream, not membership.
    RejoinSameId(ProcessId),
}

impl fmt::Display for MembershipPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipPlanError::OutOfRange { process, n } => {
                write!(
                    f,
                    "membership event targets {process} in a population of {n}"
                )
            }
            MembershipPlanError::DuplicateJoin(p) => write!(f, "{p} has more than one join"),
            MembershipPlanError::DuplicateLeave(p) => write!(f, "{p} has more than one leave"),
            MembershipPlanError::RejoinSameId(p) => write!(
                f,
                "{p} would rejoin under the same id; use the crash/recovery \
                 fault stream for same-id rejoin, or join as a fresh id"
            ),
        }
    }
}

impl std::error::Error for MembershipPlanError {}

/// A deterministic schedule of join/leave events for one run.
///
/// Built with chained setters:
///
/// ```
/// use ekbd_sim::{MembershipPlan, ProcessId, Time};
/// let plan = MembershipPlan::new()
///     .join(ProcessId(5), Time(400))
///     .leave(ProcessId(1), Time(900))
///     .crash_leave(ProcessId(2), Time(1500));
/// assert!(!plan.is_inert());
/// plan.validate(6).unwrap();
/// assert_eq!(plan.initially_absent(6), vec![false, false, false, false, false, true]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// The empty plan: a fixed population for the whole run.
    pub fn new() -> Self {
        MembershipPlan::default()
    }

    /// Schedules the initially-absent process `p` to join at `t`.
    pub fn join(mut self, p: ProcessId, t: Time) -> Self {
        self.events
            .push(MembershipEvent::Join { process: p, at: t });
        self
    }

    /// Schedules `p` to leave gracefully at `t`: it receives one final
    /// `Leave` event to drain held resources before going silent.
    pub fn leave(mut self, p: ProcessId, t: Time) -> Self {
        self.events.push(MembershipEvent::Leave {
            process: p,
            at: t,
            graceful: true,
        });
        self
    }

    /// Schedules `p` to crash-stop out of the system at `t`: no drain, no
    /// warning — survivors must reclaim anything it held via the audit
    /// path.
    pub fn crash_leave(mut self, p: ProcessId, t: Time) -> Self {
        self.events.push(MembershipEvent::Leave {
            process: p,
            at: t,
            graceful: false,
        });
        self
    }

    /// Convenience for "leave-then-rejoin-as-a-new-id": `old` crash-stops
    /// at `t` and the fresh (initially absent) id `new` joins in its place
    /// at the same instant.
    pub fn replace(self, old: ProcessId, new: ProcessId, t: Time) -> Self {
        self.crash_leave(old, t).join(new, t)
    }

    /// Generates a seeded churn schedule over a population of `n`:
    /// roughly one membership event every `period` ticks until `horizon`,
    /// alternating joins of initially-absent processes with (mixed
    /// graceful/crash-stop) leaves of initially-present ones. About a
    /// quarter of the population churns in each direction; the rest is
    /// continuously present. Fully deterministic per `seed`.
    pub fn seeded_churn(n: usize, period: u64, horizon: Time, seed: u64) -> Self {
        let mut plan = MembershipPlan::new();
        if n < 4 || period == 0 {
            return plan;
        }
        let mut z = seed ^ 0xc84b_7a1e_55d1_9c3d;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        // Deterministic shuffle; the first quarter joins, the second leaves.
        let mut ids: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        let quarter = (n / 4).max(1);
        let joiners = &ids[..quarter];
        let leavers = &ids[quarter..2 * quarter];
        let (mut ji, mut li) = (0, 0);
        let mut t = period;
        let mut join_turn = true;
        while t < horizon.ticks() && (ji < joiners.len() || li < leavers.len()) {
            if join_turn && ji < joiners.len() {
                plan = plan.join(ProcessId::from(joiners[ji]), Time(t));
                ji += 1;
            } else if li < leavers.len() {
                let p = ProcessId::from(leavers[li]);
                li += 1;
                plan = if next() & 1 == 0 {
                    plan.leave(p, Time(t))
                } else {
                    plan.crash_leave(p, Time(t))
                };
            } else if ji < joiners.len() {
                plan = plan.join(ProcessId::from(joiners[ji]), Time(t));
                ji += 1;
            }
            join_turn = !join_turn;
            t += period + next() % (period / 2 + 1);
        }
        plan
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Whether this plan changes membership at all.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
    }

    /// Presence flags at time zero for a population of `n`: a process is
    /// initially absent iff it has a join scheduled (validation guarantees
    /// a join precedes any leave of the same process).
    pub fn initially_absent(&self, n: usize) -> Vec<bool> {
        let mut absent = vec![false; n];
        for ev in &self.events {
            if let MembershipEvent::Join { process, .. } = ev {
                if process.index() < n {
                    absent[process.index()] = true;
                }
            }
        }
        absent
    }

    /// The join time of `p`, if it has one scheduled.
    pub fn join_time(&self, p: ProcessId) -> Option<Time> {
        self.events.iter().find_map(|ev| match ev {
            MembershipEvent::Join { process, at } if *process == p => Some(*at),
            _ => None,
        })
    }

    /// The departure time of `p` (graceful or crash-stop), if scheduled.
    pub fn departure_time(&self, p: ProcessId) -> Option<Time> {
        self.events.iter().find_map(|ev| match ev {
            MembershipEvent::Leave { process, at, .. } if *process == p => Some(*at),
            _ => None,
        })
    }

    /// Processes (of a population of `n`) with no membership event at all —
    /// present from time zero to the horizon. The E17 churn gate checks
    /// post-convergence exclusion and wait-freedom for exactly this set.
    pub fn continuously_present(&self, n: usize) -> Vec<ProcessId> {
        (0..n)
            .map(ProcessId::from)
            .filter(|p| self.join_time(*p).is_none() && self.departure_time(*p).is_none())
            .collect()
    }

    /// The time of the last scheduled membership change, if any.
    pub fn last_change(&self) -> Option<Time> {
        self.events.iter().map(MembershipEvent::at).max()
    }

    /// Checks the plan against a population of `n`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range targets, multiple joins or leaves of one
    /// process, and same-id rejoin shapes (a leave at or before a join of
    /// the same process).
    pub fn validate(&self, n: usize) -> Result<(), MembershipPlanError> {
        let mut joins: Vec<Option<Time>> = vec![None; n];
        let mut leaves: Vec<Option<Time>> = vec![None; n];
        for ev in &self.events {
            let p = ev.process();
            if p.index() >= n {
                return Err(MembershipPlanError::OutOfRange { process: p, n });
            }
            match ev {
                MembershipEvent::Join { at, .. } => {
                    if joins[p.index()].replace(*at).is_some() {
                        return Err(MembershipPlanError::DuplicateJoin(p));
                    }
                }
                MembershipEvent::Leave { at, .. } => {
                    if leaves[p.index()].replace(*at).is_some() {
                        return Err(MembershipPlanError::DuplicateLeave(p));
                    }
                }
            }
        }
        for i in 0..n {
            if let (Some(j), Some(l)) = (joins[i], leaves[i]) {
                if l <= j {
                    return Err(MembershipPlanError::RejoinSameId(ProcessId::from(i)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn empty_plan_is_inert_and_valid() {
        let plan = MembershipPlan::new();
        assert!(plan.is_inert());
        plan.validate(5).unwrap();
        assert_eq!(plan.initially_absent(3), vec![false; 3]);
        assert_eq!(plan.last_change(), None);
        assert_eq!(plan.continuously_present(3), vec![p(0), p(1), p(2)]);
    }

    #[test]
    fn builders_and_queries() {
        let plan = MembershipPlan::new()
            .join(p(4), Time(100))
            .leave(p(1), Time(300))
            .crash_leave(p(2), Time(500));
        plan.validate(5).unwrap();
        assert!(!plan.is_inert());
        assert_eq!(plan.join_time(p(4)), Some(Time(100)));
        assert_eq!(plan.departure_time(p(1)), Some(Time(300)));
        assert_eq!(plan.departure_time(p(2)), Some(Time(500)));
        assert_eq!(plan.last_change(), Some(Time(500)));
        assert_eq!(
            plan.initially_absent(5),
            vec![false, false, false, false, true]
        );
        assert_eq!(plan.continuously_present(5), vec![p(0), p(3)]);
        let graceful: Vec<bool> = plan
            .events()
            .iter()
            .filter_map(|ev| match ev {
                MembershipEvent::Leave { graceful, .. } => Some(*graceful),
                _ => None,
            })
            .collect();
        assert_eq!(graceful, vec![true, false]);
    }

    #[test]
    fn replace_is_leave_plus_fresh_join() {
        let plan = MembershipPlan::new().replace(p(0), p(3), Time(200));
        plan.validate(4).unwrap();
        assert_eq!(plan.departure_time(p(0)), Some(Time(200)));
        assert_eq!(plan.join_time(p(3)), Some(Time(200)));
        assert_eq!(plan.initially_absent(4), vec![false, false, false, true]);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(
            MembershipPlan::new().join(p(7), Time(1)).validate(5),
            Err(MembershipPlanError::OutOfRange {
                process: p(7),
                n: 5
            })
        );
        assert_eq!(
            MembershipPlan::new()
                .join(p(1), Time(1))
                .join(p(1), Time(9))
                .validate(5),
            Err(MembershipPlanError::DuplicateJoin(p(1)))
        );
        assert_eq!(
            MembershipPlan::new()
                .leave(p(1), Time(1))
                .crash_leave(p(1), Time(9))
                .validate(5),
            Err(MembershipPlanError::DuplicateLeave(p(1)))
        );
        // Leave-then-join of one id is same-id rejoin: rejected.
        assert_eq!(
            MembershipPlan::new()
                .leave(p(2), Time(10))
                .join(p(2), Time(50))
                .validate(5),
            Err(MembershipPlanError::RejoinSameId(p(2)))
        );
        // Join-then-leave is fine: a process that visits and departs.
        MembershipPlan::new()
            .join(p(2), Time(10))
            .leave(p(2), Time(50))
            .validate(5)
            .unwrap();
    }

    #[test]
    fn seeded_churn_is_deterministic_valid_and_paced() {
        let a = MembershipPlan::seeded_churn(12, 50, Time(2_000), 42);
        let b = MembershipPlan::seeded_churn(12, 50, Time(2_000), 42);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(
            a,
            MembershipPlan::seeded_churn(12, 50, Time(2_000), 43),
            "different seeds should differ"
        );
        a.validate(12).unwrap();
        assert!(!a.is_inert());
        // Both directions of churn are present.
        assert!(a
            .events()
            .iter()
            .any(|e| matches!(e, MembershipEvent::Join { .. })));
        assert!(a
            .events()
            .iter()
            .any(|e| matches!(e, MembershipEvent::Leave { .. })));
        // Events are spaced at least `period` apart.
        let times: Vec<u64> = a.events().iter().map(|e| e.at().ticks()).collect();
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 50, "events too dense: {times:?}");
        }
        // A majority core never churns.
        assert!(a.continuously_present(12).len() >= 6);
    }

    #[test]
    fn seeded_churn_degenerate_populations() {
        assert!(MembershipPlan::seeded_churn(3, 50, Time(1_000), 1).is_inert());
        assert!(MembershipPlan::seeded_churn(8, 0, Time(1_000), 1).is_inert());
        assert!(MembershipPlan::seeded_churn(8, 50, Time(0), 1).is_inert());
    }
}
