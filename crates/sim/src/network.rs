use crate::fault::FaultPlan;
use crate::time::{Duration, Time};
use crate::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Salt XORed into the run seed to derive the fault-decision RNG stream, so
/// fault sampling never perturbs the delay/algorithm stream: a run with an
/// inert [`FaultPlan`] is event-for-event identical to one with no plan.
const FAULT_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Message-delay distribution of the simulated network.
///
/// The paper's system model is asynchronous (unbounded delays) with enough
/// partial synchrony to implement ◇P. [`DelayModel::Gst`] realizes the
/// Dwork–Lynch–Stockmeyer formulation the paper cites: an unknown global
/// stabilization time after which every message delay is bounded by Δ.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly `d ≥ 1` ticks.
    Fixed(Duration),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform {
        /// Minimum delay (clamped to ≥ 1).
        min: Duration,
        /// Maximum delay (inclusive).
        max: Duration,
    },
    /// Partial synchrony: before `gst`, delays are drawn uniformly from
    /// `[1, pre_max]` (adversarially large); from `gst` on, uniformly from
    /// `[1, delta]`. The failure-detector layer does not know `gst`.
    Gst {
        /// Global stabilization time.
        gst: Time,
        /// Worst-case delay before stabilization.
        pre_max: Duration,
        /// Delay bound Δ after stabilization.
        delta: Duration,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 8 }
    }
}

impl DelayModel {
    /// Samples a delay for a message sent at `now`.
    pub(crate) fn sample(&self, now: Time, rng: &mut StdRng) -> Duration {
        let d = match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            DelayModel::Gst {
                gst,
                pre_max,
                delta,
            } => {
                let bound = if now < gst { pre_max } else { delta };
                rng.gen_range(1..=bound.max(1))
            }
        };
        d.max(1)
    }

    /// The post-stabilization delay bound, if this model has one.
    pub fn eventual_bound(&self) -> Duration {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => max.max(min).max(1),
            DelayModel::Gst { delta, .. } => delta.max(1),
        }
    }
}

/// Per-channel bookkeeping exposed after a run.
///
/// `in_transit` counts both directions of the unordered pair `{a, b}`, which
/// is the unit of the paper's §7 claim that *at most four messages are in
/// transit between each pair of neighbors at any time*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages currently in flight on the pair (both directions).
    pub in_transit: usize,
    /// Maximum simultaneous in-flight messages observed on the pair.
    pub high_water: usize,
    /// Total messages ever sent on the pair.
    pub total: u64,
    /// Messages destroyed in transit (random loss or partition cut).
    pub dropped: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages that escaped the FIFO floor and may overtake older ones.
    pub reordered: u64,
}

/// What the network decided to do with one logical send.
///
/// The simulator turns each entry of `deliveries` into a `Deliver` event;
/// the flags drive kernel-trace records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SendDisposition {
    /// Delivery times of every copy that will arrive (empty if lost).
    pub deliveries: Vec<Time>,
    /// The message was destroyed by random loss.
    pub lost: bool,
    /// The message was destroyed by an active partition.
    pub cut_by_partition: bool,
    /// A duplicate copy was injected (second entry of `deliveries`).
    pub duplicated: bool,
    /// The primary copy bypassed the FIFO floor.
    pub reordered: bool,
}

/// The network fabric: reliable FIFO by default, adversarial under a
/// [`FaultPlan`].
///
/// Without faults, every message sent is eventually delivered exactly once,
/// uncorrupted, in per-ordered-channel FIFO order. FIFO is enforced by never
/// scheduling a delivery earlier than the previously scheduled delivery on
/// the same ordered channel (ties broken by scheduling sequence in the event
/// queue). A fault plan may drop, duplicate, or reorder messages and cut
/// links during partitions; all decisions come from a dedicated RNG stream
/// so runs stay deterministic per seed.
pub(crate) struct Network {
    delay: DelayModel,
    faults: FaultPlan,
    /// Dedicated RNG for fault decisions (seed XOR [`FAULT_STREAM_SALT`]).
    fault_rng: StdRng,
    /// Last scheduled delivery time per ordered channel.
    last_delivery: HashMap<(ProcessId, ProcessId), Time>,
    /// Stats per unordered pair.
    stats: HashMap<(ProcessId, ProcessId), ChannelStats>,
    /// Messages sent to each destination after it crashed, by send time.
    to_crashed: Vec<(Time, ProcessId, ProcessId)>,
}

fn unordered(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    pub fn new(delay: DelayModel, faults: FaultPlan, seed: u64) -> Self {
        Network {
            delay,
            faults,
            fault_rng: StdRng::seed_from_u64(seed ^ FAULT_STREAM_SALT),
            last_delivery: HashMap::new(),
            stats: HashMap::new(),
            to_crashed: Vec::new(),
        }
    }

    /// Decides the fate of a message sent at `now` on the ordered channel
    /// `from → to` and updates accounting.
    ///
    /// The fault-free path computes the FIFO-respecting delivery time
    /// exactly as the seed simulator did. Under a fault plan the message may
    /// additionally be dropped (loss or partition), duplicated, or allowed
    /// to overtake the FIFO floor.
    pub fn schedule_send(
        &mut self,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        dest_crashed: bool,
        rng: &mut StdRng,
    ) -> SendDisposition {
        if dest_crashed {
            self.to_crashed.push((now, from, to));
        }
        let s = self.stats.entry(unordered(from, to)).or_default();
        s.total += 1;

        let mut disposition = SendDisposition {
            deliveries: Vec::new(),
            lost: false,
            cut_by_partition: false,
            duplicated: false,
            reordered: false,
        };

        let fault = self.faults.fault_for(from, to);
        if self.faults.partitioned(from, to, now) {
            s.dropped += 1;
            disposition.cut_by_partition = true;
            return disposition;
        }
        if fault.loss > 0.0 && self.fault_rng.gen_bool(fault.loss.clamp(0.0, 1.0)) {
            s.dropped += 1;
            disposition.lost = true;
            return disposition;
        }

        let raw = now + self.delay.sample(now, rng);
        let floor = self.last_delivery.entry((from, to)).or_insert(Time::ZERO);
        let reordered =
            fault.reorder > 0.0 && self.fault_rng.gen_bool(fault.reorder.clamp(0.0, 1.0));
        let delivery = if reordered {
            // Escape the FIFO floor: deliver at the raw sampled time plus
            // bounded jitter, possibly overtaking older messages. The floor
            // is left untouched so later traffic is not delayed behind the
            // straggler.
            s.reordered += 1;
            disposition.reordered = true;
            if fault.reorder_window > 0 {
                raw + self.fault_rng.gen_range(0..=fault.reorder_window)
            } else {
                raw
            }
        } else {
            let d = raw.max(*floor);
            *floor = d;
            d
        };
        disposition.deliveries.push(delivery);
        s.in_transit += 1;
        s.high_water = s.high_water.max(s.in_transit);

        if fault.dup > 0.0 && self.fault_rng.gen_bool(fault.dup.clamp(0.0, 1.0)) {
            // The duplicate takes an independently sampled delay and ignores
            // the FIFO floor — a classic retransmission ghost.
            let extra = now + self.delay.sample(now, &mut self.fault_rng);
            disposition.deliveries.push(extra);
            disposition.duplicated = true;
            s.duplicated += 1;
            s.in_transit += 1;
            s.high_water = s.high_water.max(s.in_transit);
        }
        disposition
    }

    /// Marks a message on `from → to` as delivered (or discarded at a
    /// crashed destination).
    pub fn complete_delivery(&mut self, from: ProcessId, to: ProcessId) {
        let s = self
            .stats
            .get_mut(&unordered(from, to))
            .expect("delivery without matching send");
        debug_assert!(s.in_transit > 0, "channel accounting underflow");
        s.in_transit = s.in_transit.saturating_sub(1);
    }

    pub fn stats(&self, a: ProcessId, b: ProcessId) -> ChannelStats {
        self.stats
            .get(&unordered(a, b))
            .copied()
            .unwrap_or_default()
    }

    pub fn all_stats(&self) -> impl Iterator<Item = ((ProcessId, ProcessId), ChannelStats)> + '_ {
        self.stats.iter().map(|(&k, &v)| (k, v))
    }

    /// `(send_time, from, to)` records of messages addressed to already
    /// crashed processes — the raw material of the quiescence experiment.
    pub fn sends_to_crashed(&self) -> &[(Time, ProcessId, ProcessId)] {
        &self.to_crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn fixed_delay_is_fixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = DelayModel::Fixed(5);
        for t in [0u64, 10, 1000] {
            assert_eq!(m.sample(Time(t), &mut rng), 5);
        }
        assert_eq!(m.eventual_bound(), 5);
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 2, max: 9 };
        for _ in 0..200 {
            let d = m.sample(Time(0), &mut rng);
            assert!((2..=9).contains(&d));
        }
        assert_eq!(m.eventual_bound(), 9);
    }

    #[test]
    fn gst_delay_shrinks_after_stabilization() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Gst {
            gst: Time(100),
            pre_max: 1000,
            delta: 4,
        };
        let mut saw_large_pre = false;
        for _ in 0..300 {
            let pre = m.sample(Time(50), &mut rng);
            assert!((1..=1000).contains(&pre));
            saw_large_pre |= pre > 4;
            let post = m.sample(Time(100), &mut rng);
            assert!((1..=4).contains(&post));
        }
        assert!(
            saw_large_pre,
            "pre-GST delays should exceed delta sometimes"
        );
        assert_eq!(m.eventual_bound(), 4);
    }

    #[test]
    fn delay_never_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(DelayModel::Fixed(0).sample(Time(0), &mut rng), 1);
        let m = DelayModel::Uniform { min: 0, max: 0 };
        assert_eq!(m.sample(Time(0), &mut rng), 1);
    }

    fn reliable(delay: DelayModel) -> Network {
        Network::new(delay, FaultPlan::default(), 0)
    }

    /// One delivery time from a fault-free send.
    fn sole(d: SendDisposition) -> Time {
        assert_eq!(d.deliveries.len(), 1, "fault-free send must deliver once");
        d.deliveries[0]
    }

    #[test]
    fn fifo_preserved_even_with_random_delays() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = reliable(DelayModel::Uniform { min: 1, max: 100 });
        let mut last = Time::ZERO;
        for t in 0..50u64 {
            let d = sole(net.schedule_send(Time(t), p(0), p(1), false, &mut rng));
            assert!(d >= last, "delivery times must be monotone per channel");
            last = d;
        }
    }

    #[test]
    fn in_transit_accounting() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = reliable(DelayModel::Fixed(10));
        net.schedule_send(Time(0), p(0), p(1), false, &mut rng);
        net.schedule_send(Time(1), p(1), p(0), false, &mut rng);
        net.schedule_send(Time(2), p(0), p(1), false, &mut rng);
        let s = net.stats(p(1), p(0));
        assert_eq!(s.in_transit, 3);
        assert_eq!(s.high_water, 3);
        assert_eq!(s.total, 3);
        net.complete_delivery(p(0), p(1));
        let s = net.stats(p(0), p(1));
        assert_eq!(s.in_transit, 2);
        assert_eq!(s.high_water, 3, "high water mark is sticky");
    }

    #[test]
    fn records_sends_to_crashed() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = reliable(DelayModel::Fixed(1));
        net.schedule_send(Time(3), p(0), p(1), true, &mut rng);
        net.schedule_send(Time(4), p(0), p(2), false, &mut rng);
        assert_eq!(net.sends_to_crashed(), &[(Time(3), p(0), p(1))]);
    }

    /// Regression test: per-edge stats are keyed on the *unordered* pair, so
    /// high-water marks (the §7 "four messages per edge" unit) must be
    /// identical no matter which `(from, to)` orientation is queried, and no
    /// matter which direction the traffic flowed.
    #[test]
    fn edge_stats_are_orientation_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = reliable(DelayModel::Fixed(10));
        // Interleave both orientations, including an asymmetric count.
        net.schedule_send(Time(0), p(3), p(1), false, &mut rng);
        net.schedule_send(Time(1), p(1), p(3), false, &mut rng);
        net.schedule_send(Time(2), p(3), p(1), false, &mut rng);
        net.schedule_send(Time(3), p(3), p(1), false, &mut rng);
        assert_eq!(net.stats(p(1), p(3)), net.stats(p(3), p(1)));
        let s = net.stats(p(1), p(3));
        assert_eq!(s.total, 4, "both directions accumulate on one pair");
        assert_eq!(s.high_water, 4);
        // Deliveries completed with either orientation drain the same pair.
        net.complete_delivery(p(3), p(1));
        net.complete_delivery(p(1), p(3));
        assert_eq!(net.stats(p(1), p(3)), net.stats(p(3), p(1)));
        assert_eq!(net.stats(p(1), p(3)).in_transit, 2);
        assert_eq!(
            net.stats(p(1), p(3)).high_water,
            4,
            "high water must be orientation-independent and sticky"
        );
    }

    #[test]
    fn loss_drops_messages_and_counts_them() {
        let mut rng = StdRng::seed_from_u64(8);
        let plan = FaultPlan::new().loss(1.0);
        let mut net = Network::new(DelayModel::Fixed(5), plan, 8);
        let d = net.schedule_send(Time(0), p(0), p(1), false, &mut rng);
        assert!(d.lost);
        assert!(d.deliveries.is_empty());
        let s = net.stats(p(0), p(1));
        assert_eq!((s.total, s.dropped, s.in_transit), (1, 1, 0));
    }

    #[test]
    fn duplication_schedules_two_copies() {
        let mut rng = StdRng::seed_from_u64(9);
        let plan = FaultPlan::new().duplication(1.0);
        let mut net = Network::new(DelayModel::Fixed(5), plan, 9);
        let d = net.schedule_send(Time(0), p(0), p(1), false, &mut rng);
        assert!(d.duplicated);
        assert_eq!(d.deliveries.len(), 2);
        let s = net.stats(p(0), p(1));
        assert_eq!((s.total, s.duplicated, s.in_transit), (1, 1, 2));
    }

    #[test]
    fn partition_cuts_cross_traffic_until_heal() {
        let mut rng = StdRng::seed_from_u64(10);
        let plan = FaultPlan::new().partition(vec![p(0)], Time(10), Time(20));
        let mut net = Network::new(DelayModel::Fixed(1), plan, 10);
        let cut = net.schedule_send(Time(15), p(0), p(1), false, &mut rng);
        assert!(cut.cut_by_partition && cut.deliveries.is_empty());
        let healed = net.schedule_send(Time(20), p(0), p(1), false, &mut rng);
        assert_eq!(healed.deliveries.len(), 1);
        let s = net.stats(p(0), p(1));
        assert_eq!((s.total, s.dropped), (2, 1));
    }

    #[test]
    fn reordered_message_can_overtake_the_fifo_floor() {
        let mut rng = StdRng::seed_from_u64(11);
        let plan = FaultPlan::new().reorder(1.0, 0);
        let mut net = Network::new(DelayModel::Uniform { min: 1, max: 100 }, plan, 11);
        let mut overtook = false;
        let mut last = Time::ZERO;
        for t in 0..100u64 {
            let d = net.schedule_send(Time(t), p(0), p(1), false, &mut rng);
            assert!(d.reordered);
            let dt = sole(d);
            overtook |= dt < last;
            last = last.max(dt);
        }
        assert!(overtook, "full reordering should beat the floor sometimes");
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new().loss(0.3).duplication(0.2).reorder(0.2, 8);
            let mut rng = StdRng::seed_from_u64(42);
            let mut net = Network::new(DelayModel::Uniform { min: 1, max: 9 }, plan, seed);
            (0..200u64)
                .map(|t| net.schedule_send(Time(t), p(0), p(1), false, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same fault seed, same dispositions");
        assert_ne!(run(5), run(6), "fault stream must depend on the seed");
    }

    #[test]
    fn inert_plan_matches_fault_free_network_exactly() {
        let mut rng_a = StdRng::seed_from_u64(12);
        let mut rng_b = StdRng::seed_from_u64(12);
        let mut plain = reliable(DelayModel::Uniform { min: 1, max: 50 });
        let mut inert = Network::new(
            DelayModel::Uniform { min: 1, max: 50 },
            FaultPlan::new().loss(0.0),
            999,
        );
        for t in 0..100u64 {
            let a = plain.schedule_send(Time(t), p(0), p(1), false, &mut rng_a);
            let b = inert.schedule_send(Time(t), p(0), p(1), false, &mut rng_b);
            assert_eq!(a, b, "inert plan must not perturb the delay stream");
        }
    }
}
