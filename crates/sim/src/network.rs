use crate::event::EngineKind;
use crate::fault::{FaultPlan, LinkFault};
use crate::time::{Duration, Time};
use crate::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Salt XORed into the run seed to derive the fault-decision RNG stream, so
/// fault sampling never perturbs the delay/algorithm stream: a run with an
/// inert [`FaultPlan`] is event-for-event identical to one with no plan.
const FAULT_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Message-delay distribution of the simulated network.
///
/// The paper's system model is asynchronous (unbounded delays) with enough
/// partial synchrony to implement ◇P. [`DelayModel::Gst`] realizes the
/// Dwork–Lynch–Stockmeyer formulation the paper cites: an unknown global
/// stabilization time after which every message delay is bounded by Δ.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly `d ≥ 1` ticks.
    Fixed(Duration),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform {
        /// Minimum delay (clamped to ≥ 1).
        min: Duration,
        /// Maximum delay (inclusive).
        max: Duration,
    },
    /// Partial synchrony: before `gst`, delays are drawn uniformly from
    /// `[1, pre_max]` (adversarially large); from `gst` on, uniformly from
    /// `[1, delta]`. The failure-detector layer does not know `gst`.
    Gst {
        /// Global stabilization time.
        gst: Time,
        /// Worst-case delay before stabilization.
        pre_max: Duration,
        /// Delay bound Δ after stabilization.
        delta: Duration,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 8 }
    }
}

impl DelayModel {
    /// Samples a delay for a message sent at `now`.
    pub(crate) fn sample(&self, now: Time, rng: &mut StdRng) -> Duration {
        let d = match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            DelayModel::Gst {
                gst,
                pre_max,
                delta,
            } => {
                let bound = if now < gst { pre_max } else { delta };
                rng.gen_range(1..=bound.max(1))
            }
        };
        d.max(1)
    }

    /// The post-stabilization delay bound, if this model has one.
    pub fn eventual_bound(&self) -> Duration {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => max.max(min).max(1),
            DelayModel::Gst { delta, .. } => delta.max(1),
        }
    }
}

/// Per-channel bookkeeping exposed after a run.
///
/// `in_transit` counts both directions of the unordered pair `{a, b}`, which
/// is the unit of the paper's §7 claim that *at most four messages are in
/// transit between each pair of neighbors at any time*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages currently in flight on the pair (both directions).
    pub in_transit: usize,
    /// Maximum simultaneous in-flight messages observed on the pair.
    pub high_water: usize,
    /// Total messages ever sent on the pair.
    pub total: u64,
    /// Messages destroyed in transit (random loss or partition cut).
    pub dropped: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages that escaped the FIFO floor and may overtake older ones.
    pub reordered: u64,
}

/// Delivery times of every copy of one send: at most a primary and one
/// duplicate, so a fixed inline array replaces the per-send `Vec` the
/// pre-optimization kernel allocated.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Deliveries {
    times: [Time; 2],
    len: u8,
}

impl Deliveries {
    const EMPTY: Deliveries = Deliveries {
        times: [Time::ZERO; 2],
        len: 0,
    };

    #[inline]
    fn push(&mut self, t: Time) {
        self.times[self.len as usize] = t;
        self.len += 1;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[Time] {
        &self.times[..self.len as usize]
    }
}

impl PartialEq for Deliveries {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Deliveries {}

/// What the network decided to do with one logical send.
///
/// The simulator turns each entry of `deliveries` into a `Deliver` event;
/// the flags drive kernel-trace records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SendDisposition {
    /// Delivery times of every copy that will arrive (empty if lost).
    pub deliveries: Deliveries,
    /// The message was destroyed by random loss.
    pub lost: bool,
    /// The message was destroyed by an active partition.
    pub cut_by_partition: bool,
    /// A duplicate copy was injected (second entry of `deliveries`).
    pub duplicated: bool,
    /// The primary copy bypassed the FIFO floor.
    pub reordered: bool,
}

/// Channel/edge bookkeeping in the flavor chosen by [`EngineKind`].
///
/// The dense flavor interns each ordered channel `(from, to)` to a dense
/// `u32` id on first use via an `n × n` index table, and each unordered pair
/// to a dense edge id, so the per-message FIFO floor and stats become flat
/// `Vec` reads instead of SipHash `HashMap` probes. The per-channel
/// [`LinkFault`] spec is resolved once at intern time instead of per send.
enum ChannelState {
    Dense(DenseChannels),
    Legacy(LegacyChannels),
}

struct DenseChannels {
    n: usize,
    /// `from.index() * n + to.index()` → channel id; `u32::MAX` = unassigned.
    chan_of: Vec<u32>,
    /// Per channel: last scheduled delivery time (the FIFO floor).
    floor: Vec<Time>,
    /// Per channel: the link-fault spec in force, interned once.
    fault: Vec<LinkFault>,
    /// Per channel: owning unordered-edge id.
    edge_of: Vec<u32>,
    /// Per edge: stats for the unordered pair.
    stats: Vec<ChannelStats>,
    /// Per edge: canonical `(lo, hi)` endpoints, in intern order.
    edges: Vec<(ProcessId, ProcessId)>,
}

struct LegacyChannels {
    /// Last scheduled delivery time per ordered channel.
    last_delivery: HashMap<(ProcessId, ProcessId), Time>,
    /// Stats per unordered pair.
    stats: HashMap<(ProcessId, ProcessId), ChannelStats>,
}

fn unordered(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl DenseChannels {
    fn new(n: usize) -> Self {
        DenseChannels {
            n,
            chan_of: vec![u32::MAX; n * n],
            floor: Vec::new(),
            fault: Vec::new(),
            edge_of: Vec::new(),
            stats: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Dense id of the ordered channel `from → to`, interning on first use.
    #[inline]
    fn channel(&mut self, from: ProcessId, to: ProcessId, faults: &FaultPlan) -> usize {
        let slot = from.index() * self.n + to.index();
        let id = self.chan_of[slot];
        if id != u32::MAX {
            return id as usize;
        }
        self.intern(slot, from, to, faults)
    }

    #[cold]
    fn intern(&mut self, slot: usize, from: ProcessId, to: ProcessId, faults: &FaultPlan) -> usize {
        let id = self.floor.len();
        self.chan_of[slot] = id as u32;
        self.floor.push(Time::ZERO);
        self.fault.push(faults.fault_for(from, to));
        let reverse = self.chan_of[to.index() * self.n + from.index()];
        let edge = if reverse != u32::MAX {
            self.edge_of[reverse as usize]
        } else {
            let e = self.stats.len() as u32;
            self.stats.push(ChannelStats::default());
            self.edges.push(unordered(from, to));
            e
        };
        self.edge_of.push(edge);
        id
    }

    /// Channel id if `from → to` has carried traffic.
    #[inline]
    fn lookup(&self, from: ProcessId, to: ProcessId) -> Option<usize> {
        let id = self.chan_of[from.index() * self.n + to.index()];
        (id != u32::MAX).then_some(id as usize)
    }
}

/// The network fabric: reliable FIFO by default, adversarial under a
/// [`FaultPlan`].
///
/// Without faults, every message sent is eventually delivered exactly once,
/// uncorrupted, in per-ordered-channel FIFO order. FIFO is enforced by never
/// scheduling a delivery earlier than the previously scheduled delivery on
/// the same ordered channel (ties broken by scheduling sequence in the event
/// queue). A fault plan may drop, duplicate, or reorder messages and cut
/// links during partitions; all decisions come from a dedicated RNG stream
/// so runs stay deterministic per seed. The delay model and fault plan are
/// owned by the caller and passed by reference per send.
pub(crate) struct Network {
    /// Dedicated RNG for fault decisions (seed XOR [`FAULT_STREAM_SALT`]).
    fault_rng: StdRng,
    state: ChannelState,
    /// Messages sent to each destination after it crashed, by send time.
    to_crashed: Vec<(Time, ProcessId, ProcessId)>,
}

impl Network {
    pub fn new(n: usize, seed: u64, engine: EngineKind) -> Self {
        Network {
            fault_rng: StdRng::seed_from_u64(seed ^ FAULT_STREAM_SALT),
            state: match engine {
                EngineKind::Indexed => ChannelState::Dense(DenseChannels::new(n)),
                EngineKind::Legacy => ChannelState::Legacy(LegacyChannels {
                    last_delivery: HashMap::new(),
                    stats: HashMap::new(),
                }),
            },
            to_crashed: Vec::new(),
        }
    }

    /// Decides the fate of a message sent at `now` on the ordered channel
    /// `from → to` and updates accounting.
    ///
    /// The fault-free path computes the FIFO-respecting delivery time
    /// exactly as the seed simulator did. Under a fault plan the message may
    /// additionally be dropped (loss or partition), duplicated, or allowed
    /// to overtake the FIFO floor. Both storage engines draw the identical
    /// RNG sequence, so dispositions are engine-independent.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_send(
        &mut self,
        delay: &DelayModel,
        faults: &FaultPlan,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        dest_crashed: bool,
        rng: &mut StdRng,
    ) -> SendDisposition {
        if dest_crashed {
            self.to_crashed.push((now, from, to));
        }

        let mut disposition = SendDisposition {
            deliveries: Deliveries::EMPTY,
            lost: false,
            cut_by_partition: false,
            duplicated: false,
            reordered: false,
        };

        match &mut self.state {
            ChannelState::Dense(d) => {
                let ch = d.channel(from, to, faults);
                let edge = d.edge_of[ch] as usize;
                d.stats[edge].total += 1;
                let fault = d.fault[ch];

                if !faults.partitions.is_empty() && faults.partitioned(from, to, now) {
                    d.stats[edge].dropped += 1;
                    disposition.cut_by_partition = true;
                    return disposition;
                }
                if fault.loss > 0.0 && self.fault_rng.gen_bool(fault.loss.clamp(0.0, 1.0)) {
                    d.stats[edge].dropped += 1;
                    disposition.lost = true;
                    return disposition;
                }

                let raw = now + delay.sample(now, rng);
                let reordered =
                    fault.reorder > 0.0 && self.fault_rng.gen_bool(fault.reorder.clamp(0.0, 1.0));
                let delivery = if reordered {
                    // Escape the FIFO floor: deliver at the raw sampled time
                    // plus bounded jitter, possibly overtaking older
                    // messages. The floor is left untouched so later traffic
                    // is not delayed behind the straggler.
                    d.stats[edge].reordered += 1;
                    disposition.reordered = true;
                    if fault.reorder_window > 0 {
                        raw + self.fault_rng.gen_range(0..=fault.reorder_window)
                    } else {
                        raw
                    }
                } else {
                    let t = raw.max(d.floor[ch]);
                    d.floor[ch] = t;
                    t
                };
                disposition.deliveries.push(delivery);
                let s = &mut d.stats[edge];
                s.in_transit += 1;
                s.high_water = s.high_water.max(s.in_transit);

                if fault.dup > 0.0 && self.fault_rng.gen_bool(fault.dup.clamp(0.0, 1.0)) {
                    // The duplicate takes an independently sampled delay and
                    // ignores the FIFO floor — a classic retransmission ghost.
                    let extra = now + delay.sample(now, &mut self.fault_rng);
                    disposition.deliveries.push(extra);
                    disposition.duplicated = true;
                    let s = &mut d.stats[edge];
                    s.duplicated += 1;
                    s.in_transit += 1;
                    s.high_water = s.high_water.max(s.in_transit);
                }
            }
            ChannelState::Legacy(l) => {
                let s = l.stats.entry(unordered(from, to)).or_default();
                s.total += 1;
                let fault = faults.fault_for(from, to);

                if faults.partitioned(from, to, now) {
                    s.dropped += 1;
                    disposition.cut_by_partition = true;
                    return disposition;
                }
                if fault.loss > 0.0 && self.fault_rng.gen_bool(fault.loss.clamp(0.0, 1.0)) {
                    s.dropped += 1;
                    disposition.lost = true;
                    return disposition;
                }

                let raw = now + delay.sample(now, rng);
                let floor = l.last_delivery.entry((from, to)).or_insert(Time::ZERO);
                let reordered =
                    fault.reorder > 0.0 && self.fault_rng.gen_bool(fault.reorder.clamp(0.0, 1.0));
                let delivery = if reordered {
                    s.reordered += 1;
                    disposition.reordered = true;
                    if fault.reorder_window > 0 {
                        raw + self.fault_rng.gen_range(0..=fault.reorder_window)
                    } else {
                        raw
                    }
                } else {
                    let t = raw.max(*floor);
                    *floor = t;
                    t
                };
                disposition.deliveries.push(delivery);
                s.in_transit += 1;
                s.high_water = s.high_water.max(s.in_transit);

                if fault.dup > 0.0 && self.fault_rng.gen_bool(fault.dup.clamp(0.0, 1.0)) {
                    let extra = now + delay.sample(now, &mut self.fault_rng);
                    disposition.deliveries.push(extra);
                    disposition.duplicated = true;
                    s.duplicated += 1;
                    s.in_transit += 1;
                    s.high_water = s.high_water.max(s.in_transit);
                }
            }
        }
        disposition
    }

    /// Marks a message on `from → to` as delivered (or discarded at a
    /// crashed destination).
    pub fn complete_delivery(&mut self, from: ProcessId, to: ProcessId) {
        let s = match &mut self.state {
            ChannelState::Dense(d) => {
                let ch = d.lookup(from, to).expect("delivery without matching send");
                &mut d.stats[d.edge_of[ch] as usize]
            }
            ChannelState::Legacy(l) => l
                .stats
                .get_mut(&unordered(from, to))
                .expect("delivery without matching send"),
        };
        debug_assert!(s.in_transit > 0, "channel accounting underflow");
        s.in_transit = s.in_transit.saturating_sub(1);
    }

    pub fn stats(&self, a: ProcessId, b: ProcessId) -> ChannelStats {
        match &self.state {
            ChannelState::Dense(d) => d
                .lookup(a, b)
                .or_else(|| d.lookup(b, a))
                .map(|ch| d.stats[d.edge_of[ch] as usize])
                .unwrap_or_default(),
            ChannelState::Legacy(l) => l.stats.get(&unordered(a, b)).copied().unwrap_or_default(),
        }
    }

    /// Stats per unordered pair. Dense storage yields edges in intern order,
    /// legacy in hash order; all consumers aggregate order-insensitively.
    pub fn all_stats(
        &self,
    ) -> Box<dyn Iterator<Item = ((ProcessId, ProcessId), ChannelStats)> + '_> {
        match &self.state {
            ChannelState::Dense(d) => {
                Box::new(d.edges.iter().copied().zip(d.stats.iter().copied()))
            }
            ChannelState::Legacy(l) => Box::new(l.stats.iter().map(|(&k, &v)| (k, v))),
        }
    }

    /// `(send_time, from, to)` records of messages addressed to already
    /// crashed processes — the raw material of the quiescence experiment.
    pub fn sends_to_crashed(&self) -> &[(Time, ProcessId, ProcessId)] {
        &self.to_crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    const N: usize = 8;

    /// A network plus the plan/delay it is driven with, so tests keep the
    /// old one-object call shape.
    struct Rig {
        net: Network,
        delay: DelayModel,
        plan: FaultPlan,
    }

    impl Rig {
        fn new(delay: DelayModel, plan: FaultPlan, seed: u64, engine: EngineKind) -> Self {
            Rig {
                net: Network::new(N, seed, engine),
                delay,
                plan,
            }
        }

        fn send(
            &mut self,
            now: Time,
            from: ProcessId,
            to: ProcessId,
            dest_crashed: bool,
            rng: &mut StdRng,
        ) -> SendDisposition {
            self.net
                .schedule_send(&self.delay, &self.plan, now, from, to, dest_crashed, rng)
        }
    }

    fn engines() -> [EngineKind; 2] {
        [EngineKind::Indexed, EngineKind::Legacy]
    }

    #[test]
    fn fixed_delay_is_fixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = DelayModel::Fixed(5);
        for t in [0u64, 10, 1000] {
            assert_eq!(m.sample(Time(t), &mut rng), 5);
        }
        assert_eq!(m.eventual_bound(), 5);
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 2, max: 9 };
        for _ in 0..200 {
            let d = m.sample(Time(0), &mut rng);
            assert!((2..=9).contains(&d));
        }
        assert_eq!(m.eventual_bound(), 9);
    }

    #[test]
    fn gst_delay_shrinks_after_stabilization() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Gst {
            gst: Time(100),
            pre_max: 1000,
            delta: 4,
        };
        let mut saw_large_pre = false;
        for _ in 0..300 {
            let pre = m.sample(Time(50), &mut rng);
            assert!((1..=1000).contains(&pre));
            saw_large_pre |= pre > 4;
            let post = m.sample(Time(100), &mut rng);
            assert!((1..=4).contains(&post));
        }
        assert!(
            saw_large_pre,
            "pre-GST delays should exceed delta sometimes"
        );
        assert_eq!(m.eventual_bound(), 4);
    }

    #[test]
    fn delay_never_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(DelayModel::Fixed(0).sample(Time(0), &mut rng), 1);
        let m = DelayModel::Uniform { min: 0, max: 0 };
        assert_eq!(m.sample(Time(0), &mut rng), 1);
    }

    fn reliable(delay: DelayModel, engine: EngineKind) -> Rig {
        Rig::new(delay, FaultPlan::default(), 0, engine)
    }

    /// One delivery time from a fault-free send.
    fn sole(d: SendDisposition) -> Time {
        assert_eq!(d.deliveries.len(), 1, "fault-free send must deliver once");
        d.deliveries.as_slice()[0]
    }

    #[test]
    fn fifo_preserved_even_with_random_delays() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(4);
            let mut rig = reliable(DelayModel::Uniform { min: 1, max: 100 }, engine);
            let mut last = Time::ZERO;
            for t in 0..50u64 {
                let d = sole(rig.send(Time(t), p(0), p(1), false, &mut rng));
                assert!(d >= last, "delivery times must be monotone per channel");
                last = d;
            }
        }
    }

    #[test]
    fn in_transit_accounting() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(5);
            let mut rig = reliable(DelayModel::Fixed(10), engine);
            rig.send(Time(0), p(0), p(1), false, &mut rng);
            rig.send(Time(1), p(1), p(0), false, &mut rng);
            rig.send(Time(2), p(0), p(1), false, &mut rng);
            let s = rig.net.stats(p(1), p(0));
            assert_eq!(s.in_transit, 3);
            assert_eq!(s.high_water, 3);
            assert_eq!(s.total, 3);
            rig.net.complete_delivery(p(0), p(1));
            let s = rig.net.stats(p(0), p(1));
            assert_eq!(s.in_transit, 2);
            assert_eq!(s.high_water, 3, "high water mark is sticky");
        }
    }

    #[test]
    fn records_sends_to_crashed() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut rig = reliable(DelayModel::Fixed(1), EngineKind::Indexed);
        rig.send(Time(3), p(0), p(1), true, &mut rng);
        rig.send(Time(4), p(0), p(2), false, &mut rng);
        assert_eq!(rig.net.sends_to_crashed(), &[(Time(3), p(0), p(1))]);
    }

    /// Regression test: per-edge stats are keyed on the *unordered* pair, so
    /// high-water marks (the §7 "four messages per edge" unit) must be
    /// identical no matter which `(from, to)` orientation is queried, and no
    /// matter which direction the traffic flowed.
    #[test]
    fn edge_stats_are_orientation_symmetric() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut rig = reliable(DelayModel::Fixed(10), engine);
            // Interleave both orientations, including an asymmetric count.
            rig.send(Time(0), p(3), p(1), false, &mut rng);
            rig.send(Time(1), p(1), p(3), false, &mut rng);
            rig.send(Time(2), p(3), p(1), false, &mut rng);
            rig.send(Time(3), p(3), p(1), false, &mut rng);
            assert_eq!(rig.net.stats(p(1), p(3)), rig.net.stats(p(3), p(1)));
            let s = rig.net.stats(p(1), p(3));
            assert_eq!(s.total, 4, "both directions accumulate on one pair");
            assert_eq!(s.high_water, 4);
            // Deliveries completed with either orientation drain the same pair.
            rig.net.complete_delivery(p(3), p(1));
            rig.net.complete_delivery(p(1), p(3));
            assert_eq!(rig.net.stats(p(1), p(3)), rig.net.stats(p(3), p(1)));
            assert_eq!(rig.net.stats(p(1), p(3)).in_transit, 2);
            assert_eq!(
                rig.net.stats(p(1), p(3)).high_water,
                4,
                "high water must be orientation-independent and sticky"
            );
        }
    }

    #[test]
    fn loss_drops_messages_and_counts_them() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(8);
            let plan = FaultPlan::new().loss(1.0);
            let mut rig = Rig::new(DelayModel::Fixed(5), plan, 8, engine);
            let d = rig.send(Time(0), p(0), p(1), false, &mut rng);
            assert!(d.lost);
            assert!(d.deliveries.is_empty());
            let s = rig.net.stats(p(0), p(1));
            assert_eq!((s.total, s.dropped, s.in_transit), (1, 1, 0));
        }
    }

    #[test]
    fn duplication_schedules_two_copies() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(9);
            let plan = FaultPlan::new().duplication(1.0);
            let mut rig = Rig::new(DelayModel::Fixed(5), plan, 9, engine);
            let d = rig.send(Time(0), p(0), p(1), false, &mut rng);
            assert!(d.duplicated);
            assert_eq!(d.deliveries.len(), 2);
            let s = rig.net.stats(p(0), p(1));
            assert_eq!((s.total, s.duplicated, s.in_transit), (1, 1, 2));
        }
    }

    #[test]
    fn partition_cuts_cross_traffic_until_heal() {
        for engine in engines() {
            let mut rng = StdRng::seed_from_u64(10);
            let plan = FaultPlan::new().partition(vec![p(0)], Time(10), Time(20));
            let mut rig = Rig::new(DelayModel::Fixed(1), plan, 10, engine);
            let cut = rig.send(Time(15), p(0), p(1), false, &mut rng);
            assert!(cut.cut_by_partition && cut.deliveries.is_empty());
            let healed = rig.send(Time(20), p(0), p(1), false, &mut rng);
            assert_eq!(healed.deliveries.len(), 1);
            let s = rig.net.stats(p(0), p(1));
            assert_eq!((s.total, s.dropped), (2, 1));
        }
    }

    #[test]
    fn reordered_message_can_overtake_the_fifo_floor() {
        let mut rng = StdRng::seed_from_u64(11);
        let plan = FaultPlan::new().reorder(1.0, 0);
        let mut rig = Rig::new(
            DelayModel::Uniform { min: 1, max: 100 },
            plan,
            11,
            EngineKind::Indexed,
        );
        let mut overtook = false;
        let mut last = Time::ZERO;
        for t in 0..100u64 {
            let d = rig.send(Time(t), p(0), p(1), false, &mut rng);
            assert!(d.reordered);
            let dt = sole(d);
            overtook |= dt < last;
            last = last.max(dt);
        }
        assert!(overtook, "full reordering should beat the floor sometimes");
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        let run = |seed: u64, engine: EngineKind| {
            let plan = FaultPlan::new().loss(0.3).duplication(0.2).reorder(0.2, 8);
            let mut rng = StdRng::seed_from_u64(42);
            let mut rig = Rig::new(DelayModel::Uniform { min: 1, max: 9 }, plan, seed, engine);
            (0..200u64)
                .map(|t| rig.send(Time(t), p(0), p(1), false, &mut rng))
                .collect::<Vec<_>>()
        };
        for engine in engines() {
            assert_eq!(
                run(5, engine),
                run(5, engine),
                "same fault seed, same dispositions"
            );
            assert_ne!(
                run(5, engine),
                run(6, engine),
                "fault stream must depend on the seed"
            );
        }
        assert_eq!(
            run(5, EngineKind::Indexed),
            run(5, EngineKind::Legacy),
            "storage engines must draw identical fault streams"
        );
    }

    #[test]
    fn inert_plan_matches_fault_free_network_exactly() {
        for engine in engines() {
            let mut rng_a = StdRng::seed_from_u64(12);
            let mut rng_b = StdRng::seed_from_u64(12);
            let mut plain = reliable(DelayModel::Uniform { min: 1, max: 50 }, engine);
            let mut inert = Rig::new(
                DelayModel::Uniform { min: 1, max: 50 },
                FaultPlan::new().loss(0.0),
                999,
                engine,
            );
            for t in 0..100u64 {
                let a = plain.send(Time(t), p(0), p(1), false, &mut rng_a);
                let b = inert.send(Time(t), p(0), p(1), false, &mut rng_b);
                assert_eq!(a, b, "inert plan must not perturb the delay stream");
            }
        }
    }
}
