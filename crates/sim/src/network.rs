use crate::time::{Duration, Time};
use crate::ProcessId;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Message-delay distribution of the simulated network.
///
/// The paper's system model is asynchronous (unbounded delays) with enough
/// partial synchrony to implement ◇P. [`DelayModel::Gst`] realizes the
/// Dwork–Lynch–Stockmeyer formulation the paper cites: an unknown global
/// stabilization time after which every message delay is bounded by Δ.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly `d ≥ 1` ticks.
    Fixed(Duration),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform {
        /// Minimum delay (clamped to ≥ 1).
        min: Duration,
        /// Maximum delay (inclusive).
        max: Duration,
    },
    /// Partial synchrony: before `gst`, delays are drawn uniformly from
    /// `[1, pre_max]` (adversarially large); from `gst` on, uniformly from
    /// `[1, delta]`. The failure-detector layer does not know `gst`.
    Gst {
        /// Global stabilization time.
        gst: Time,
        /// Worst-case delay before stabilization.
        pre_max: Duration,
        /// Delay bound Δ after stabilization.
        delta: Duration,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 8 }
    }
}

impl DelayModel {
    /// Samples a delay for a message sent at `now`.
    pub(crate) fn sample(&self, now: Time, rng: &mut StdRng) -> Duration {
        let d = match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            DelayModel::Gst {
                gst,
                pre_max,
                delta,
            } => {
                let bound = if now < gst { pre_max } else { delta };
                rng.gen_range(1..=bound.max(1))
            }
        };
        d.max(1)
    }

    /// The post-stabilization delay bound, if this model has one.
    pub fn eventual_bound(&self) -> Duration {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => max.max(min).max(1),
            DelayModel::Gst { delta, .. } => delta.max(1),
        }
    }
}

/// Per-channel bookkeeping exposed after a run.
///
/// `in_transit` counts both directions of the unordered pair `{a, b}`, which
/// is the unit of the paper's §7 claim that *at most four messages are in
/// transit between each pair of neighbors at any time*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages currently in flight on the pair (both directions).
    pub in_transit: usize,
    /// Maximum simultaneous in-flight messages observed on the pair.
    pub high_water: usize,
    /// Total messages ever sent on the pair.
    pub total: u64,
}

/// The reliable-FIFO network fabric.
///
/// Every message sent is eventually delivered exactly once, uncorrupted, in
/// per-ordered-channel FIFO order. FIFO is enforced by never scheduling a
/// delivery earlier than the previously scheduled delivery on the same
/// ordered channel (ties broken by scheduling sequence in the event queue).
pub(crate) struct Network {
    delay: DelayModel,
    /// Last scheduled delivery time per ordered channel.
    last_delivery: HashMap<(ProcessId, ProcessId), Time>,
    /// Stats per unordered pair.
    stats: HashMap<(ProcessId, ProcessId), ChannelStats>,
    /// Messages sent to each destination after it crashed, by send time.
    to_crashed: Vec<(Time, ProcessId, ProcessId)>,
}

fn unordered(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    pub fn new(delay: DelayModel) -> Self {
        Network {
            delay,
            last_delivery: HashMap::new(),
            stats: HashMap::new(),
            to_crashed: Vec::new(),
        }
    }

    /// Computes the FIFO-respecting delivery time for a message sent at
    /// `now` on the ordered channel `from → to`, and updates accounting.
    pub fn schedule_send(
        &mut self,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        dest_crashed: bool,
        rng: &mut StdRng,
    ) -> Time {
        let raw = now + self.delay.sample(now, rng);
        let entry = self.last_delivery.entry((from, to)).or_insert(Time::ZERO);
        let delivery = raw.max(*entry);
        *entry = delivery;
        let s = self.stats.entry(unordered(from, to)).or_default();
        s.in_transit += 1;
        s.high_water = s.high_water.max(s.in_transit);
        s.total += 1;
        if dest_crashed {
            self.to_crashed.push((now, from, to));
        }
        delivery
    }

    /// Marks a message on `from → to` as delivered (or discarded at a
    /// crashed destination).
    pub fn complete_delivery(&mut self, from: ProcessId, to: ProcessId) {
        let s = self
            .stats
            .get_mut(&unordered(from, to))
            .expect("delivery without matching send");
        debug_assert!(s.in_transit > 0, "channel accounting underflow");
        s.in_transit = s.in_transit.saturating_sub(1);
    }

    pub fn stats(&self, a: ProcessId, b: ProcessId) -> ChannelStats {
        self.stats.get(&unordered(a, b)).copied().unwrap_or_default()
    }

    pub fn all_stats(&self) -> impl Iterator<Item = ((ProcessId, ProcessId), ChannelStats)> + '_ {
        self.stats.iter().map(|(&k, &v)| (k, v))
    }

    /// `(send_time, from, to)` records of messages addressed to already
    /// crashed processes — the raw material of the quiescence experiment.
    pub fn sends_to_crashed(&self) -> &[(Time, ProcessId, ProcessId)] {
        &self.to_crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn fixed_delay_is_fixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = DelayModel::Fixed(5);
        for t in [0u64, 10, 1000] {
            assert_eq!(m.sample(Time(t), &mut rng), 5);
        }
        assert_eq!(m.eventual_bound(), 5);
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 2, max: 9 };
        for _ in 0..200 {
            let d = m.sample(Time(0), &mut rng);
            assert!((2..=9).contains(&d));
        }
        assert_eq!(m.eventual_bound(), 9);
    }

    #[test]
    fn gst_delay_shrinks_after_stabilization() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Gst {
            gst: Time(100),
            pre_max: 1000,
            delta: 4,
        };
        let mut saw_large_pre = false;
        for _ in 0..300 {
            let pre = m.sample(Time(50), &mut rng);
            assert!(pre >= 1 && pre <= 1000);
            saw_large_pre |= pre > 4;
            let post = m.sample(Time(100), &mut rng);
            assert!(post >= 1 && post <= 4);
        }
        assert!(saw_large_pre, "pre-GST delays should exceed delta sometimes");
        assert_eq!(m.eventual_bound(), 4);
    }

    #[test]
    fn delay_never_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(DelayModel::Fixed(0).sample(Time(0), &mut rng), 1);
        let m = DelayModel::Uniform { min: 0, max: 0 };
        assert_eq!(m.sample(Time(0), &mut rng), 1);
    }

    #[test]
    fn fifo_preserved_even_with_random_delays() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::new(DelayModel::Uniform { min: 1, max: 100 });
        let mut last = Time::ZERO;
        for t in 0..50u64 {
            let d = net.schedule_send(Time(t), p(0), p(1), false, &mut rng);
            assert!(d >= last, "delivery times must be monotone per channel");
            last = d;
        }
    }

    #[test]
    fn in_transit_accounting() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Network::new(DelayModel::Fixed(10));
        net.schedule_send(Time(0), p(0), p(1), false, &mut rng);
        net.schedule_send(Time(1), p(1), p(0), false, &mut rng);
        net.schedule_send(Time(2), p(0), p(1), false, &mut rng);
        let s = net.stats(p(1), p(0));
        assert_eq!(s.in_transit, 3);
        assert_eq!(s.high_water, 3);
        assert_eq!(s.total, 3);
        net.complete_delivery(p(0), p(1));
        let s = net.stats(p(0), p(1));
        assert_eq!(s.in_transit, 2);
        assert_eq!(s.high_water, 3, "high water mark is sticky");
    }

    #[test]
    fn records_sends_to_crashed() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Network::new(DelayModel::Fixed(1));
        net.schedule_send(Time(3), p(0), p(1), true, &mut rng);
        net.schedule_send(Time(4), p(0), p(2), false, &mut rng);
        assert_eq!(net.sends_to_crashed(), &[(Time(3), p(0), p(1))]);
    }
}
