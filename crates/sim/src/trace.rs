use crate::time::Time;
use crate::ProcessId;

/// A kernel-level trace record. Traces are optional (see
/// [`SimConfig::record_trace`](crate::SimConfig::record_trace)) and exist
/// for debugging and for the determinism property tests (same seed ⇒
/// identical trace).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to the network.
    Sent {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Delivery time chosen by the network.
        delivery: Time,
    },
    /// A message was delivered to a live process.
    Delivered {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// A message arrived at a crashed process and was discarded.
    DroppedAtCrashed {
        /// Sender.
        from: ProcessId,
        /// Crashed destination.
        to: ProcessId,
    },
    /// A process crashed.
    Crashed {
        /// The crashed process.
        process: ProcessId,
    },
    /// A timer fired at a live process.
    TimerFired {
        /// The process whose timer fired.
        process: ProcessId,
        /// The tag given at `set_timer`.
        tag: u64,
    },
    /// An external (workload) event was delivered to a live process.
    ExternalDelivered {
        /// The target process.
        process: ProcessId,
    },
    /// A message was destroyed in transit by a channel fault.
    Lost {
        /// Sender.
        from: ProcessId,
        /// Intended destination.
        to: ProcessId,
        /// Whether an active partition (rather than random loss) cut it.
        by_partition: bool,
    },
    /// A duplicate copy of a message was injected by a channel fault.
    Duplicated {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Delivery time of the extra copy.
        delivery: Time,
    },
    /// A crashed process restarted (crash-recovery fault model).
    Recovered {
        /// The restarted process.
        process: ProcessId,
        /// Its new incarnation number (1-based restart count).
        incarnation: u64,
        /// Whether it rebooted with corrupted rather than blank state.
        corrupt: bool,
    },
    /// A transient fault flipped state bits of a live process.
    Corrupted {
        /// The corrupted process.
        process: ProcessId,
    },
    /// A message escaped the FIFO floor and may overtake older messages.
    Reordered {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Its (possibly early) delivery time.
        delivery: Time,
    },
    /// An initially-absent process joined the system (dynamic membership).
    Joined {
        /// The joining process.
        process: ProcessId,
        /// Its boot incarnation (shares the restart counter with
        /// [`TraceKind::Recovered`]).
        incarnation: u64,
    },
    /// A process left the system permanently (dynamic membership).
    Left {
        /// The departing process.
        process: ProcessId,
        /// Whether it drained gracefully (`true`) or crash-stopped out.
        graceful: bool,
    },
}

/// A timestamped [`TraceKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
}

/// A timestamped observation emitted by a node via
/// [`Context::observe`](crate::Context::observe).
///
/// Observations are the contract between algorithms and the metrics layer:
/// the dining crate emits domain events (became hungry, started eating, …)
/// and `ekbd-metrics` folds them into property checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation<O> {
    /// When the observation was emitted.
    pub time: Time,
    /// The emitting process.
    pub process: ProcessId,
    /// The payload.
    pub obs: O,
}
