use crate::event::{EngineKind, EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::network::{ChannelStats, DelayModel, Network};
use crate::node::{Context, Node, NodeEvent, ObsSink};
use crate::obs::StreamSink;
use crate::time::{Duration, Time};
use crate::trace::{Observation, TraceEvent, TraceKind};
use crate::ProcessId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::mem;

/// Configuration of a [`Simulator`].
///
/// All builder methods consume and return `self`, so configurations read as
/// one expression:
///
/// ```
/// use ekbd_sim::{SimConfig, DelayModel, Time};
/// let cfg = SimConfig::default()
///     .n(8)
///     .seed(42)
///     .delay(DelayModel::Gst { gst: Time(500), pre_max: 200, delta: 5 })
///     .record_trace(true);
/// assert_eq!(cfg.n, 8);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// RNG seed; the entire run is a pure function of the seed and the
    /// scheduled external events/crashes.
    pub seed: u64,
    /// Message delay model.
    pub delay: DelayModel,
    /// Channel-fault schedule (loss, duplication, reordering, partitions).
    /// The default plan is empty: a perfectly reliable FIFO network.
    pub faults: FaultPlan,
    /// Whether to record the kernel trace (off by default; observations are
    /// always recorded).
    pub record_trace: bool,
    /// Safety valve: [`Simulator::run`] stops after this many events.
    pub max_events: u64,
    /// Which kernel data-structure engine to run on (observably identical;
    /// see [`EngineKind`]).
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 3,
            seed: 0,
            delay: DelayModel::default(),
            faults: FaultPlan::default(),
            record_trace: false,
            max_events: 50_000_000,
            engine: EngineKind::default(),
        }
    }
}

impl SimConfig {
    /// Sets the number of processes.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }
    /// Sets the channel-fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
    /// Enables or disables kernel-trace recording.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }
    /// Sets the event-count safety valve.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }
    /// Selects the kernel engine (defaults to [`EngineKind::Indexed`]).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// Reusable effect buffers swapped into each [`Context`], so the indexed
/// engine's steady state dispatches events without heap allocation.
/// (Observations need no scratch: the indexed engine writes them straight
/// into the simulator's log via [`ObsSink::Direct`].)
struct Scratch<N: Node> {
    sends: Vec<(ProcessId, N::Msg)>,
    timers: Vec<(Duration, u64)>,
}

impl<N: Node> Scratch<N> {
    fn new() -> Self {
        Scratch {
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }
}

/// A deterministic discrete-event simulator over `n` [`Node`]s.
///
/// The life of a run:
///
/// 1. construct with a per-process node factory,
/// 2. schedule workload ([`schedule_external`](Self::schedule_external)) and
///    faults ([`schedule_crash`](Self::schedule_crash)),
/// 3. drive with [`run_until`](Self::run_until) (or [`run`](Self::run) for
///    workloads that quiesce),
/// 4. inspect [`observations`](Self::observations), nodes, channel stats.
pub struct Simulator<N: Node> {
    config: SimConfig,
    time: Time,
    queue: EventQueue<N::Msg, N::Ext>,
    network: Network,
    nodes: Vec<N>,
    crashed: Vec<bool>,
    /// Dynamic-membership presence. An absent process behaves like a
    /// crashed one (drops deliveries, timers, externals) but has never
    /// started — or has permanently left. All-true without a membership
    /// schedule, so churn-free runs are bit-identical to the seed kernel.
    present: Vec<bool>,
    crash_times: Vec<Option<Time>>,
    incarnations: Vec<u64>,
    rng: StdRng,
    started: bool,
    events_processed: u64,
    trace: Vec<TraceEvent>,
    observations: Vec<Observation<N::Obs>>,
    /// When set, observations stream into this sink instead of the dense
    /// log — the scale tier's `O(processes)` memory mode.
    streaming: Option<Box<dyn StreamSink<N::Obs>>>,
    scratch: Scratch<N>,
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator; `factory(id, rng)` builds the node for each
    /// process id in order.
    pub fn new(config: SimConfig, mut factory: impl FnMut(ProcessId, &mut StdRng) -> N) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let nodes: Vec<N> = (0..config.n)
            .map(|i| factory(ProcessId::from(i), &mut rng))
            .collect();
        let n = config.n;
        let mut queue = EventQueue::new(config.engine);
        // Auto-schedule the plan-declared process faults straight off the
        // borrowed plan — no `FaultPlan` clone is ever needed.
        for r in &config.faults.recoveries {
            assert!(r.process.index() < n, "recovery target out of range");
            queue.push(r.at, r.process, EventKind::Recover { corrupt: r.corrupt });
        }
        for c in &config.faults.corruptions {
            assert!(c.process.index() < n, "corruption target out of range");
            queue.push(c.at, c.process, EventKind::Corrupt);
        }
        Simulator {
            network: Network::new(n, config.seed, config.engine),
            config,
            time: Time::ZERO,
            queue,
            nodes,
            crashed: vec![false; n],
            present: vec![true; n],
            crash_times: vec![None; n],
            incarnations: vec![0; n],
            rng,
            started: false,
            events_processed: 0,
            trace: Vec::new(),
            observations: Vec::new(),
            streaming: None,
            scratch: Scratch::new(),
        }
    }

    /// Routes all subsequent observations into `sink` instead of the dense
    /// log. Dense entries already collected stay where they are; the
    /// streaming sink sees only what is emitted after this call (so install
    /// it before the first [`step`](Self::step)).
    pub fn set_streaming(&mut self, sink: Box<dyn StreamSink<N::Obs>>) {
        self.streaming = Some(sink);
    }

    /// Removes and returns the streaming sink, if one was installed.
    pub fn take_streaming(&mut self) -> Option<Box<dyn StreamSink<N::Obs>>> {
        self.streaming.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the system has zero processes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's state (for assertions and metrics).
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.index()]
    }

    /// Whether `p` has crashed (by current virtual time).
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.index()]
    }

    /// The crash time of `p`, if it crashed.
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_times[p.index()]
    }

    /// Ids of processes that never crash in this run *as scheduled so far*.
    pub fn correct_processes(&self) -> Vec<ProcessId> {
        (0..self.len())
            .map(ProcessId::from)
            .filter(|p| !self.crashed[p.index()] && self.crash_times[p.index()].is_none())
            .collect()
    }

    /// Schedules process `p` to crash at time `t`.
    ///
    /// A crash takes effect as an ordinary event: everything `p` did before
    /// `t` stands (including messages already in flight), and `p` handles no
    /// event from `t` on.
    pub fn schedule_crash(&mut self, p: ProcessId, t: Time) {
        assert!(p.index() < self.len(), "crash target out of range");
        self.crash_times[p.index()] = Some(t);
        self.queue.push(t, p, EventKind::Crash);
    }

    /// The current incarnation of `p`: 0 until its first restart, then the
    /// 1-based count of restarts so far.
    pub fn incarnation(&self, p: ProcessId) -> u64 {
        self.incarnations[p.index()]
    }

    /// Schedules process `p` to restart at time `t` (crash-recovery fault
    /// model). A no-op if `p` is not crashed when the event fires. With
    /// `corrupt`, the process reboots with adversarially corrupted state
    /// (seeded, deterministic) instead of blank state.
    pub fn schedule_recovery(&mut self, p: ProcessId, t: Time, corrupt: bool) {
        assert!(p.index() < self.len(), "recovery target out of range");
        self.queue.push(t, p, EventKind::Recover { corrupt });
    }

    /// Schedules a transient state corruption of `p` at time `t`. A no-op
    /// if `p` is crashed when the event fires.
    pub fn schedule_corruption(&mut self, p: ProcessId, t: Time) {
        assert!(p.index() < self.len(), "corruption target out of range");
        self.queue.push(t, p, EventKind::Corrupt);
    }

    /// Schedules an external (workload) event for `p` at time `t`.
    pub fn schedule_external(&mut self, p: ProcessId, t: Time, ev: N::Ext) {
        assert!(p.index() < self.len(), "external target out of range");
        self.queue.push(t, p, EventKind::External(ev));
    }

    /// Marks `p` as initially absent (dynamic membership). Must be called
    /// before the first event is processed: the process gets no `Start`
    /// event and drops everything addressed to it until a scheduled join
    /// boots it.
    pub fn set_initially_absent(&mut self, p: ProcessId) {
        assert!(p.index() < self.len(), "membership target out of range");
        assert!(!self.started, "initial membership is fixed at start-up");
        self.present[p.index()] = false;
    }

    /// Schedules the absent process `p` to join the system at `t`. A no-op
    /// if `p` is already present when the event fires. The joiner boots at
    /// the next incarnation of the shared restart counter (≥ 1), so a
    /// later crash + recovery stays strictly increasing.
    pub fn schedule_join(&mut self, p: ProcessId, t: Time) {
        assert!(p.index() < self.len(), "membership target out of range");
        self.queue.push(t, p, EventKind::Join);
    }

    /// Schedules the present process `p` to leave the system at `t`,
    /// permanently. With `graceful`, the node handles one final
    /// [`NodeEvent::Leave`] (its outgoing sends are still delivered) before
    /// going silent; otherwise it crash-stops out with no warning. A no-op
    /// if `p` is absent or crashed when the event fires.
    pub fn schedule_leave(&mut self, p: ProcessId, t: Time, graceful: bool) {
        assert!(p.index() < self.len(), "membership target out of range");
        self.queue.push(t, p, EventKind::Leave { graceful });
    }

    /// Whether `p` is currently a member of the system (present and not
    /// merely crashed; a crashed member is still a member).
    pub fn is_present(&self, p: ProcessId) -> bool {
        self.present[p.index()]
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// All observations emitted so far, in emission order.
    pub fn observations(&self) -> &[Observation<N::Obs>] {
        &self.observations
    }

    /// Drains and returns the observations buffered so far.
    pub fn take_observations(&mut self) -> Vec<Observation<N::Obs>> {
        std::mem::take(&mut self.observations)
    }

    /// Pre-sizes the observation log for roughly `expected` entries, so a
    /// caller that can estimate its workload's observation volume (e.g. a
    /// scenario harness) avoids the growth re-copies of a cold `Vec`.
    pub fn reserve_observations(&mut self, expected: usize) {
        let have = self.observations.capacity() - self.observations.len();
        self.observations.reserve(expected.saturating_sub(have));
    }

    /// The kernel trace (empty unless [`SimConfig::record_trace`] was set).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Channel statistics for the unordered pair `{a, b}`.
    pub fn channel_stats(&self, a: ProcessId, b: ProcessId) -> ChannelStats {
        self.network.stats(a, b)
    }

    /// The largest in-transit high-water mark over all channels.
    pub fn max_channel_high_water(&self) -> usize {
        self.network
            .all_stats()
            .map(|(_, s)| s.high_water)
            .max()
            .unwrap_or(0)
    }

    /// Total messages sent in the run.
    pub fn total_messages(&self) -> u64 {
        self.network.all_stats().map(|(_, s)| s.total).sum()
    }

    /// Messages destroyed in transit by channel faults (loss + partitions).
    pub fn total_dropped(&self) -> u64 {
        self.network.all_stats().map(|(_, s)| s.dropped).sum()
    }

    /// Extra copies injected by duplication faults.
    pub fn total_duplicated(&self) -> u64 {
        self.network.all_stats().map(|(_, s)| s.duplicated).sum()
    }

    /// `(send_time, from, to)` for every message sent to an
    /// already-crashed destination.
    pub fn sends_to_crashed(&self) -> &[(Time, ProcessId, ProcessId)] {
        self.network.sends_to_crashed()
    }

    fn dispatch(&mut self, target: ProcessId, ev: NodeEvent<N::Msg, N::Ext>) {
        // The indexed engine recycles the effect buffers and moves (rather
        // than clones) the payload of the last delivery copy. The legacy
        // engine keeps the pre-optimization cost model — fresh allocations
        // and a clone per copy — so E9 measures an honest before/after.
        let pooled = self.config.engine == EngineKind::Indexed;
        let sink = match (&mut self.streaming, pooled) {
            (Some(s), _) => ObsSink::Stream(s.as_mut()),
            (None, true) => ObsSink::Direct(&mut self.observations),
            (None, false) => ObsSink::Scratch(Vec::new()),
        };
        let mut ctx = if pooled {
            Context::with_buffers(
                target,
                self.time,
                &mut self.rng,
                mem::take(&mut self.scratch.sends),
                mem::take(&mut self.scratch.timers),
                sink,
            )
        } else {
            Context::with_buffers(
                target,
                self.time,
                &mut self.rng,
                Vec::new(),
                Vec::new(),
                sink,
            )
        };
        self.nodes[target.index()].handle(ev, &mut ctx);
        let Context {
            mut sends,
            mut timers,
            observations,
            ..
        } = ctx;
        // Consume the sink first: it may hold a borrow of the observation
        // log whose lifetime is unified with the context's rng borrow.
        match observations {
            // Legacy cost model: wrap and copy each observation after the
            // handler. (The indexed engine already wrote them in place.)
            ObsSink::Scratch(mut raw) => {
                for obs in raw.drain(..) {
                    self.observations.push(Observation {
                        time: self.time,
                        process: target,
                        obs,
                    });
                }
            }
            ObsSink::Direct(_) | ObsSink::Stream(_) => {}
        }
        for (to, msg) in sends.drain(..) {
            assert!(to.index() < self.crashed.len(), "send target out of range");
            assert!(to != target, "a process cannot send to itself");
            let dest_crashed = self.crashed[to.index()] || !self.present[to.index()];
            let disposition = self.network.schedule_send(
                &self.config.delay,
                &self.config.faults,
                self.time,
                target,
                to,
                dest_crashed,
                &mut self.rng,
            );
            let copies = disposition.deliveries.len();
            let mut payload = Some(msg);
            for (copy, &delivery) in disposition.deliveries.as_slice().iter().enumerate() {
                let msg = if pooled && copy + 1 == copies {
                    payload.take().expect("payload moved once")
                } else {
                    payload.as_ref().expect("payload present").clone()
                };
                self.queue
                    .push(delivery, to, EventKind::Deliver { from: target, msg });
                if self.config.record_trace {
                    let kind = if copy > 0 {
                        TraceKind::Duplicated {
                            from: target,
                            to,
                            delivery,
                        }
                    } else if disposition.reordered {
                        TraceKind::Reordered {
                            from: target,
                            to,
                            delivery,
                        }
                    } else {
                        TraceKind::Sent {
                            from: target,
                            to,
                            delivery,
                        }
                    };
                    self.trace.push(TraceEvent {
                        time: self.time,
                        kind,
                    });
                }
            }
            if self.config.record_trace && (disposition.lost || disposition.cut_by_partition) {
                self.trace.push(TraceEvent {
                    time: self.time,
                    kind: TraceKind::Lost {
                        from: target,
                        to,
                        by_partition: disposition.cut_by_partition,
                    },
                });
            }
        }
        for (delay, tag) in timers.drain(..) {
            self.queue
                .push(self.time + delay, target, EventKind::Timer { tag });
        }
        if pooled {
            self.scratch.sends = sends;
            self.scratch.timers = timers;
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.len() {
            if self.present[i] {
                self.dispatch(ProcessId::from(i), NodeEvent::Start);
            }
        }
    }

    /// The timestamp of the next queued event, if any. Note that before the
    /// first [`step`](Self::step)/[`run`](Self::run) call, start-up events
    /// have not yet been dispatched and may enqueue more work.
    pub fn peek_next_time(&mut self) -> Option<Time> {
        self.ensure_started();
        self.queue.peek_time()
    }

    /// Processes the next event, if any; returns its time.
    pub fn step(&mut self) -> Option<Time> {
        self.ensure_started();
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.time, "time cannot run backwards");
        self.time = self.time.max(ev.time);
        self.events_processed += 1;
        let target = ev.target;
        match ev.kind {
            EventKind::Crash => {
                self.crashed[target.index()] = true;
                if self.config.record_trace {
                    self.trace.push(TraceEvent {
                        time: self.time,
                        kind: TraceKind::Crashed { process: target },
                    });
                }
            }
            EventKind::Deliver { from, msg } => {
                self.network.complete_delivery(from, target);
                if self.crashed[target.index()] || !self.present[target.index()] {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::DroppedAtCrashed { from, to: target },
                        });
                    }
                } else {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::Delivered { from, to: target },
                        });
                    }
                    self.dispatch(target, NodeEvent::Message { from, msg });
                }
            }
            EventKind::Timer { tag } => {
                if !self.crashed[target.index()] && self.present[target.index()] {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::TimerFired {
                                process: target,
                                tag,
                            },
                        });
                    }
                    self.dispatch(target, NodeEvent::Timer { tag });
                }
            }
            EventKind::External(ext) => {
                if !self.crashed[target.index()] && self.present[target.index()] {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::ExternalDelivered { process: target },
                        });
                    }
                    self.dispatch(target, NodeEvent::External(ext));
                }
            }
            EventKind::Recover { corrupt } => {
                if self.crashed[target.index()] && self.present[target.index()] {
                    self.crashed[target.index()] = false;
                    self.crash_times[target.index()] = None;
                    self.incarnations[target.index()] += 1;
                    let incarnation = self.incarnations[target.index()];
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::Recovered {
                                process: target,
                                incarnation,
                                corrupt,
                            },
                        });
                    }
                    let corruption =
                        corrupt.then(|| fault_entropy(self.config.seed, target, self.time));
                    self.dispatch(
                        target,
                        NodeEvent::Recover {
                            incarnation,
                            corruption,
                        },
                    );
                }
            }
            EventKind::Corrupt => {
                if !self.crashed[target.index()] && self.present[target.index()] {
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::Corrupted { process: target },
                        });
                    }
                    let entropy = fault_entropy(self.config.seed, target, self.time);
                    self.dispatch(target, NodeEvent::Corrupt { entropy });
                }
            }
            EventKind::Join => {
                if !self.present[target.index()] && !self.crashed[target.index()] {
                    self.present[target.index()] = true;
                    // Joiners share the restart counter with recoveries so a
                    // later crash + recovery keeps incarnations monotone.
                    self.incarnations[target.index()] += 1;
                    let incarnation = self.incarnations[target.index()];
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::Joined {
                                process: target,
                                incarnation,
                            },
                        });
                    }
                    self.dispatch(target, NodeEvent::Join { incarnation });
                }
            }
            EventKind::Leave { graceful } => {
                if self.present[target.index()] {
                    // A crashed member can still be removed (it just gets
                    // no drain); once departed, a scheduled recovery can
                    // never resurrect it.
                    if graceful && !self.crashed[target.index()] {
                        // The drain handler runs while the node is still
                        // present, so its farewell sends go out normally.
                        self.dispatch(target, NodeEvent::Leave);
                    }
                    self.present[target.index()] = false;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent {
                            time: self.time,
                            kind: TraceKind::Left {
                                process: target,
                                graceful,
                            },
                        });
                    }
                }
            }
        }
        Some(self.time)
    }

    /// Runs until the event queue drains or `max_events` is hit; returns
    /// `true` if the system quiesced (queue drained).
    pub fn run(&mut self) -> bool {
        self.ensure_started();
        while self.events_processed < self.config.max_events {
            if self.step().is_none() {
                return true;
            }
        }
        self.queue.is_empty()
    }

    /// Processes every event with `time ≤ horizon`, then advances the clock
    /// to exactly `horizon`. This is the main driver for workloads (like
    /// heartbeat failure detectors) that never quiesce.
    pub fn run_until(&mut self, horizon: Time) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > horizon || self.events_processed >= self.config.max_events {
                break;
            }
            self.step();
        }
        self.time = self.time.max(horizon);
    }
}

/// Deterministic entropy word for a scheduled process fault: a
/// splitmix64-style mix of `(seed, process, time)`, so corrupted runs are
/// exactly as replayable per seed as clean ones.
fn fault_entropy(seed: u64, p: ProcessId, t: Time) -> u64 {
    let mut z = seed
        ^ (p.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ t.ticks().wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    /// Test node: forwards each received counter+1 to the next process in
    /// the ring until the counter reaches a limit; records each hop.
    struct RingHop {
        n: usize,
        limit: u32,
    }

    impl Node for RingHop {
        type Msg = u32;
        type Ext = u32;
        type Obs = u32;

        fn handle(&mut self, ev: NodeEvent<u32, u32>, ctx: &mut Context<'_, u32, u32>) {
            let next = ProcessId::from((ctx.id().index() + 1) % self.n);
            match ev {
                NodeEvent::Start => {}
                NodeEvent::External(c) | NodeEvent::Message { msg: c, .. } => {
                    ctx.observe(c);
                    if c < self.limit {
                        ctx.send(next, c + 1);
                    }
                }
                NodeEvent::Timer { .. } | NodeEvent::Leave => {}
                NodeEvent::Recover { .. } | NodeEvent::Corrupt { .. } | NodeEvent::Join { .. } => {
                    ctx.observe(u32::MAX);
                }
            }
        }
    }

    fn ring_sim(seed: u64) -> Simulator<RingHop> {
        let cfg = SimConfig::default().n(4).seed(seed).record_trace(true);
        let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 4, limit: 10 });
        sim.schedule_external(p(0), Time(1), 0);
        sim
    }

    #[test]
    fn token_circulates_and_quiesces() {
        let mut sim = ring_sim(1);
        assert!(sim.run(), "run should quiesce");
        let hops: Vec<u32> = sim.observations().iter().map(|o| o.obs).collect();
        assert_eq!(hops, (0..=10).collect::<Vec<_>>());
        // Message k is observed at process (k mod 4) shifted by origin 0.
        for (k, o) in sim.observations().iter().enumerate() {
            assert_eq!(o.process, p(k % 4));
        }
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let mut a = ring_sim(77);
        let mut b = ring_sim(77);
        a.run();
        b.run();
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = ring_sim(1);
        let mut b = ring_sim(2);
        a.run();
        b.run();
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn crash_stops_a_process() {
        let mut sim = ring_sim(5);
        sim.schedule_crash(p(2), Time(2));
        sim.run();
        // The token dies when it reaches the crashed p2.
        assert!(sim.is_crashed(p(2)));
        assert_eq!(sim.crash_time(p(2)), Some(Time(2)));
        let max_hop = sim.observations().iter().map(|o| o.obs).max().unwrap();
        assert!(max_hop < 10, "token should not survive the crash");
        assert!(sim
            .observations()
            .iter()
            .all(|o| o.process != p(2) || o.time < Time(2)));
        assert_eq!(sim.correct_processes(), vec![p(0), p(1), p(3)]);
    }

    #[test]
    fn recovery_restarts_a_crashed_process() {
        let mut sim = ring_sim(5);
        sim.schedule_crash(p(2), Time(2));
        sim.schedule_recovery(p(2), Time(500), false);
        // Re-inject the token after the restart so the ring completes.
        sim.schedule_external(p(0), Time(600), 0);
        sim.run();
        assert!(!sim.is_crashed(p(2)));
        assert_eq!(sim.crash_time(p(2)), None);
        assert_eq!(sim.incarnation(p(2)), 1);
        assert_eq!(sim.correct_processes().len(), 4);
        // The recovered process handled the Recover event and later hops.
        assert!(sim
            .observations()
            .iter()
            .any(|o| o.process == p(2) && o.obs == u32::MAX));
        let max_hop = sim.observations().iter().map(|o| o.obs).max().unwrap();
        assert_eq!(max_hop, u32::MAX);
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Recovered { process, incarnation: 1, corrupt: false } if process == p(2))));
    }

    #[test]
    fn recovery_of_live_process_is_noop() {
        let mut sim = ring_sim(6);
        sim.schedule_recovery(p(1), Time(100), false);
        sim.run();
        assert_eq!(sim.incarnation(p(1)), 0);
        assert!(!sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Recovered { .. })));
    }

    #[test]
    fn corruption_hits_only_live_processes() {
        let mut sim = ring_sim(7);
        sim.schedule_crash(p(3), Time(2));
        sim.schedule_corruption(p(3), Time(10)); // crashed: no-op
        sim.schedule_corruption(p(1), Time(10)); // live: delivered
        sim.run();
        let corrupted: Vec<ProcessId> = sim
            .trace()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Corrupted { process } => Some(process),
                _ => None,
            })
            .collect();
        assert_eq!(corrupted, vec![p(1)]);
    }

    #[test]
    fn fault_plan_recoveries_are_auto_scheduled_and_deterministic() {
        let run = |seed| {
            let cfg = SimConfig::default()
                .n(4)
                .seed(seed)
                .faults(
                    FaultPlan::new()
                        .recover_corrupted(p(2), Time(50))
                        .corrupt_state(p(0), Time(30)),
                )
                .record_trace(true);
            let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 4, limit: 10 });
            sim.schedule_crash(p(2), Time(2));
            sim.schedule_external(p(0), Time(1), 0);
            sim.run();
            (sim.trace().to_vec(), sim.incarnation(p(2)))
        };
        let (trace, inc) = run(9);
        assert_eq!(inc, 1);
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Recovered { corrupt: true, .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Corrupted { .. })));
        assert_eq!(run(9), run(9), "fault runs are pure functions of the seed");
    }

    #[test]
    fn initially_absent_process_never_starts_and_drops_traffic() {
        let mut sim = ring_sim(11);
        sim.set_initially_absent(p(2));
        sim.run();
        assert!(!sim.is_present(p(2)));
        // The token dies at the absent p2 exactly as at a crashed one.
        assert!(sim.observations().iter().all(|o| o.process != p(2)));
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::DroppedAtCrashed { to, .. } if to == p(2))));
        let max_hop = sim.observations().iter().map(|o| o.obs).max().unwrap();
        assert!(max_hop < 10, "token must not pass through an absent node");
    }

    #[test]
    fn join_boots_an_absent_process_with_fresh_incarnation() {
        let mut sim = ring_sim(12);
        sim.set_initially_absent(p(2));
        sim.schedule_join(p(2), Time(500));
        // Re-inject the token after the join so the ring completes.
        sim.schedule_external(p(0), Time(600), 0);
        sim.run();
        assert!(sim.is_present(p(2)));
        assert_eq!(sim.incarnation(p(2)), 1);
        // The joiner saw its Join event (observed as u32::MAX by RingHop)
        // and then forwarded real traffic.
        assert!(sim
            .observations()
            .iter()
            .any(|o| o.process == p(2) && o.obs == u32::MAX));
        let max_hop = sim.observations().iter().map(|o| o.obs).max().unwrap();
        assert_eq!(max_hop, u32::MAX);
        assert!(sim.trace().iter().any(
            |e| matches!(e.kind, TraceKind::Joined { process, incarnation: 1 } if process == p(2))
        ));
        // Joining an already-present process is a no-op.
        let mut sim = ring_sim(12);
        sim.schedule_join(p(1), Time(100));
        sim.run();
        assert_eq!(sim.incarnation(p(1)), 0);
        assert!(!sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Joined { .. })));
    }

    #[test]
    fn leave_permanently_silences_a_process() {
        for graceful in [false, true] {
            let mut sim = ring_sim(13);
            sim.schedule_leave(p(2), Time(2), graceful);
            sim.run();
            assert!(!sim.is_present(p(2)));
            // No event reaches p2 after the leave fires.
            assert!(sim
                .observations()
                .iter()
                .all(|o| o.process != p(2) || o.time < Time(2)));
            assert!(sim.trace().iter().any(|e| matches!(
                e.kind,
                TraceKind::Left { process, graceful: g } if process == p(2) && g == graceful
            )));
            // A recovery scheduled after departure must not resurrect it:
            // departure is permanent even for an already-crashed node.
            let mut sim = ring_sim(13);
            sim.schedule_crash(p(2), Time(2));
            sim.schedule_leave(p(2), Time(3), graceful);
            sim.schedule_recovery(p(2), Time(50), false);
            sim.run();
            assert!(!sim.is_present(p(2)));
            assert_eq!(sim.incarnation(p(2)), 0, "departed nodes never recover");
        }
    }

    #[test]
    fn membership_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let cfg = SimConfig::default().n(6).seed(seed).record_trace(true);
            let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 6, limit: 40 });
            sim.set_initially_absent(p(4));
            sim.schedule_join(p(4), Time(30));
            sim.schedule_leave(p(1), Time(60), true);
            sim.schedule_external(p(0), Time(1), 0);
            sim.schedule_external(p(0), Time(100), 0);
            sim.run();
            (sim.trace().to_vec(), sim.events_processed())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn churn_free_runs_are_byte_identical_to_seed_kernel() {
        // The membership machinery must be invisible when unused: a run on
        // the extended kernel with an empty plan produces the identical
        // trace, observation log, and event count as the seed behavior.
        let mut plain = ring_sim(77);
        plain.run();
        let mut noop = ring_sim(77);
        // Exercising only the no-op paths (present joins, absent leaves are
        // not scheduled at all here) must not perturb anything.
        noop.run();
        assert_eq!(plain.trace(), noop.trace());
        assert_eq!(plain.events_processed(), noop.events_processed());
    }

    #[test]
    fn fault_entropy_is_deterministic_and_spread() {
        let a = fault_entropy(1, p(0), Time(10));
        assert_eq!(a, fault_entropy(1, p(0), Time(10)));
        assert_ne!(a, fault_entropy(2, p(0), Time(10)));
        assert_ne!(a, fault_entropy(1, p(1), Time(10)));
        assert_ne!(a, fault_entropy(1, p(0), Time(11)));
    }

    #[test]
    fn sends_to_crashed_are_counted_and_dropped() {
        struct Pester;
        impl Node for Pester {
            type Msg = ();
            type Ext = ();
            type Obs = ();
            fn handle(&mut self, ev: NodeEvent<(), ()>, ctx: &mut Context<'_, (), ()>) {
                if matches!(ev, NodeEvent::External(())) {
                    ctx.send(ProcessId(1), ());
                }
            }
        }
        let mut sim = Simulator::new(SimConfig::default().n(2).record_trace(true), |_, _| Pester);
        sim.schedule_crash(p(1), Time(5));
        sim.schedule_external(p(0), Time(10), ());
        sim.run();
        assert_eq!(sim.sends_to_crashed().len(), 1);
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::DroppedAtCrashed { .. })));
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let mut sim = ring_sim(3);
        sim.run_until(Time(1_000));
        assert_eq!(sim.now(), Time(1_000));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode;
        impl Node for TimerNode {
            type Msg = ();
            type Ext = ();
            type Obs = u64;
            fn handle(&mut self, ev: NodeEvent<(), ()>, ctx: &mut Context<'_, (), u64>) {
                match ev {
                    NodeEvent::Start => {
                        ctx.set_timer(30, 3);
                        ctx.set_timer(10, 1);
                        ctx.set_timer(20, 2);
                    }
                    NodeEvent::Timer { tag } => ctx.observe(tag),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new(SimConfig::default().n(1), |_, _| TimerNode);
        sim.run();
        let tags: Vec<u64> = sim.observations().iter().map(|o| o.obs).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(sim.now(), Time(30));
    }

    #[test]
    fn fifo_order_respected_under_random_delays() {
        struct Burst;
        impl Node for Burst {
            type Msg = u32;
            type Ext = ();
            type Obs = u32;
            fn handle(&mut self, ev: NodeEvent<u32, ()>, ctx: &mut Context<'_, u32, u32>) {
                match ev {
                    NodeEvent::External(()) => {
                        for k in 0..100 {
                            ctx.send(ProcessId(1), k);
                        }
                    }
                    NodeEvent::Message { msg, .. } => ctx.observe(msg),
                    _ => {}
                }
            }
        }
        for seed in 0..10 {
            let cfg = SimConfig::default()
                .n(2)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 50 });
            let mut sim = Simulator::new(cfg, |_, _| Burst);
            sim.schedule_external(p(0), Time(1), ());
            sim.run();
            let got: Vec<u32> = sim.observations().iter().map(|o| o.obs).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>(), "seed {seed} broke FIFO");
        }
    }

    #[test]
    fn total_loss_starves_the_ring_but_is_traced() {
        let cfg = SimConfig::default()
            .n(4)
            .seed(21)
            .faults(FaultPlan::new().loss(1.0))
            .record_trace(true);
        let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 4, limit: 10 });
        sim.schedule_external(p(0), Time(1), 0);
        assert!(sim.run(), "with every message lost the run quiesces fast");
        // p0 observes the injected token; the forwarded copy dies in transit.
        assert_eq!(sim.observations().len(), 1);
        assert!(sim.trace().iter().any(|e| matches!(
            e.kind,
            TraceKind::Lost {
                by_partition: false,
                ..
            }
        )));
        let s = sim.channel_stats(p(0), p(1));
        assert_eq!((s.total, s.dropped, s.in_transit), (1, 1, 0));
    }

    #[test]
    fn duplication_delivers_twice_and_is_traced() {
        struct Echo;
        impl Node for Echo {
            type Msg = u32;
            type Ext = ();
            type Obs = u32;
            fn handle(&mut self, ev: NodeEvent<u32, ()>, ctx: &mut Context<'_, u32, u32>) {
                match ev {
                    NodeEvent::External(()) => ctx.send(ProcessId(1), 7),
                    NodeEvent::Message { msg, .. } => ctx.observe(msg),
                    _ => {}
                }
            }
        }
        let cfg = SimConfig::default()
            .n(2)
            .seed(22)
            .faults(FaultPlan::new().duplication(1.0))
            .record_trace(true);
        let mut sim = Simulator::new(cfg, |_, _| Echo);
        sim.schedule_external(p(0), Time(1), ());
        sim.run();
        let got: Vec<u32> = sim.observations().iter().map(|o| o.obs).collect();
        assert_eq!(got, vec![7, 7], "raw duplication reaches the node twice");
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Duplicated { .. })));
        let s = sim.channel_stats(p(0), p(1));
        assert_eq!((s.total, s.duplicated, s.in_transit), (1, 1, 0));
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let cfg = SimConfig::default()
                .n(4)
                .seed(seed)
                .faults(
                    FaultPlan::new()
                        .loss(0.2)
                        .duplication(0.2)
                        .reorder(0.2, 8)
                        .partition(vec![p(0)], Time(3), Time(9)),
                )
                .record_trace(true);
            let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 4, limit: 10 });
            sim.schedule_external(p(0), Time(1), 0);
            sim.run();
            (sim.trace().to_vec(), sim.events_processed())
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn partition_heals_and_traffic_resumes() {
        let cfg = SimConfig::default()
            .n(4)
            .seed(25)
            .delay(DelayModel::Fixed(1))
            .faults(FaultPlan::new().partition(vec![p(1)], Time(0), Time(50)))
            .record_trace(true);
        let mut sim = Simulator::new(cfg, |_, _| RingHop { n: 4, limit: 10 });
        // Token injected while p1 is cut off: the first hop 0→1 dies.
        sim.schedule_external(p(0), Time(1), 0);
        // Re-injected after heal: the ring completes.
        sim.schedule_external(p(0), Time(60), 0);
        sim.run();
        assert!(sim.trace().iter().any(|e| matches!(
            e.kind,
            TraceKind::Lost {
                by_partition: true,
                ..
            }
        )));
        let max_hop = sim.observations().iter().map(|o| o.obs).max().unwrap();
        assert_eq!(max_hop, 10, "after heal the token makes the full tour");
    }

    #[test]
    fn max_events_valve_stops_runaway() {
        struct PingPong;
        impl Node for PingPong {
            type Msg = ();
            type Ext = ();
            type Obs = ();
            fn handle(&mut self, ev: NodeEvent<(), ()>, ctx: &mut Context<'_, (), ()>) {
                let other = ProcessId::from(1 - ctx.id().index());
                match ev {
                    NodeEvent::Start if ctx.id() == ProcessId(0) => ctx.send(other, ()),
                    NodeEvent::Message { .. } => ctx.send(other, ()),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new(SimConfig::default().n(2).max_events(500), |_, _| PingPong);
        assert!(!sim.run(), "infinite ping-pong must hit the valve");
        assert_eq!(sim.events_processed(), 500);
    }

    #[test]
    fn channel_stats_track_high_water() {
        struct Burst;
        impl Node for Burst {
            type Msg = u32;
            type Ext = ();
            type Obs = ();
            fn handle(&mut self, ev: NodeEvent<u32, ()>, ctx: &mut Context<'_, u32, ()>) {
                if matches!(ev, NodeEvent::External(())) {
                    for k in 0..5 {
                        ctx.send(ProcessId(1), k);
                    }
                }
            }
        }
        let mut sim = Simulator::new(
            SimConfig::default().n(2).delay(DelayModel::Fixed(10)),
            |_, _| Burst,
        );
        sim.schedule_external(p(0), Time(1), ());
        sim.run();
        let s = sim.channel_stats(p(0), p(1));
        assert_eq!(s.total, 5);
        assert_eq!(s.high_water, 5);
        assert_eq!(s.in_transit, 0, "all delivered after run");
        assert_eq!(sim.max_channel_high_water(), 5);
        assert_eq!(sim.total_messages(), 5);
    }
}
