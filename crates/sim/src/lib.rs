//! Deterministic discrete-event simulation of asynchronous message-passing
//! systems with crash faults and partial synchrony.
//!
//! The paper's computational model (§2) is an asynchronous message-passing
//! system with reliable FIFO channels, unbounded message delays and relative
//! process speeds, and crash faults, augmented with enough partial synchrony
//! to implement the eventually perfect failure detector ◇P. This crate is
//! that substrate:
//!
//! * [`Simulator`] — a seeded, fully deterministic discrete-event kernel.
//!   Processes are [`Node`] state machines; every run with the same seed and
//!   schedule produces the identical trace, which is what makes the paper's
//!   *eventual* properties (finitely many mistakes, infinite suffixes)
//!   checkable in finite executions.
//! * [`DelayModel`] — message-delay distributions, including the
//!   Dwork–Lynch–Stockmeyer **global stabilization time** (GST) model: delays
//!   are adversarially large before GST and bounded by Δ afterwards, which is
//!   exactly the partial synchrony the paper cites as sufficient for ◇P.
//! * Reliable FIFO channels with per-edge in-transit accounting (high-water
//!   marks feed the paper's "at most four messages per edge" claim, §7).
//! * Crash injection: a crashed process ceases execution without warning;
//!   messages addressed to it after the crash are counted (for the
//!   quiescence claim, §7) and discarded on delivery. Beyond the paper's
//!   crash-*stop* model, a crashed process may be scheduled to *recover*
//!   ([`Simulator::schedule_recovery`]) with blank or adversarially
//!   corrupted state and a fresh incarnation number, and live processes may
//!   suffer transient state corruption
//!   ([`Simulator::schedule_corruption`]) — the crash-recovery +
//!   transient-fault model of the self-stabilization literature.
//! * Dynamic membership: a seeded [`MembershipPlan`] schedules join and
//!   leave events over a fixed maximum population, so the conflict graph
//!   itself becomes part of the fault model. Initially-absent processes
//!   boot mid-run ([`Simulator::schedule_join`]) with a fresh incarnation;
//!   present processes depart permanently ([`Simulator::schedule_leave`]),
//!   either gracefully (one final drain event) or crash-stop.
//! * Adversarial channel faults beyond the paper's model: a seeded
//!   [`FaultPlan`] adds per-edge message loss, duplication, bounded
//!   reordering, and timed link partitions that heal — all recorded in the
//!   kernel trace and exactly as deterministic per seed as a fault-free run.
//!   The `ekbd-link` crate restores reliable FIFO delivery on top.
//!
//! # Example
//!
//! ```
//! use ekbd_sim::{Simulator, SimConfig, Node, NodeEvent, Context, ProcessId};
//!
//! /// A node that greets its successor once and notes the echo it gets back.
//! struct Echo { n: usize }
//! impl Node for Echo {
//!     type Msg = &'static str;
//!     type Ext = ();
//!     type Obs = String;
//!     fn handle(&mut self, ev: NodeEvent<Self::Msg, Self::Ext>,
//!               ctx: &mut Context<'_, Self::Msg, Self::Obs>) {
//!         match ev {
//!             NodeEvent::Start => {
//!                 let next = ProcessId::from((ctx.id().index() + 1) % self.n);
//!                 ctx.send(next, "hello");
//!             }
//!             NodeEvent::Message { from, msg: "hello" } => ctx.send(from, "world"),
//!             NodeEvent::Message { from, .. } => ctx.observe(format!("done with {from}")),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default().seed(7), |_, _| Echo { n: 3 });
//! sim.run();
//! assert_eq!(sim.observations().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod fault;
mod membership;
mod network;
mod node;
pub mod obs;
pub mod packed;
pub mod shard;
mod sim;
mod time;
mod trace;

pub use ekbd_graph::ProcessId;
pub use event::EngineKind;
pub use fault::{CorruptionSpec, FaultPlan, FaultPlanError, LinkFault, Partition, RecoverySpec};
pub use membership::{MembershipEvent, MembershipPlan, MembershipPlanError};
pub use network::{ChannelStats, DelayModel};
pub use node::{Context, Node, NodeEvent};
pub use obs::{LatencyHistogram, Reservoir, StreamSink};
pub use packed::{EatExcerpt, EatObs, InteractiveScale, PackedKernel, ScaleConfig};
pub use shard::{run_sharded, ScaleRunReport};
pub use sim::{SimConfig, Simulator};
pub use time::{Duration, Time};
pub use trace::{Observation, TraceEvent, TraceKind};
