use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual-time duration, in abstract ticks.
pub type Duration = u64;

/// A point in virtual time.
///
/// The simulator's clock is a plain tick counter: absolute values are
/// meaningless, only order and differences matter. `Time` is totally
/// ordered and saturates rather than overflowing on arithmetic so that
/// "effectively infinite" horizons are safe to express.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The start of every simulation.
    pub const ZERO: Time = Time(0);
    /// A horizon later than any event a bounded run can produce.
    pub const MAX: Time = Time(u64::MAX);

    /// Ticks elapsed since time zero.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs))
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(v: u64) -> Self {
        Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = Time(10);
        assert_eq!(t + 5, Time(15));
        assert_eq!(Time(15) - Time(10), 5);
        assert_eq!(Time(10) - Time(15), 0, "difference saturates at zero");
        assert!(Time(3) < Time(4));
        assert_eq!(Time(7).since(Time(2)), 5);
    }

    #[test]
    fn saturation_at_max() {
        assert_eq!(Time::MAX + 1, Time::MAX);
        let mut t = Time::MAX;
        t += 100;
        assert_eq!(t, Time::MAX);
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", Time(42)), "t42");
        assert_eq!(format!("{:?}", Time(42)), "t42");
    }
}
