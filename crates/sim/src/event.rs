use crate::time::Time;
use crate::ProcessId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when a queued event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M, E> {
    /// Deliver a message on the FIFO channel `from → to`.
    Deliver { from: ProcessId, msg: M },
    /// Fire a timer with the node-chosen tag.
    Timer { tag: u64 },
    /// Deliver an externally scheduled event (e.g. "become hungry").
    External(E),
    /// Crash the target process.
    Crash,
    /// Restart the target process if it is crashed, optionally with
    /// adversarially corrupted state.
    Recover {
        /// Whether the restarted state is corrupted rather than blank.
        corrupt: bool,
    },
    /// Flip state bits of the target process if it is live (a transient
    /// fault in the self-stabilization sense).
    Corrupt,
}

/// A queued event, ordered by `(time, seq)`.
///
/// `seq` is a global monotone counter assigned at scheduling time, so
/// simultaneous events fire in a deterministic scheduling order, making the
/// whole simulation a pure function of `(seed, schedule)`.
pub(crate) struct Scheduled<M, E> {
    pub time: Time,
    pub seq: u64,
    pub target: ProcessId,
    pub kind: EventKind<M, E>,
}

impl<M, E> PartialEq for Scheduled<M, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, E> Eq for Scheduled<M, E> {}
impl<M, E> PartialOrd for Scheduled<M, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, E> Ord for Scheduled<M, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic priority queue of scheduled events.
pub(crate) struct EventQueue<M, E> {
    heap: BinaryHeap<Scheduled<M, E>>,
    next_seq: u64,
}

impl<M, E> EventQueue<M, E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `time` for `target`; returns the sequence number.
    pub fn push(&mut self, time: Time, target: ProcessId, kind: EventKind<M, E>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            target,
            kind,
        });
        seq
    }

    pub fn pop(&mut self) -> Option<Scheduled<M, E>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q: EventQueue<u32, ()> = EventQueue::new();
        q.push(Time(5), p(0), EventKind::Timer { tag: 1 });
        q.push(Time(3), p(1), EventKind::Timer { tag: 2 });
        q.push(Time(5), p(2), EventKind::Timer { tag: 3 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time(3)));
        let a = q.pop().unwrap();
        assert_eq!((a.time, a.target), (Time(3), p(1)));
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        // Same timestamp: scheduling order (seq) breaks the tie.
        assert_eq!((b.time, b.target), (Time(5), p(0)));
        assert_eq!((c.time, c.target), (Time(5), p(2)));
        assert!(b.seq < c.seq);
        assert!(q.is_empty());
    }

    #[test]
    fn seq_is_globally_monotone() {
        let mut q: EventQueue<(), ()> = EventQueue::new();
        let s1 = q.push(Time(9), p(0), EventKind::Crash);
        let s2 = q.push(Time(1), p(0), EventKind::Crash);
        assert!(s2 > s1);
    }
}
