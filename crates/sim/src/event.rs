use crate::time::Time;
use crate::ProcessId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::mem;

/// Which kernel data-structure engine a simulation runs on.
///
/// Both engines are observably identical: for any `(seed, schedule)` they
/// produce the same event order, the same trace, and the same statistics
/// (enforced by the cross-engine golden-trace tests). They differ only in
/// cost:
///
/// * [`Indexed`](EngineKind::Indexed) — the optimized kernel: a timer-wheel
///   event queue indexed by `Time`, conflict-graph channels interned to dense
///   ids backed by flat `Vec`s, pooled per-event allocations, and
///   move-instead-of-clone message delivery.
/// * [`Legacy`](EngineKind::Legacy) — the pre-optimization kernel
///   (`BinaryHeap` queue, `HashMap<(ProcessId, ProcessId), _>` channel state,
///   fresh allocations per event). Kept selectable so the E9 benchmark can
///   measure before/after on the same build and so equivalence stays testable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// Timer-wheel queue + dense interned edge state (the default).
    #[default]
    Indexed,
    /// The original heap + hash-map kernel, for A/B benchmarking.
    Legacy,
}

/// What happens when a queued event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M, E> {
    /// Deliver a message on the FIFO channel `from → to`.
    Deliver { from: ProcessId, msg: M },
    /// Fire a timer with the node-chosen tag.
    Timer { tag: u64 },
    /// Deliver an externally scheduled event (e.g. "become hungry").
    External(E),
    /// Crash the target process.
    Crash,
    /// Restart the target process if it is crashed, optionally with
    /// adversarially corrupted state.
    Recover {
        /// Whether the restarted state is corrupted rather than blank.
        corrupt: bool,
    },
    /// Flip state bits of the target process if it is live (a transient
    /// fault in the self-stabilization sense).
    Corrupt,
    /// Boot the target process into the system if it is absent (dynamic
    /// membership).
    Join,
    /// Remove the target process from the system if it is present.
    Leave {
        /// Whether the process gets a final drain event before going
        /// silent (graceful) or vanishes without warning (crash-stop).
        graceful: bool,
    },
}

/// A queued event, ordered by `(time, seq)`.
///
/// `seq` is a global monotone counter assigned at scheduling time, so
/// simultaneous events fire in a deterministic scheduling order, making the
/// whole simulation a pure function of `(seed, schedule)`.
pub(crate) struct Scheduled<M, E> {
    pub time: Time,
    pub seq: u64,
    pub target: ProcessId,
    pub kind: EventKind<M, E>,
}

impl<M, E> PartialEq for Scheduled<M, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M, E> Eq for Scheduled<M, E> {}
impl<M, E> PartialOrd for Scheduled<M, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, E> Ord for Scheduled<M, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic priority queue of scheduled events, in the engine flavor
/// chosen by [`EngineKind`]. Both flavors pop in identical `(time, seq)`
/// order.
// One instance per simulator, accessed on every event: the wheel stays
// inline rather than boxed so the hot path has no extra indirection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum EventQueue<M, E> {
    Wheel(WheelQueue<M, E>),
    Heap(HeapQueue<M, E>),
}

impl<M, E> EventQueue<M, E> {
    pub fn new(engine: EngineKind) -> Self {
        match engine {
            EngineKind::Indexed => EventQueue::Wheel(WheelQueue::new()),
            EngineKind::Legacy => EventQueue::Heap(HeapQueue::new()),
        }
    }

    /// Schedules `kind` at `time` for `target`; returns the sequence number.
    #[inline]
    pub fn push(&mut self, time: Time, target: ProcessId, kind: EventKind<M, E>) -> u64 {
        match self {
            EventQueue::Wheel(q) => q.push(time, target, kind),
            EventQueue::Heap(q) => q.push(time, target, kind),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<M, E>> {
        match self {
            EventQueue::Wheel(q) => q.pop(),
            EventQueue::Heap(q) => q.pop(),
        }
    }

    #[inline]
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            EventQueue::Wheel(q) => q.peek_time(),
            EventQueue::Heap(q) => q.peek_time(),
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(q) => q.len,
            EventQueue::Heap(q) => q.heap.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            EventQueue::Wheel(q) => q.len == 0,
            EventQueue::Heap(q) => q.heap.is_empty(),
        }
    }
}

/// The pre-optimization queue: a `BinaryHeap` over [`Scheduled`].
pub(crate) struct HeapQueue<M, E> {
    heap: BinaryHeap<Scheduled<M, E>>,
    next_seq: u64,
}

impl<M, E> HeapQueue<M, E> {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: Time, target: ProcessId, kind: EventKind<M, E>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            target,
            kind,
        });
        seq
    }

    pub fn pop(&mut self) -> Option<Scheduled<M, E>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }
}

const WHEEL_BITS: usize = 12;
/// Wheel window width in ticks. Message delays and timer periods in every
/// workload are orders of magnitude smaller, so in practice all pushes land
/// in the window and cost O(1); anything outside spills to a sorted overflow.
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
const SLOT_MASK: u64 = (WHEEL_SLOTS - 1) as u64;
const WORDS: usize = WHEEL_SLOTS / 64;
/// Retained scratch buffers (drained slot vectors, overflow buckets).
const POOL_CAP: usize = 64;

/// A timer-wheel event queue indexed by absolute tick.
///
/// The wheel covers the moving window `[cursor, cursor + WHEEL_SLOTS)`;
/// slot `t & SLOT_MASK` holds all events at tick `t`, in push (= `seq`)
/// order. A two-level occupancy bitmap (64-bit summary over 64 words) finds
/// the next non-empty slot in a handful of word operations. Events outside
/// the window — far-future pushes, and the rare push behind the cursor —
/// live in a sorted `BTreeMap` overflow keyed by tick.
///
/// `cursor` only advances when a batch is *popped*, never on peek, so
/// callers may interleave `peek_time` with external event injection (the
/// `LiveRun` pattern) without perturbing order. Within one tick, events from
/// the wheel and the overflow are merged by `seq`, preserving the global
/// `(time, seq)` pop order of the legacy heap exactly.
pub(crate) struct WheelQueue<M, E> {
    slots: Box<[Vec<Scheduled<M, E>>]>,
    /// Bit `i % 64` of word `i / 64` set iff slot `i` is non-empty.
    occupied: [u64; WORDS],
    /// Bit `w` set iff `occupied[w] != 0`.
    summary: u64,
    /// Wheel window anchor: every wheel-resident event has
    /// `time ∈ [cursor, cursor + WHEEL_SLOTS)`.
    cursor: u64,
    /// The batch currently being popped, reversed so `pop` is `Vec::pop`.
    draining: Vec<Scheduled<M, E>>,
    /// Tick of the draining batch (meaningful iff `draining` is non-empty).
    draining_time: u64,
    /// Out-of-window events, keyed by tick, in push order per bucket.
    overflow: BTreeMap<u64, Vec<Scheduled<M, E>>>,
    /// Recycled empty vectors, so steady-state operation does not allocate.
    pool: Vec<Vec<Scheduled<M, E>>>,
    /// Cached `(next wheel tick, next overflow tick)` from the last scan,
    /// invalidated by any push or batch staging. With the driver's
    /// peek-then-pop loop this halves the occupancy-bitmap scans.
    scan_cache: Option<(Option<u64>, Option<u64>)>,
    len: usize,
    next_seq: u64,
}

impl<M, E> WheelQueue<M, E> {
    pub fn new() -> Self {
        WheelQueue {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            summary: 0,
            cursor: 0,
            draining: Vec::new(),
            draining_time: 0,
            overflow: BTreeMap::new(),
            pool: Vec::new(),
            scan_cache: None,
            len: 0,
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: Time, target: ProcessId, kind: EventKind<M, E>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Scheduled {
            time,
            seq,
            target,
            kind,
        };
        let t = time.ticks();
        self.len += 1;
        if t.wrapping_sub(self.cursor) < WHEEL_SLOTS as u64 && t >= self.cursor {
            // A push can only move the next occupied tick *earlier*, so the
            // scan cache stays valid under a min-update (no rescan needed).
            if let Some((wheel_next, _)) = self.scan_cache.as_mut() {
                if wheel_next.is_none_or(|w| t < w) {
                    *wheel_next = Some(t);
                }
            }
            let idx = (t & SLOT_MASK) as usize;
            let slot = &mut self.slots[idx];
            if slot.capacity() == 0 {
                if let Some(buf) = self.pool.pop() {
                    *slot = buf;
                }
            }
            slot.push(ev);
            self.mark(idx);
        } else {
            if let Some((_, over_next)) = self.scan_cache.as_mut() {
                if over_next.is_none_or(|o| t < o) {
                    *over_next = Some(t);
                }
            }
            let bucket = self
                .overflow
                .entry(t)
                .or_insert_with(|| self.pool.pop().unwrap_or_default());
            bucket.push(ev);
        }
        seq
    }

    pub fn pop(&mut self) -> Option<Scheduled<M, E>> {
        if let Some(ev) = self.draining.pop() {
            self.len -= 1;
            return Some(ev);
        }
        if self.len == 0 {
            return None;
        }
        // Fast path: the steady state is a lone event in a wheel slot, which
        // needs none of the batch-staging machinery (take/reverse/recycle).
        let (wheel_next, over_next) = self.scan();
        if let Some(w) = wheel_next {
            if over_next.is_none_or(|o| w < o) {
                let idx = (w & SLOT_MASK) as usize;
                if self.slots[idx].len() == 1 {
                    let ev = self.slots[idx].pop().expect("slot length checked");
                    self.unmark(idx);
                    if w > self.cursor {
                        self.cursor = w;
                    }
                    self.scan_cache = None;
                    self.len -= 1;
                    return Some(ev);
                }
            }
        }
        self.stage_next_batch();
        let ev = self.draining.pop().expect("staged batch is non-empty");
        self.len -= 1;
        Some(ev)
    }

    /// Earliest queued tick, without committing the cursor.
    pub fn peek_time(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = if self.draining.is_empty() {
            None
        } else {
            Some(self.draining_time)
        };
        let (wheel_next, over_next) = self.scan();
        if let Some(t) = wheel_next {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        if let Some(t) = over_next {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best.map(Time)
    }

    /// `(next wheel tick, next overflow tick)`, cached between mutations.
    #[inline]
    fn scan(&mut self) -> (Option<u64>, Option<u64>) {
        if let Some(cached) = self.scan_cache {
            return cached;
        }
        let wheel_next = self.next_occupied().map(|idx| self.slot_tick(idx));
        let over_next = self.overflow.keys().next().copied();
        self.scan_cache = Some((wheel_next, over_next));
        (wheel_next, over_next)
    }

    /// Moves all events of the earliest tick into `draining` (reversed).
    fn stage_next_batch(&mut self) {
        let (wheel_next, over_next) = self.scan();
        self.scan_cache = None;
        let t = match (wheel_next, over_next) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 but no events staged"),
        };
        let from_overflow = if over_next == Some(t) {
            self.overflow.remove(&t)
        } else {
            None
        };
        let from_wheel = if wheel_next == Some(t) {
            let idx = (t & SLOT_MASK) as usize;
            self.unmark(idx);
            Some(mem::take(&mut self.slots[idx]))
        } else {
            None
        };
        // Keep the window anchored at the tick being drained so subsequent
        // near-future pushes stay O(1) even after a long idle jump. Safe:
        // `t` is the global minimum, so every wheel event is ≥ t and the
        // window upper bound only grows.
        if t > self.cursor {
            self.cursor = t;
        }
        let mut batch = match (from_overflow, from_wheel) {
            // Rare: the same tick reached both containers (a far-future
            // bucket whose tick later entered the window while new pushes at
            // that tick went to the wheel). Merge by `seq` to preserve order.
            (Some(a), Some(b)) => merge_by_seq(a, b, self.pool.pop().unwrap_or_default()),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!(),
        };
        batch.reverse();
        debug_assert!(self.draining.is_empty());
        let spent = mem::replace(&mut self.draining, batch);
        self.draining_time = t;
        self.recycle(spent);
    }

    #[inline]
    fn slot_tick(&self, idx: usize) -> u64 {
        let base = self.cursor & SLOT_MASK;
        let dist = ((idx as u64).wrapping_sub(base)) & SLOT_MASK;
        self.cursor + dist
    }

    /// First occupied slot in circular order from the cursor, if any.
    fn next_occupied(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let start = (self.cursor & SLOT_MASK) as usize;
        let (word0, bit0) = (start / 64, start % 64);
        let w = self.occupied[word0] & (!0u64 << bit0);
        if w != 0 {
            return Some(word0 * 64 + w.trailing_zeros() as usize);
        }
        for i in 1..WORDS {
            let wi = (word0 + i) % WORDS;
            if self.summary & (1 << wi) == 0 {
                continue;
            }
            let w = self.occupied[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        let w = self.occupied[word0] & ((1u64 << bit0) - 1);
        if w != 0 {
            return Some(word0 * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    #[inline]
    fn mark(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
    }

    #[inline]
    fn unmark(&mut self, idx: usize) {
        let word = idx / 64;
        self.occupied[word] &= !(1 << (idx % 64));
        if self.occupied[word] == 0 {
            self.summary &= !(1 << word);
        }
    }

    fn recycle(&mut self, mut v: Vec<Scheduled<M, E>>) {
        if self.pool.len() < POOL_CAP && v.capacity() > 0 {
            v.clear();
            self.pool.push(v);
        }
    }
}

/// Merges two same-tick batches, each already sorted by `seq`, into one.
fn merge_by_seq<M, E>(
    a: Vec<Scheduled<M, E>>,
    b: Vec<Scheduled<M, E>>,
    mut out: Vec<Scheduled<M, E>>,
) -> Vec<Scheduled<M, E>> {
    out.reserve(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.seq < y.seq {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, Some(_)) => {
                out.extend(ib);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn engines() -> [EngineKind; 2] {
        [EngineKind::Indexed, EngineKind::Legacy]
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for engine in engines() {
            let mut q: EventQueue<u32, ()> = EventQueue::new(engine);
            q.push(Time(5), p(0), EventKind::Timer { tag: 1 });
            q.push(Time(3), p(1), EventKind::Timer { tag: 2 });
            q.push(Time(5), p(2), EventKind::Timer { tag: 3 });
            assert_eq!(q.len(), 3);
            assert_eq!(q.peek_time(), Some(Time(3)));
            let a = q.pop().unwrap();
            assert_eq!((a.time, a.target), (Time(3), p(1)));
            let b = q.pop().unwrap();
            let c = q.pop().unwrap();
            // Same timestamp: scheduling order (seq) breaks the tie.
            assert_eq!((b.time, b.target), (Time(5), p(0)));
            assert_eq!((c.time, c.target), (Time(5), p(2)));
            assert!(b.seq < c.seq);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn seq_is_globally_monotone() {
        for engine in engines() {
            let mut q: EventQueue<(), ()> = EventQueue::new(engine);
            let s1 = q.push(Time(9), p(0), EventKind::Crash);
            let s2 = q.push(Time(1), p(0), EventKind::Crash);
            assert!(s2 > s1);
        }
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q: EventQueue<u64, ()> = EventQueue::new(EngineKind::Indexed);
        // Far beyond the wheel window.
        let far = Time(WHEEL_SLOTS as u64 * 10 + 3);
        q.push(far, p(0), EventKind::Timer { tag: 99 });
        q.push(Time(1), p(0), EventKind::Timer { tag: 1 });
        assert_eq!(q.peek_time(), Some(Time(1)));
        assert_eq!(q.pop().unwrap().time, Time(1));
        assert_eq!(q.peek_time(), Some(far));
        let ev = q.pop().unwrap();
        assert_eq!(ev.time, far);
        assert!(matches!(ev.kind, EventKind::Timer { tag: 99 }));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_wheel_and_overflow_merge_by_seq() {
        let mut q: EventQueue<u64, ()> = EventQueue::new(EngineKind::Indexed);
        let t = Time(WHEEL_SLOTS as u64 + 100);
        // Out of window now: goes to overflow.
        let s0 = q.push(t, p(0), EventKind::Timer { tag: 0 });
        // Advance the cursor past the window edge so `t` enters the window.
        q.push(Time(200), p(0), EventKind::Timer { tag: 7 });
        q.pop().unwrap();
        // Same tick again, now in-window: goes to the wheel slot.
        let s1 = q.push(t, p(1), EventKind::Timer { tag: 1 });
        assert!(s1 > s0);
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_eq!((a.time, b.time), (t, t));
        assert_eq!((a.seq, b.seq), (s0, s1), "merged batch must honor seq");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_commit_the_cursor() {
        let mut q: EventQueue<u64, ()> = EventQueue::new(EngineKind::Indexed);
        q.push(Time(500), p(0), EventKind::Timer { tag: 5 });
        assert_eq!(q.peek_time(), Some(Time(500)));
        // An earlier event injected after the peek must still pop first.
        q.push(Time(10), p(1), EventKind::Timer { tag: 1 });
        assert_eq!(q.peek_time(), Some(Time(10)));
        assert_eq!(q.pop().unwrap().time, Time(10));
        assert_eq!(q.pop().unwrap().time, Time(500));
    }

    #[test]
    fn wheel_matches_heap_on_random_workload() {
        // A deterministic pseudo-random push/pop workload; both engines must
        // produce identical (time, seq) pop sequences.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut wheel: EventQueue<u64, ()> = EventQueue::new(EngineKind::Indexed);
        let mut heap: EventQueue<u64, ()> = EventQueue::new(EngineKind::Legacy);
        let mut clock = 0u64;
        for round in 0..5_000 {
            let burst = (next() % 4) as usize;
            for _ in 0..burst {
                // Mostly near-future, occasionally far-future (overflow path).
                let jump = if next() % 50 == 0 {
                    next() % (WHEEL_SLOTS as u64 * 4)
                } else {
                    next() % 64
                };
                let t = Time(clock + jump);
                let tag = next();
                wheel.push(t, p(0), EventKind::Timer { tag });
                heap.push(t, p(0), EventKind::Timer { tag });
            }
            if round % 3 != 0 {
                let (a, b) = (wheel.pop(), heap.pop());
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.seq), (y.time, y.seq), "round {round}");
                        clock = x.time.ticks();
                    }
                    (None, None) => {}
                    _ => panic!("engines disagree on emptiness at round {round}"),
                }
            }
            assert_eq!(wheel.peek_time(), heap.peek_time(), "round {round}");
        }
        while let Some(y) = heap.pop() {
            let x = wheel.pop().expect("wheel drained early");
            assert_eq!((x.time, x.seq), (y.time, y.seq));
        }
        assert!(wheel.is_empty());
    }
}
