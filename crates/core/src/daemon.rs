//! The daemon-facing view of a dining solution.
//!
//! A *distributed daemon* continually selects non-conflicting processes to
//! execute their enabled actions (Song & Pike §2). When the daemon is
//! implemented by dining philosophers, each client process of the scheduled
//! protocol is a diner: it becomes hungry when it has an enabled action,
//! and when scheduled to eat it executes that action under the exclusion
//! guarantee.
//!
//! The contract is deliberately minimal so that any guarded-command-style
//! protocol — in this workspace, the self-stabilizing protocols of
//! `ekbd-stabilize` — can be scheduled by any [`DiningAlgorithm`]
//! implementation via a host that:
//!
//! 1. issues `Hungry` whenever [`ScheduledClient::wants_step`] holds,
//! 2. calls [`ScheduledClient::execute_step`] once the diner eats,
//! 3. issues `DoneEating` immediately after (eating is always finite).
//!
//! Under ◇WX the daemon may make finitely many scheduling mistakes —
//! steps executed concurrently with a conflicting neighbor. For a
//! self-stabilizing client each such mistake is at worst one more transient
//! fault, which stabilization absorbs; this is exactly why ◇WX suffices as
//! a scheduling model for stabilizing protocols (§1).

/// A client process of the scheduled protocol, as seen by the daemon.
pub trait ScheduledClient {
    /// Whether the client currently has an enabled action, i.e. should be
    /// hungry. Clients of a self-stabilizing protocol typically want steps
    /// infinitely often.
    fn wants_step(&self) -> bool;

    /// Executes one enabled action. Called only while the daemon grants
    /// mutual exclusion against all conflicting neighbors (modulo the
    /// finitely many ◇WX mistakes).
    fn execute_step(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown(u32);
    impl ScheduledClient for Countdown {
        fn wants_step(&self) -> bool {
            self.0 > 0
        }
        fn execute_step(&mut self) {
            self.0 -= 1;
        }
    }

    #[test]
    fn client_contract_round_trip() {
        let mut c = Countdown(2);
        assert!(c.wants_step());
        c.execute_step();
        c.execute_step();
        assert!(!c.wants_step());
    }
}
