use crate::msg::DiningMsg;
use crate::traits::{DinerState, DiningAlgorithm, DiningInput};
use ekbd_detector::SuspicionView;
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};

/// Algorithm 1 with a **generalized doorway ack budget** — the knob behind
/// the paper's title.
///
/// Algorithm 1 grants at most *one* ack per neighbor per hungry session
/// (the `replied` bit), which yields eventual **2**-bounded waiting: a
/// neighbor can enter the doorway once on a fresh ack and once more on an
/// ack that was already in flight. Generalizing `replied` from a bit to a
/// counter with budget `m` yields eventual **(m+1)**-bounded waiting by
/// the same argument: `m` acks granted during the session plus at most one
/// in flight from just before it started.
///
/// `BudgetedDiningProcess::new(.., 1)` is behaviorally identical to
/// [`DiningProcess`](crate::DiningProcess); larger budgets trade fairness
/// for doorway throughput (fewer deferred acks ⇒ less blocking). The
/// `e10_ack_budget` experiment measures exactly the predicted `k = m + 1`
/// staircase.
///
/// All other guarantees (◇WX safety, wait-freedom, fork uniqueness,
/// channel bounds, quiescence) are unaffected: the budget only changes
/// *when* acks are granted, never the fork protocol.
#[derive(Clone, Debug)]
pub struct BudgetedDiningProcess {
    id: ProcessId,
    color: Color,
    neighbors: Vec<ProcessId>,
    state: DinerState,
    inside: bool,
    budget: u32,
    /// Acks granted to each neighbor during the current hungry session
    /// (the generalized `replied`).
    granted: Vec<u32>,
    pinged: Vec<bool>,
    ack: Vec<bool>,
    deferred: Vec<bool>,
    fork: Vec<bool>,
    token: Vec<bool>,
}

impl BudgetedDiningProcess {
    /// Creates the process with the given ack `budget ≥ 1` per neighbor
    /// per hungry session.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0` (a zero budget deadlocks two hungry
    /// neighbors outside the doorway), on self-neighbors, or on improper
    /// colors.
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
        budget: u32,
    ) -> Self {
        assert!(budget >= 1, "ack budget must be at least 1");
        let mut pairs: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut fork = Vec::with_capacity(pairs.len());
        let mut token = Vec::with_capacity(pairs.len());
        for (q, qcolor) in pairs {
            assert!(q != id, "a process is not its own neighbor");
            assert!(qcolor != color, "coloring must be proper");
            ids.push(q);
            fork.push(color > qcolor);
            token.push(color < qcolor);
        }
        let d = ids.len();
        BudgetedDiningProcess {
            id,
            color,
            neighbors: ids,
            state: DinerState::Thinking,
            inside: false,
            budget,
            granted: vec![0; d],
            pinged: vec![false; d],
            ack: vec![false; d],
            deferred: vec![false; d],
            fork,
            token: token.clone(),
        }
    }

    /// Creates the process from a colored conflict graph.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId, budget: u32) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
            budget,
        )
    }

    /// The configured ack budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Whether this process currently holds the fork shared with `q`.
    pub fn holds_fork(&self, q: ProcessId) -> bool {
        self.fork[self.idx(q)]
    }

    /// Whether this process currently holds the token shared with `q`.
    pub fn holds_token(&self, q: ProcessId) -> bool {
        self.token[self.idx(q)]
    }

    fn idx(&self, q: ProcessId) -> usize {
        self.neighbors
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id))
    }

    fn internal_actions(
        &mut self,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        if self.state == DinerState::Hungry && !self.inside {
            for j in 0..self.neighbors.len() {
                if !self.pinged[j] && !self.ack[j] {
                    sends.push((self.neighbors[j], DiningMsg::Ping));
                    self.pinged[j] = true;
                }
            }
            let all = (0..self.neighbors.len())
                .all(|j| self.ack[j] || suspicion.suspects(self.neighbors[j]));
            if all {
                self.inside = true;
                for j in 0..self.neighbors.len() {
                    self.ack[j] = false;
                    self.granted[j] = 0;
                }
            }
        }
        if self.state == DinerState::Hungry && self.inside {
            for j in 0..self.neighbors.len() {
                if self.token[j] && !self.fork[j] {
                    sends.push((self.neighbors[j], DiningMsg::Request { color: self.color }));
                    self.token[j] = false;
                }
            }
            let all = (0..self.neighbors.len())
                .all(|j| self.fork[j] || suspicion.suspects(self.neighbors[j]));
            if all {
                self.state = DinerState::Eating;
            }
        }
    }
}

impl DiningAlgorithm for BudgetedDiningProcess {
    type Msg = DiningMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        match input {
            DiningInput::Hungry => {
                if self.state == DinerState::Thinking {
                    self.state = DinerState::Hungry;
                }
            }
            DiningInput::DoneEating => {
                if self.state == DinerState::Eating {
                    self.inside = false;
                    self.state = DinerState::Thinking;
                    for j in 0..self.neighbors.len() {
                        if self.token[j] && self.fork[j] {
                            sends.push((self.neighbors[j], DiningMsg::Fork));
                            self.fork[j] = false;
                        }
                        if self.deferred[j] {
                            sends.push((self.neighbors[j], DiningMsg::Ack));
                            self.deferred[j] = false;
                        }
                    }
                }
            }
            DiningInput::Message { from, msg } => {
                let j = self.idx(from);
                match msg {
                    DiningMsg::Ping => {
                        // Generalized Action 3: defer once the session's
                        // ack budget for this neighbor is exhausted.
                        let exhausted =
                            self.state == DinerState::Hungry && self.granted[j] >= self.budget;
                        if self.inside || exhausted {
                            self.deferred[j] = true;
                        } else {
                            sends.push((from, DiningMsg::Ack));
                            if self.state == DinerState::Hungry {
                                self.granted[j] += 1;
                            }
                        }
                    }
                    DiningMsg::Ack => {
                        self.ack[j] = self.state == DinerState::Hungry && !self.inside;
                        self.pinged[j] = false;
                    }
                    DiningMsg::Request { color } => {
                        debug_assert!(self.fork[j], "request without fork");
                        self.token[j] = true;
                        let grant = !self.inside
                            || (self.state == DinerState::Hungry && self.color < color);
                        if grant {
                            sends.push((from, DiningMsg::Fork));
                            self.fork[j] = false;
                        }
                    }
                    DiningMsg::Fork => {
                        debug_assert!(!self.fork[j], "duplicate fork");
                        self.fork[j] = true;
                    }
                }
            }
            DiningInput::SuspicionChange => {}
        }
        self.internal_actions(suspicion, sends);
    }

    fn state(&self) -> DinerState {
        self.state
    }

    fn inside_doorway(&self) -> bool {
        self.inside
    }

    /// `log₂(δ) + (5 + ⌈log₂(budget+1)⌉)·δ + c`: the `replied` bit becomes
    /// a ⌈log₂(budget+1)⌉-bit counter.
    fn state_bits(&self) -> usize {
        let delta = self.neighbors.len();
        let color_bits = (usize::BITS - delta.max(1).leading_zeros()) as usize;
        let counter_bits = (u32::BITS - self.budget.leading_zeros()) as usize;
        2 + 1 + color_bits + (5 + counter_bits) * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiningProcess;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_budget() {
        let _ = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0)], 0);
    }

    #[test]
    fn budget_m_grants_m_acks_then_defers() {
        let mut proc_ = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0)], 3);
        proc_.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        for round in 0..3 {
            let mut out = Vec::new();
            proc_.handle(
                DiningInput::Message {
                    from: p(1),
                    msg: DiningMsg::Ping,
                },
                &none(),
                &mut out,
            );
            assert_eq!(out, vec![(p(1), DiningMsg::Ack)], "grant {round}");
        }
        let mut out = Vec::new();
        proc_.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "budget exhausted ⇒ deferred");
    }

    #[test]
    fn budget_resets_on_doorway_entry() {
        let mut proc_ = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0)], 1);
        proc_.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        proc_.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut Vec::new(),
        );
        // Enter the doorway via the neighbor's ack; fork already held ⇒ eats.
        proc_.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut Vec::new(),
        );
        assert_eq!(proc_.state(), DinerState::Eating);
        // Exit; new session: the budget is fresh again.
        proc_.handle(DiningInput::DoneEating, &none(), &mut Vec::new());
        proc_.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        let mut out = Vec::new();
        proc_.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert!(out.contains(&(p(1), DiningMsg::Ack)));
    }

    #[test]
    fn budget_one_mirrors_algorithm_one() {
        // Drive both implementations through the same event sequence and
        // compare every output and state.
        let mut reference = DiningProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        let mut budgeted = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)], 1);
        let script: Vec<DiningInput<DiningMsg>> = vec![
            DiningInput::Hungry,
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Ack,
            },
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Fork,
            },
            DiningInput::DoneEating,
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
        ];
        for input in script {
            let mut a = Vec::new();
            let mut b = Vec::new();
            reference.handle(input.clone(), &none(), &mut a);
            budgeted.handle(input, &none(), &mut b);
            assert_eq!(a, b);
            assert_eq!(reference.state(), budgeted.state());
            assert_eq!(reference.inside_doorway(), budgeted.inside_doorway());
        }
    }

    #[test]
    fn state_bits_grow_with_budget() {
        let b1 = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0)], 1);
        let b3 = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0)], 3);
        assert_eq!(b1.state_bits(), 2 + 1 + 1 + 6); // counter bit = 1
        assert_eq!(b3.state_bits(), 2 + 1 + 1 + 7); // counter bits = 2
        assert_eq!(b1.budget(), 1);
    }
}
