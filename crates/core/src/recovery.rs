//! Crash-recovery hardening of Algorithm 1: incarnation-stamped messages, a
//! per-edge rejoin handshake, and a periodic audit-and-repair pass that makes
//! the daemon state self-stabilizing.
//!
//! The paper's fault model is crash-*stop*. This module extends it to
//! crash-*recovery* with transient state corruption, following the
//! self-stabilization literature: a crashed process may restart with blank
//! (or adversarially scrambled) volatile state, keeping only a single
//! monotone counter — its **incarnation** — in stable storage, and a live
//! process may have fork/token/request bits flipped under it at any time.
//!
//! Three mechanisms restore the paper's properties after such faults:
//!
//! 1. **Incarnation gating.** Every dining message is wrapped with the
//!    sender's incarnation and the sender's view of the receiver's
//!    incarnation (`dst_inc`). A message from a previous life of the peer,
//!    or addressed to a previous life of the receiver, is dropped — so the
//!    pre-crash protocol residue in flight cannot poison the rebuilt state.
//! 2. **Rejoin handshake.** A restarted process announces its new
//!    incarnation ([`RecoveryMsg::Rejoin`]) on every edge and suppresses
//!    dining traffic on an edge until the peer re-canonicalizes it and
//!    answers ([`RecoveryMsg::RejoinAck`]) with an authoritative fork/token
//!    assignment — by default the initial placement (fork at the higher
//!    color, token at the lower), except that an *eating* responder keeps
//!    its fork so re-admission cannot violate exclusion. After the handshake
//!    the edge again holds exactly one fork and one token, the auditable
//!    invariant of Lemma 1. Rejoins are retried from the audit timer, so a
//!    lost or crossed handshake (including simultaneous restarts of both
//!    endpoints) always converges.
//! 3. **Audit-and-repair.** Periodically each process repairs locally
//!    impossible flag states ([`DiningProcess::audit_local`]), clears stuck
//!    pings with 2-strike hysteresis, and exchanges per-edge fork/token
//!    snapshots ([`RecoveryMsg::Audit`]) with live synced peers. Duplicate
//!    or missing forks/tokens (the corruption modes that break safety or
//!    liveness) are repaired after two consecutive bad observations by a
//!    deterministically chosen endpoint: the lower color drops a duplicate
//!    fork and recreates a missing token, the higher color recreates a
//!    missing fork and drops a duplicate token. Hysteresis keeps the audit
//!    from "repairing" a fork that is merely in flight.

use crate::msg::DiningMsg;
use crate::process::DiningProcess;
use crate::traits::{DinerState, DiningAlgorithm, DiningInput};
use ekbd_detector::SuspicionView;
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};
use std::collections::BTreeMap;

/// Wire messages of the crash-recovery layer: Algorithm 1's messages
/// wrapped with incarnation stamps, plus the rejoin handshake and the
/// audit exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMsg {
    /// An Algorithm 1 message, stamped with the sender's incarnation and
    /// the sender's view of the receiver's incarnation.
    Dining {
        /// Sender's incarnation.
        inc: u64,
        /// The incarnation of the receiver this message is addressed to.
        dst_inc: u64,
        /// The wrapped Algorithm 1 message.
        msg: DiningMsg,
    },
    /// "I restarted as incarnation `inc`; please re-canonicalize our edge."
    Rejoin {
        /// The restarted sender's new incarnation.
        inc: u64,
    },
    /// Answer to [`RecoveryMsg::Rejoin`]: the authoritative fork/token
    /// assignment for the rejoiner's side of the edge.
    RejoinAck {
        /// The responder's incarnation.
        inc: u64,
        /// Echo of the rejoiner's incarnation (stale acks are dropped).
        rejoiner_inc: u64,
        /// Whether the rejoiner now holds the edge's fork.
        fork: bool,
        /// Whether the rejoiner now holds the edge's token.
        token: bool,
    },
    /// Periodic per-edge state snapshot for the audit-and-repair pass.
    Audit {
        /// Sender's incarnation.
        inc: u64,
        /// The receiver incarnation this snapshot is addressed to.
        dst_inc: u64,
        /// Whether the sender holds the edge's fork.
        fork: bool,
        /// Whether the sender holds the edge's token.
        token: bool,
    },
}

/// Consecutive bad audit observations required before a repair fires.
/// One round of slack absorbs forks/tokens that are merely in flight.
const STRIKES: u8 = 2;

/// Per-edge recovery bookkeeping.
#[derive(Clone, Debug, Default)]
struct EdgeState {
    /// Highest incarnation of the peer seen on this edge.
    peer_inc: u64,
    /// Whether this side's state on the edge is authoritative. `false`
    /// only between a restart of *this* process and the peer's
    /// [`RecoveryMsg::RejoinAck`].
    synced: bool,
    dup_fork: u8,
    missing_fork: u8,
    dup_token: u8,
    missing_token: u8,
    stuck_ping: u8,
}

impl EdgeState {
    fn fresh(synced: bool) -> Self {
        EdgeState {
            synced,
            ..EdgeState::default()
        }
    }

    fn clear_strikes(&mut self) {
        self.dup_fork = 0;
        self.missing_fork = 0;
        self.dup_token = 0;
        self.missing_token = 0;
        self.stuck_ping = 0;
    }
}

/// Counters exposed for the metrics layer and experiment E15.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Incoming messages dropped by incarnation gating (previous-life
    /// residue) or because the edge was not yet resynced.
    pub stale_dropped: u64,
    /// Outgoing dining messages suppressed on not-yet-resynced edges.
    pub suppressed: u64,
    /// Fork/token repairs applied by the audit exchange.
    pub repairs: u64,
    /// Locally detected and repaired flag states (stuck pings, stale
    /// session flags).
    pub local_repairs: u64,
    /// Completed per-edge rejoin handshakes (RejoinAcks applied).
    pub resyncs: u64,
}

impl RecoveryStats {
    /// Accumulates another process's counters (for run-wide aggregation).
    pub fn absorb(&mut self, other: RecoveryStats) {
        self.stale_dropped += other.stale_dropped;
        self.suppressed += other.suppressed;
        self.repairs += other.repairs;
        self.local_repairs += other.local_repairs;
        self.resyncs += other.resyncs;
    }
}

/// [`DiningProcess`] hardened for the crash-recovery fault model.
///
/// Wraps Algorithm 1 unchanged — in fault-free runs the wrapper is an
/// incarnation-0 pass-through and the inner machine behaves exactly as the
/// paper specifies. See the [module docs](self) for the recovery protocol.
#[derive(Clone, Debug)]
pub struct RecoverableDining {
    inner: DiningProcess,
    id: ProcessId,
    color: Color,
    /// Sorted `(neighbor, color)` pairs — the immutable configuration a
    /// rebooting process re-reads from its (conceptual) program image.
    peers: Vec<(ProcessId, Color)>,
    inc: u64,
    edges: BTreeMap<ProcessId, EdgeState>,
    stats: RecoveryStats,
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut r = *z;
    r = (r ^ (r >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    r = (r ^ (r >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    r ^ (r >> 31)
}

impl RecoverableDining {
    /// Creates the recoverable process `id`; arguments as in
    /// [`DiningProcess::new`].
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut peers: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        peers.sort_unstable_by_key(|&(q, _)| q);
        let mut inner = DiningProcess::new(id, color, peers.iter().copied());
        inner.harden();
        let edges = peers
            .iter()
            .map(|&(q, _)| (q, EdgeState::fresh(true)))
            .collect();
        RecoverableDining {
            inner,
            id,
            color,
            peers,
            inc: 0,
            edges,
            stats: RecoveryStats::default(),
        }
    }

    /// Creates the recoverable process `id` from a conflict graph and a
    /// proper coloring.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    /// This process's current incarnation (0 = never crashed).
    pub fn incarnation(&self) -> u64 {
        self.inc
    }

    /// Recovery counters for the metrics layer.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The wrapped Algorithm 1 state machine (read-only).
    pub fn inner(&self) -> &DiningProcess {
        &self.inner
    }

    /// Whether the edge to `q` has an authoritative fork/token assignment
    /// (false only mid-rejoin after a restart of this process).
    pub fn edge_synced(&self, q: ProcessId) -> bool {
        self.edges[&q].synced
    }

    /// Whether this process holds the fork shared with `q`.
    pub fn holds_fork(&self, q: ProcessId) -> bool {
        self.inner.holds_fork(q)
    }

    /// Whether this process holds the token shared with `q`.
    pub fn holds_token(&self, q: ProcessId) -> bool {
        self.inner.holds_token(q)
    }

    fn peer_color(&self, q: ProcessId) -> Color {
        let i = self
            .peers
            .binary_search_by_key(&q, |&(p, _)| p)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id));
        self.peers[i].1
    }

    /// The initial-placement rule of §3.1, as `(my_fork, my_token)`:
    /// fork at the higher color, token at the lower.
    fn canonical(&self, qcolor: Color) -> (bool, bool) {
        (self.color > qcolor, self.color < qcolor)
    }

    /// Wraps raw Algorithm 1 sends with incarnation stamps; messages on
    /// not-yet-resynced edges are suppressed (the post-sync re-evaluation
    /// of the internal actions regenerates whatever is still needed from
    /// the authoritative state).
    fn forward(
        &mut self,
        raw: Vec<(ProcessId, DiningMsg)>,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        for (q, msg) in raw {
            let e = &self.edges[&q];
            if e.synced {
                sends.push((
                    q,
                    RecoveryMsg::Dining {
                        inc: self.inc,
                        dst_inc: e.peer_inc,
                        msg,
                    },
                ));
            } else {
                self.stats.suppressed += 1;
            }
        }
    }

    /// Re-evaluates the inner machine's guarded commands (Actions 2/5/6/9)
    /// after recovery-layer state surgery.
    fn poke(&mut self, suspicion: &dyn SuspicionView, sends: &mut Vec<(ProcessId, RecoveryMsg)>) {
        let mut raw = Vec::new();
        self.inner
            .handle(DiningInput::SuspicionChange, suspicion, &mut raw);
        self.forward(raw, sends);
    }

    fn on_rejoin(
        &mut self,
        from: ProcessId,
        rinc: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let known = self.edges[&from].peer_inc;
        if rinc < known {
            self.stats.stale_dropped += 1;
            return;
        }
        if rinc > known {
            // First sight of this incarnation: re-canonicalize my side of
            // the edge and hand the rejoiner the complement. An eating
            // responder keeps its fork so re-admission cannot violate
            // exclusion; otherwise the initial-placement rule applies.
            let (my_fork, my_token) = if self.inner.state() == DinerState::Eating {
                (true, false)
            } else {
                self.canonical(self.peer_color(from))
            };
            {
                let e = self.edges.get_mut(&from).expect("neighbor");
                e.peer_inc = rinc;
                e.clear_strikes();
            }
            self.inner.reset_edge_session(from);
            self.inner.set_fork(from, my_fork);
            self.inner.set_token(from, my_token);
            sends.push((
                from,
                RecoveryMsg::RejoinAck {
                    inc: self.inc,
                    rejoiner_inc: rinc,
                    fork: !my_fork,
                    token: !my_token,
                },
            ));
            self.poke(suspicion, sends);
        } else {
            // Duplicate rejoin (retry): answer idempotently with the
            // complement of the current holdings — no state surgery.
            sends.push((
                from,
                RecoveryMsg::RejoinAck {
                    inc: self.inc,
                    rejoiner_inc: rinc,
                    fork: !self.inner.holds_fork(from),
                    token: !self.inner.holds_token(from),
                },
            ));
        }
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_rejoin_ack(
        &mut self,
        from: ProcessId,
        pinc: u64,
        rinc: u64,
        fork: bool,
        token: bool,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        {
            let e = self.edges.get_mut(&from).expect("neighbor");
            e.peer_inc = e.peer_inc.max(pinc);
            if rinc != self.inc || e.synced {
                self.stats.stale_dropped += 1;
                return;
            }
            e.synced = true;
            e.clear_strikes();
        }
        self.inner.reset_edge_session(from);
        self.inner.set_fork(from, fork);
        self.inner.set_token(from, token);
        self.stats.resyncs += 1;
        self.poke(suspicion, sends);
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_audit_msg(
        &mut self,
        from: ProcessId,
        pinc: u64,
        dst: u64,
        fork: bool,
        token: bool,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        if self.edges[&from].peer_inc != pinc || dst != self.inc || !self.edges[&from].synced {
            self.stats.stale_dropped += 1;
            return;
        }
        let my_fork = self.inner.holds_fork(from);
        let my_token = self.inner.holds_token(from);
        let lower = self.color < self.peer_color(from);
        let mut repaired = false;
        {
            let e = self.edges.get_mut(&from).expect("neighbor");
            // Antisymmetric repairs with 2-strike hysteresis: exactly one
            // endpoint acts on each anomaly, chosen by color.
            if my_fork && fork {
                e.dup_fork += 1;
                if e.dup_fork >= STRIKES && lower {
                    e.dup_fork = 0;
                    repaired = true; // lower color drops the duplicate fork
                }
            } else {
                e.dup_fork = 0;
            }
            if !my_fork && !fork {
                e.missing_fork += 1;
            } else {
                e.missing_fork = 0;
            }
            if my_token && token {
                e.dup_token += 1;
            } else {
                e.dup_token = 0;
            }
            if !my_token && !token {
                e.missing_token += 1;
            } else {
                e.missing_token = 0;
            }
        }
        let mut changed = false;
        if repaired {
            self.inner.set_fork(from, false);
            changed = true;
        }
        let e = self.edges.get_mut(&from).expect("neighbor");
        if e.missing_fork >= STRIKES && !lower {
            e.missing_fork = 0;
            self.inner.set_fork(from, true); // higher color recreates it
            changed = true;
        }
        if e.dup_token >= STRIKES && !lower {
            e.dup_token = 0;
            self.inner.set_token(from, false); // higher color drops it
            changed = true;
        }
        if e.missing_token >= STRIKES && lower {
            e.missing_token = 0;
            self.inner.set_token(from, true); // lower color recreates it
            changed = true;
        }
        if changed {
            self.stats.repairs += 1;
            self.poke(suspicion, sends);
        }
    }
}

impl DiningAlgorithm for RecoverableDining {
    type Msg = RecoveryMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<RecoveryMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        match input {
            DiningInput::Message { from, msg } => match msg {
                RecoveryMsg::Dining { inc, dst_inc, msg } => {
                    let e = &self.edges[&from];
                    if inc != e.peer_inc || dst_inc != self.inc || !e.synced {
                        self.stats.stale_dropped += 1;
                        return;
                    }
                    let mut raw = Vec::new();
                    self.inner
                        .handle(DiningInput::Message { from, msg }, suspicion, &mut raw);
                    self.forward(raw, sends);
                }
                RecoveryMsg::Rejoin { inc } => self.on_rejoin(from, inc, suspicion, sends),
                RecoveryMsg::RejoinAck {
                    inc,
                    rejoiner_inc,
                    fork,
                    token,
                } => self.on_rejoin_ack(from, inc, rejoiner_inc, fork, token, suspicion, sends),
                RecoveryMsg::Audit {
                    inc,
                    dst_inc,
                    fork,
                    token,
                } => self.on_audit_msg(from, inc, dst_inc, fork, token, suspicion, sends),
            },
            DiningInput::Hungry => {
                let mut raw = Vec::new();
                self.inner.handle(DiningInput::Hungry, suspicion, &mut raw);
                self.forward(raw, sends);
            }
            DiningInput::DoneEating => {
                let mut raw = Vec::new();
                self.inner
                    .handle(DiningInput::DoneEating, suspicion, &mut raw);
                self.forward(raw, sends);
            }
            DiningInput::SuspicionChange => self.poke(suspicion, sends),
        }
    }

    fn state(&self) -> DinerState {
        self.inner.state()
    }

    fn inside_doorway(&self) -> bool {
        self.inner.inside_doorway()
    }

    /// Inner Algorithm 1 state plus the recovery layer: the 64-bit
    /// incarnation and, per edge, the peer incarnation, the synced bit and
    /// five 8-bit strike counters.
    fn state_bits(&self) -> usize {
        self.inner.state_bits() + 64 + self.peers.len() * (64 + 1 + 5 * 8)
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn recovery_stats(&self) -> Option<RecoveryStats> {
        Some(self.stats)
    }

    fn restart(
        &mut self,
        incarnation: u64,
        corruption: Option<u64>,
        _suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.inc = incarnation;
        // Factory reset: volatile state is rebuilt from the program image;
        // only the incarnation counter survived in stable storage.
        let mut inner = DiningProcess::new(self.id, self.color, self.peers.iter().copied());
        inner.harden();
        self.inner = inner;
        for e in self.edges.values_mut() {
            *e = EdgeState::fresh(false);
        }
        if let Some(entropy) = corruption {
            self.scramble(entropy);
        }
        for &(q, _) in &self.peers.clone() {
            sends.push((q, RecoveryMsg::Rejoin { inc: incarnation }));
        }
        // No poke: every edge is unsynced, so dining traffic would be
        // suppressed anyway; the post-RejoinAck poke does the real work.
    }

    fn inject_corruption(
        &mut self,
        entropy: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.scramble(entropy);
        // Flipped bits may enable (or spuriously satisfy) internal guards;
        // re-evaluate so the damage manifests — and can be audited — now.
        self.poke(suspicion, sends);
    }

    fn audit(&mut self, suspicion: &dyn SuspicionView, sends: &mut Vec<(ProcessId, RecoveryMsg)>) {
        let mut changed = false;
        for &(q, _) in &self.peers.clone() {
            if !self.edges[&q].synced {
                // Retry an unfinished rejoin handshake (lost or crossed).
                sends.push((q, RecoveryMsg::Rejoin { inc: self.inc }));
                continue;
            }
            if suspicion.suspects(q) {
                // A presumed-crashed peer re-canonicalizes the edge itself
                // when it rejoins; auditing against it is meaningless.
                self.edges.get_mut(&q).expect("neighbor").clear_strikes();
                continue;
            }
            // Stuck ping: hungry-outside with a pending ping and no ack for
            // two consecutive audit rounds means the ack was destroyed (the
            // peer is live and unsuspected); clear so Action 2 re-pings.
            let stuck = self.inner.state() == DinerState::Hungry
                && !self.inner.inside_doorway()
                && self.inner.ping_pending(q)
                && !self.inner.acked_by(q);
            let e = self.edges.get_mut(&q).expect("neighbor");
            if stuck {
                e.stuck_ping += 1;
                if e.stuck_ping >= STRIKES {
                    e.stuck_ping = 0;
                    self.inner.reset_ping(q);
                    self.stats.local_repairs += 1;
                    changed = true;
                }
            } else {
                e.stuck_ping = 0;
            }
            let dst_inc = self.edges[&q].peer_inc;
            sends.push((
                q,
                RecoveryMsg::Audit {
                    inc: self.inc,
                    dst_inc,
                    fork: self.inner.holds_fork(q),
                    token: self.inner.holds_token(q),
                },
            ));
        }
        let mut raw = Vec::new();
        if self.inner.audit_local(&mut raw) {
            self.stats.local_repairs += 1;
            changed = true;
        }
        self.forward(raw, sends);
        if changed {
            self.poke(suspicion, sends);
        }
    }
}

impl RecoverableDining {
    /// Deterministically flips per-edge flag bits from `entropy`: roughly
    /// three of four edges get a non-empty XOR mask over the six per-edge
    /// bits; if the draw selects no edge at all, the first edge's fork bit
    /// is flipped so a scheduled corruption is never a silent no-op.
    fn scramble(&mut self, entropy: u64) {
        let mut z = entropy;
        let mut any = false;
        for &(q, _) in &self.peers.clone() {
            let r = splitmix(&mut z);
            if r & 0b11 == 0 {
                continue;
            }
            let mut mask = ((r >> 2) & 0x3F) as u8;
            if mask == 0 {
                mask = 0x10; // FORK
            }
            self.inner.corrupt_edge(q, mask);
            any = true;
        }
        if !any {
            if let Some(&(q, _)) = self.peers.first() {
                self.inner.corrupt_edge(q, 0x10);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    fn sus(ids: &[usize]) -> BTreeSet<ProcessId> {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// `hi` (color 1, starts with fork) and `lo` (color 0, starts with
    /// token), as recoverable processes.
    fn pair() -> (RecoverableDining, RecoverableDining) {
        let hi = RecoverableDining::new(p(0), 1, [(p(1), 0)]);
        let lo = RecoverableDining::new(p(1), 0, [(p(0), 1)]);
        (hi, lo)
    }

    /// Delivers `msgs` (sent by `from`) into `target`, returning its sends.
    fn deliver(
        target: &mut RecoverableDining,
        from: ProcessId,
        msgs: &[(ProcessId, RecoveryMsg)],
        suspicion: &BTreeSet<ProcessId>,
    ) -> Vec<(ProcessId, RecoveryMsg)> {
        let mut out = Vec::new();
        for &(to, msg) in msgs {
            assert_eq!(to, target.id(), "test shuttles to the right process");
            target.handle(DiningInput::Message { from, msg }, suspicion, &mut out);
        }
        out
    }

    /// Asserts the Lemma 1 edge invariant between two synced endpoints.
    fn assert_edge_canonical(a: &RecoverableDining, b: &RecoverableDining) {
        let forks = a.holds_fork(b.id()) as u32 + b.holds_fork(a.id()) as u32;
        let tokens = a.holds_token(b.id()) as u32 + b.holds_token(a.id()) as u32;
        assert_eq!(forks, 1, "exactly one fork on the edge");
        assert_eq!(tokens, 1, "exactly one token on the edge");
    }

    #[test]
    fn fault_free_pair_behaves_like_algorithm_1() {
        let (mut hi, mut lo) = pair();
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        // Ping → Ack → Request → Fork, all wrapped at incarnation 0.
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        assert!(m.is_empty());
        assert_eq!(lo.state(), DinerState::Eating);
        assert_eq!(lo.stats(), RecoveryStats::default(), "no recovery action");
    }

    #[test]
    fn rejoin_handshake_restores_the_edge_invariant() {
        let (mut hi, mut lo) = pair();
        // lo crashes and restarts blank as incarnation 1.
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        assert_eq!(
            rejoins,
            vec![(p(0), RecoveryMsg::Rejoin { inc: 1 })],
            "restart announces the new incarnation on every edge"
        );
        assert!(!lo.edge_synced(p(0)));
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        assert_eq!(
            acks,
            vec![(
                p(1),
                RecoveryMsg::RejoinAck {
                    inc: 0,
                    rejoiner_inc: 1,
                    fork: false,
                    token: true
                }
            )],
            "responder keeps the fork (higher color), hands back the token"
        );
        let quiet = deliver(&mut lo, p(0), &acks, &none());
        assert!(quiet.is_empty());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(lo.stats().resyncs, 1);
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn messages_from_or_to_a_previous_life_are_dropped() {
        let (mut hi, mut lo) = pair();
        // A pre-crash ping from lo's incarnation 0 is in flight…
        let mut stale = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut stale);
        // …lo restarts and resyncs…
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        // …then the stale ping finally arrives: dropped, no ack.
        let before = hi.stats().stale_dropped;
        let out = deliver(&mut hi, p(1), &stale, &none());
        assert!(out.is_empty(), "no ack for a previous life's ping");
        assert_eq!(hi.stats().stale_dropped, before + 1);
        // And a message addressed to lo's previous life is dropped by lo.
        let to_old_lo = [(
            p(1),
            RecoveryMsg::Dining {
                inc: 0,
                dst_inc: 0,
                msg: DiningMsg::Ack,
            },
        )];
        let out = deliver(&mut lo, p(0), &to_old_lo, &none());
        assert!(out.is_empty());
        assert!(lo.stats().stale_dropped >= 1);
    }

    #[test]
    fn mutual_restart_converges_via_crossed_rejoins() {
        let (mut hi, mut lo) = pair();
        let mut hi_rejoin = Vec::new();
        hi.restart(1, None, &none(), &mut hi_rejoin);
        let mut lo_rejoin = Vec::new();
        lo.restart(1, None, &none(), &mut lo_rejoin);
        // Crossed delivery: each answers the other's rejoin.
        let hi_acks = deliver(&mut hi, p(1), &lo_rejoin, &none());
        let lo_acks = deliver(&mut lo, p(0), &hi_rejoin, &none());
        let a = deliver(&mut lo, p(0), &hi_acks, &none());
        let b = deliver(&mut hi, p(1), &lo_acks, &none());
        assert!(a.is_empty() && b.is_empty());
        assert!(hi.edge_synced(p(1)) && lo.edge_synced(p(0)));
        assert_edge_canonical(&hi, &lo);
        assert!(hi.holds_fork(p(1)), "canonical rule: fork at higher color");
    }

    #[test]
    fn eating_responder_keeps_its_fork() {
        // lo (color 0) eats while suspecting hi; hi "recovers" with a
        // higher color. Canonically hi would get the fork — but handing it
        // over mid-meal would break exclusion, so the eating responder
        // keeps it.
        let (mut hi, mut lo) = pair();
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &sus(&[0]), &mut m);
        assert_eq!(lo.state(), DinerState::Eating);
        let mut rejoins = Vec::new();
        hi.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut lo, p(0), &rejoins, &sus(&[0]));
        assert!(acks.contains(&(
            p(0),
            RecoveryMsg::RejoinAck {
                inc: 0,
                rejoiner_inc: 1,
                fork: false,
                token: true
            }
        )));
        deliver(&mut hi, p(1), &acks, &none());
        assert_eq!(lo.state(), DinerState::Eating, "meal undisturbed");
        assert!(lo.holds_fork(p(0)) && !hi.holds_fork(p(1)));
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn duplicate_rejoin_is_answered_idempotently() {
        let (mut hi, mut lo) = pair();
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let first = deliver(&mut hi, p(1), &rejoins, &none());
        // The retry (same incarnation) must not re-canonicalize: hi's
        // holdings are untouched and the answer matches.
        let second = deliver(&mut hi, p(1), &rejoins, &none());
        assert_eq!(first, second);
        deliver(&mut lo, p(0), &first, &none());
        assert!(lo.edge_synced(p(0)));
        // A third ack (from the retry) is ignored — already synced.
        let quiet = deliver(&mut lo, p(0), &second, &none());
        assert!(quiet.is_empty());
        assert_eq!(lo.stats().resyncs, 1);
        assert_edge_canonical(&hi, &lo);
    }

    /// Runs `rounds` audit rounds between the two processes, shuttling the
    /// audit traffic both ways.
    fn audit_rounds(a: &mut RecoverableDining, b: &mut RecoverableDining, rounds: usize) {
        for _ in 0..rounds {
            let mut am = Vec::new();
            a.audit(&none(), &mut am);
            let mut bm = Vec::new();
            b.audit(&none(), &mut bm);
            let ra = deliver(b, a.id(), &am, &none());
            let rb = deliver(a, b.id(), &bm, &none());
            // Repairs may emit follow-up dining traffic; deliver it too.
            let x = deliver(a, b.id(), &ra, &none());
            let y = deliver(b, a.id(), &rb, &none());
            let x2 = deliver(b, a.id(), &x, &none());
            let y2 = deliver(a, b.id(), &y, &none());
            deliver(a, b.id(), &x2, &none());
            deliver(b, a.id(), &y2, &none());
        }
    }

    #[test]
    fn audit_repairs_a_duplicated_fork() {
        let (mut hi, mut lo) = pair();
        // Corruption forges a second fork at lo and destroys its token —
        // without the token the local co-location discharge cannot
        // shortcut the repair, so this exercises the exchange path.
        lo.inner.corrupt_edge(p(0), 0x30);
        assert!(hi.holds_fork(p(1)) && lo.holds_fork(p(0)));
        audit_rounds(&mut hi, &mut lo, STRIKES as usize + 1);
        assert_edge_canonical(&hi, &lo);
        assert!(
            !lo.holds_fork(p(0)),
            "the lower color dropped the duplicate"
        );
        assert!(lo.stats().repairs >= 1);
    }

    #[test]
    fn audit_discharges_colocated_token_and_fork() {
        let (mut hi, mut lo) = pair();
        // Corruption forges a second fork right next to lo's token. A
        // thinking process holding both is unreachable under Algorithm 1
        // (exit discharges the pair), so the audit discharges it locally
        // and immediately: the fork travels to hi, which absorbs the
        // duplicate, and the token stays.
        lo.inner.corrupt_edge(p(0), 0x10);
        assert!(lo.holds_fork(p(0)) && lo.holds_token(p(0)));
        audit_rounds(&mut hi, &mut lo, 1);
        assert_edge_canonical(&hi, &lo);
        assert!(!lo.holds_fork(p(0)), "the pair was discharged");
        assert!(lo.stats().local_repairs >= 1);
    }

    #[test]
    fn audit_repairs_a_lost_token() {
        let (mut hi, mut lo) = pair();
        lo.inner.corrupt_edge(p(0), 0x20); // token bit flips off
        assert!(!hi.holds_token(p(1)) && !lo.holds_token(p(0)));
        audit_rounds(&mut hi, &mut lo, STRIKES as usize + 1);
        assert_edge_canonical(&hi, &lo);
        assert!(lo.holds_token(p(0)), "the lower color recreated it");
    }

    #[test]
    fn audit_does_not_fire_on_a_single_observation() {
        // Hysteresis: one bad observation (a fork genuinely in flight)
        // must not trigger an exchange repair. The token is destroyed
        // alongside so the local co-location discharge stays out of play.
        let (mut hi, mut lo) = pair();
        lo.inner.corrupt_edge(p(0), 0x30);
        audit_rounds(&mut hi, &mut lo, 1);
        assert!(
            lo.holds_fork(p(0)) && hi.holds_fork(p(1)),
            "one strike is not enough"
        );
    }

    #[test]
    fn audit_clears_a_stuck_ping() {
        let (mut hi, _lo) = pair();
        let mut m = Vec::new();
        hi.handle(DiningInput::Hungry, &none(), &mut m);
        assert_eq!(m.len(), 1, "ping out");
        assert!(hi.inner().ping_pending(p(1)));
        // The ack is destroyed in transit; two audit rounds later the ping
        // flag is cleared and Action 2 re-pings immediately.
        let mut out = Vec::new();
        hi.audit(&none(), &mut out);
        assert!(hi.inner().ping_pending(p(1)), "first strike only");
        let mut out = Vec::new();
        hi.audit(&none(), &mut out);
        assert!(
            out.iter().any(|&(q, m)| q == p(1)
                && matches!(
                    m,
                    RecoveryMsg::Dining {
                        msg: DiningMsg::Ping,
                        ..
                    }
                )),
            "repair re-pings: {out:?}"
        );
        assert!(hi.stats().local_repairs >= 1);
    }

    #[test]
    fn corrupted_restart_still_resyncs_canonically() {
        let (mut hi, mut lo) = pair();
        let mut rejoins = Vec::new();
        lo.restart(1, Some(0xDEAD_BEEF), &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        // Whatever the scramble did to the edge bits, the RejoinAck is
        // authoritative.
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn scramble_is_deterministic_and_never_a_noop() {
        let (_, lo0) = pair();
        let mut a = lo0.clone();
        let mut b = lo0.clone();
        a.scramble(42);
        b.scramble(42);
        assert_eq!(a.inner(), b.inner(), "same entropy ⇒ same flips");
        let mut c = lo0.clone();
        for seed in 0..64u64 {
            let mut d = c.clone();
            d.scramble(seed);
            assert_ne!(d.inner(), c.inner(), "seed {seed} must flip something");
            c = lo0.clone();
        }
    }

    #[test]
    fn recovered_process_can_eat_again() {
        let (mut hi, mut lo) = pair();
        // lo restarts, resyncs, goes hungry, and completes a full session.
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        let m = deliver(&mut hi, p(1), &m, &none());
        deliver(&mut lo, p(0), &m, &none());
        assert_eq!(lo.state(), DinerState::Eating, "readmitted");
        assert!(m.is_empty() || lo.state() == DinerState::Eating);
    }
}
