//! Crash-recovery hardening of Algorithm 1: incarnation-stamped messages, a
//! per-edge rejoin handshake, and a periodic audit-and-repair pass that makes
//! the daemon state self-stabilizing.
//!
//! The paper's fault model is crash-*stop*. This module extends it to
//! crash-*recovery* with transient state corruption, following the
//! self-stabilization literature: a crashed process may restart with blank
//! (or adversarially scrambled) volatile state, keeping only a single
//! monotone counter — its **incarnation** — in stable storage, and a live
//! process may have fork/token/request bits flipped under it at any time.
//!
//! Three mechanisms restore the paper's properties after such faults:
//!
//! 1. **Incarnation gating.** Every dining message is wrapped with the
//!    sender's incarnation and the sender's view of the receiver's
//!    incarnation (`dst_inc`). A message from a previous life of the peer,
//!    or addressed to a previous life of the receiver, is dropped — so the
//!    pre-crash protocol residue in flight cannot poison the rebuilt state.
//! 2. **Rejoin handshake.** A restarted process announces its new
//!    incarnation ([`RecoveryMsg::Rejoin`]) on every edge and suppresses
//!    dining traffic on an edge until the peer re-canonicalizes it and
//!    answers ([`RecoveryMsg::RejoinAck`]) with an authoritative fork/token
//!    assignment — by default the initial placement (fork at the higher
//!    color, token at the lower), except that an *eating* responder keeps
//!    its fork so re-admission cannot violate exclusion. After the handshake
//!    the edge again holds exactly one fork and one token, the auditable
//!    invariant of Lemma 1. Rejoins are retried from the audit timer, so a
//!    lost or crossed handshake (including simultaneous restarts of both
//!    endpoints) always converges.
//! 3. **Audit-and-repair.** Periodically each process repairs locally
//!    impossible flag states ([`DiningProcess::audit_local`]), clears stuck
//!    pings with 2-strike hysteresis, and exchanges per-edge fork/token
//!    snapshots ([`RecoveryMsg::Audit`]) with live synced peers. Duplicate
//!    or missing forks/tokens (the corruption modes that break safety or
//!    liveness) are repaired after two consecutive bad observations by a
//!    deterministically chosen endpoint: the lower color drops a duplicate
//!    fork and recreates a missing token, the higher color recreates a
//!    missing fork and drops a duplicate token. Hysteresis keeps the audit
//!    from "repairing" a fork that is merely in flight.
//!
//! A fourth, optional mechanism makes restarts *cheap*:
//!
//! 4. **Journaled resume.** When built [`RecoverableDining::with_journal`],
//!    the process commits a checksummed [`JournalRecord`] of its entire
//!    recoverable state (§7: it fits in `log₂(δ) + 6δ + c` bits) to stable
//!    storage after every transition. On restart it replays the journal
//!    and, instead of the full rejoin, asks each neighbor to confirm the
//!    journaled pairing with a single [`RecoveryMsg::JournalResume`] /
//!    [`RecoveryMsg::ResumeAck`] exchange; the restored fork/token bits are
//!    accepted only if they are exactly complementary to the responder's
//!    (the Lemma 1 edge invariant), and *any* disagreement — a missing or
//!    corrupt journal, a refuted incarnation, an inconsistent edge —
//!    degrades that edge to the blank rejoin handshake. A corrupt journal
//!    can therefore delay readmission but never break safety.
//!
//! The module also implements the **dynamic-membership** extension of
//! [`DiningAlgorithm`]: a process can boot into a running system
//! ([`DiningAlgorithm::join`] — structurally a blank restart whose rejoin
//! handshake doubles as the introduction), leave it gracefully
//! ([`DiningAlgorithm::retire`] — held forks and deferred acks are
//! discharged so no survivor starves), and react to neighbors coming and
//! going ([`DiningAlgorithm::add_peer`], [`DiningAlgorithm::remove_peer`],
//! [`DiningAlgorithm::peer_departed`]). A crash-stop departure is the
//! hostile case: the dead neighbor may take the edge's fork with it, so the
//! edge is kept, the peer counts as suspected in every guard, and the local
//! audit pass remints the stranded fork after the strike policy —
//! deliberately bypassing the busy-edge hysteresis, which exists to protect
//! forks in flight from live senders.

use crate::msg::DiningMsg;
use crate::process::DiningProcess;
use crate::traits::{DinerState, DiningAlgorithm, DiningInput};
use ekbd_detector::SuspicionView;
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_journal::{BootPath, EdgeRecord, JournalHandle, JournalRecord, ResyncPath};
use std::collections::{BTreeMap, BTreeSet};

/// Wire messages of the crash-recovery layer: Algorithm 1's messages
/// wrapped with incarnation stamps, plus the rejoin handshake and the
/// audit exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMsg {
    /// An Algorithm 1 message, stamped with the sender's incarnation and
    /// the sender's view of the receiver's incarnation.
    Dining {
        /// Sender's incarnation.
        inc: u64,
        /// The incarnation of the receiver this message is addressed to.
        dst_inc: u64,
        /// Sequence number of the journal commit this send belongs to
        /// (sends are released only after the commit, so receiving `seq`
        /// proves the sender's record `seq` reached stable storage). The
        /// receiver's per-edge maximum is the yardstick that refutes
        /// stale snapshots at resume time.
        seq: u64,
        /// The wrapped Algorithm 1 message.
        msg: DiningMsg,
    },
    /// "I restarted as incarnation `inc`; please re-canonicalize our edge."
    Rejoin {
        /// The restarted sender's new incarnation.
        inc: u64,
    },
    /// Answer to [`RecoveryMsg::Rejoin`]: the authoritative fork/token
    /// assignment for the rejoiner's side of the edge.
    RejoinAck {
        /// The responder's incarnation.
        inc: u64,
        /// Echo of the rejoiner's incarnation (stale acks are dropped).
        rejoiner_inc: u64,
        /// Whether the rejoiner now holds the edge's fork.
        fork: bool,
        /// Whether the rejoiner now holds the edge's token.
        token: bool,
        /// True when this ack refutes a [`RecoveryMsg::JournalResume`]
        /// whose sequence number proved the snapshot stale — the rejoiner
        /// tags the edge [`ResyncPath::StaleRefuted`] instead of plain
        /// rejoined.
        stale: bool,
    },
    /// Periodic per-edge state snapshot for the audit-and-repair pass.
    Audit {
        /// Sender's incarnation.
        inc: u64,
        /// The receiver incarnation this snapshot is addressed to.
        dst_inc: u64,
        /// Sequence number of the accompanying journal commit (see
        /// [`RecoveryMsg::Dining::seq`]); audits keep the peer's
        /// last-seen watermark fresh even on quiet edges.
        seq: u64,
        /// Whether the sender holds the edge's fork.
        fork: bool,
        /// Whether the sender holds the edge's token.
        token: bool,
    },
    /// "I restarted as incarnation `inc` and replayed my journal; if you
    /// still know me as `journal_inc` and you are still `peer_inc`,
    /// confirm the edge so the rejoin handshake can be skipped."
    JournalResume {
        /// The restarted sender's new incarnation.
        inc: u64,
        /// The incarnation whose journal was replayed (the sender's
        /// previous life as recorded in stable storage).
        journal_inc: u64,
        /// The journaled view of the receiver's incarnation.
        peer_inc: u64,
        /// Sequence number of the replayed record. If the responder has
        /// seen a higher-numbered commit from this sender, the snapshot
        /// is provably stale and the resume is refuted immediately —
        /// without waiting for the per-edge fork/token check.
        seq: u64,
    },
    /// Confirmation of a [`RecoveryMsg::JournalResume`]: the responder's
    /// own holdings, so the resumer can verify the Lemma 1 edge invariant
    /// (exactly one fork, one token) before trusting its replayed state.
    ResumeAck {
        /// The responder's incarnation.
        inc: u64,
        /// Echo of the resumer's incarnation (stale acks are dropped).
        resumer_inc: u64,
        /// Whether the responder holds the edge's fork.
        fork: bool,
        /// Whether the responder holds the edge's token.
        token: bool,
        /// The highest commit sequence number the responder has observed
        /// from the resumer. If it exceeds the replayed record's, the
        /// resumer's own journal is stale (a commit it lost was visible
        /// to this peer) and the resumer degrades the edge itself.
        last_seen: u64,
    },
}

/// Default number of consecutive bad audit observations required before a
/// repair fires. One round of slack absorbs forks/tokens that are merely
/// in flight; see [`RecoverableDining::with_strikes`].
pub const DEFAULT_STRIKES: u8 = 2;

/// Per-edge flag bits a journal replay trusts: fork, token, and deferred
/// acks survive a restart; the ping/ack/replied session bits belong to a
/// hungry session that died with the crash and are cleared.
const RESTORE_MASK: u8 = 0x38;

/// Per-edge recovery bookkeeping.
#[derive(Clone, Debug, Default)]
struct EdgeState {
    /// Highest incarnation of the peer seen on this edge.
    peer_inc: u64,
    /// Whether this side's state on the edge is authoritative. `false`
    /// only between a restart of *this* process and the peer's
    /// [`RecoveryMsg::RejoinAck`].
    synced: bool,
    /// `Some(journal_inc)` while a journal fast path is pending on this
    /// edge: the restart replayed a record written by `journal_inc` and
    /// the audit timer retries [`RecoveryMsg::JournalResume`] (not
    /// `Rejoin`) until the peer answers — which keeps the fast path alive
    /// across partitions and message loss.
    resume_inc: Option<u64>,
    /// Highest commit sequence number observed from the peer (messages
    /// are stamped with the seq of the commit that released them; the
    /// counter is monotone across the peer's incarnations). This is the
    /// watermark a [`RecoveryMsg::JournalResume`] is checked against.
    peer_seq: u64,
    /// How this edge regained sync after the last restart of *this*
    /// process ([`ResyncPath::None`] at genesis and mid-handshake) —
    /// journaled for the post-mortem replay.
    resync: ResyncPath,
    dup_fork: u8,
    missing_fork: u8,
    dup_token: u8,
    missing_token: u8,
    stuck_ping: u8,
    /// Fork- or token-moving dining traffic (Fork / Request messages sent
    /// or accepted) on this edge, ever.
    activity: u64,
    /// Value of `activity` at the previous audit observation. A strike
    /// only accumulates while these are equal: traffic between two audits
    /// proves the edge state is *moving* (a snapshot crossing a fork in
    /// flight), not stuck, and "repairing" it would mint a duplicate.
    audit_activity: u64,
}

impl EdgeState {
    fn fresh(synced: bool) -> Self {
        EdgeState {
            synced,
            ..EdgeState::default()
        }
    }

    fn clear_strikes(&mut self) {
        self.dup_fork = 0;
        self.missing_fork = 0;
        self.dup_token = 0;
        self.missing_token = 0;
        self.stuck_ping = 0;
    }
}

/// Counters exposed for the metrics layer and experiment E15.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Incoming messages dropped by incarnation gating (previous-life
    /// residue) or because the edge was not yet resynced.
    pub stale_dropped: u64,
    /// Outgoing dining messages suppressed on not-yet-resynced edges.
    pub suppressed: u64,
    /// Fork/token repairs applied by the audit exchange.
    pub repairs: u64,
    /// Locally detected and repaired flag states (stuck pings, stale
    /// session flags).
    pub local_repairs: u64,
    /// Completed per-edge rejoin handshakes (RejoinAcks applied).
    pub resyncs: u64,
    /// Edges resynchronized by the journal fast path (consistent
    /// ResumeAcks applied), skipping the rejoin handshake.
    pub fast_resumes: u64,
}

impl RecoveryStats {
    /// Accumulates another process's counters (for run-wide aggregation).
    pub fn absorb(&mut self, other: RecoveryStats) {
        self.stale_dropped += other.stale_dropped;
        self.suppressed += other.suppressed;
        self.repairs += other.repairs;
        self.local_repairs += other.local_repairs;
        self.resyncs += other.resyncs;
        self.fast_resumes += other.fast_resumes;
    }
}

/// Why a restart rebooted blank instead of replaying its journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlankReason {
    /// No journal is configured (the PR-2 baseline behavior).
    Disabled,
    /// The journal was empty — nothing ever committed, or the backing
    /// storage dropped every sync.
    Missing,
    /// The journaled record failed validation: bad framing or checksum
    /// (torn write, bit rot) or an incarnation from the future.
    Corrupt,
}

/// How one restart re-established its edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPath {
    /// The journal replayed; per-edge split between confirmed fast
    /// resumes and edges that fell back to the rejoin handshake (the
    /// counts fill in as the handshakes complete).
    Journal {
        /// Edges resynced by a consistent `ResumeAck`.
        resumed: u32,
        /// Edges that degraded to the rejoin handshake.
        rejoined: u32,
        /// Edges whose resume was refuted by sequence comparison (the
        /// snapshot was provably stale) before rejoining.
        stale: u32,
    },
    /// Blank reboot: every edge took the rejoin handshake.
    Blank {
        /// Why the journal was not replayed.
        reason: BlankReason,
    },
}

/// One entry of the per-process restart log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartEvent {
    /// The incarnation this restart began.
    pub incarnation: u64,
    /// Which recovery path it took.
    pub path: RestartPath,
}

/// [`DiningProcess`] hardened for the crash-recovery fault model.
///
/// Wraps Algorithm 1 unchanged — in fault-free runs the wrapper is an
/// incarnation-0 pass-through and the inner machine behaves exactly as the
/// paper specifies. See the [module docs](self) for the recovery protocol.
#[derive(Clone, Debug)]
pub struct RecoverableDining {
    inner: DiningProcess,
    id: ProcessId,
    color: Color,
    /// Sorted `(neighbor, color)` pairs — the immutable configuration a
    /// rebooting process re-reads from its (conceptual) program image.
    peers: Vec<(ProcessId, Color)>,
    inc: u64,
    /// Monotone commit sequence number: incremented on every journal
    /// commit point — counted even when no journal is attached, so the
    /// seq stamps on outgoing messages are identical with and without
    /// journaling (trace invisibility).
    commit_seq: u64,
    /// Last wall/virtual time reported by the host via
    /// [`DiningAlgorithm::note_now`]; stamped into journal records as the
    /// commit-time tick.
    now: u64,
    /// How the current incarnation booted (journal replay vs a blank
    /// reason); journaled for the post-mortem replay.
    boot: BootPath,
    /// Sequence number of the record the last journal replay restored
    /// (0 when the last restart went blank) — echoed in
    /// [`RecoveryMsg::JournalResume`] for the staleness comparison.
    resume_seq: u64,
    edges: BTreeMap<ProcessId, EdgeState>,
    /// Neighbors that crash-stopped out of the system permanently (dynamic
    /// membership). Departed peers count as suspected in every inner guard
    /// and their edges are excluded from the audit exchange; the local
    /// audit pass remints a fork the dead peer took with it. The set is
    /// membership *configuration*, not volatile protocol state, so — like
    /// `peers` — it survives [`DiningAlgorithm::restart`].
    departed: BTreeSet<ProcessId>,
    stats: RecoveryStats,
    /// The current life began with [`DiningAlgorithm::join`] (runtime
    /// admission) rather than genesis or a crash-recovery restart. A
    /// joiner is the newcomer on every conflict edge grown this life, so
    /// its [`DiningAlgorithm::add_peer`] initiates the rejoin handshake
    /// instead of placing a provisional edge and waiting for one.
    joined_this_life: bool,
    /// Strike threshold for audit repairs (default [`DEFAULT_STRIKES`]).
    strikes: u8,
    /// Stable storage; `None` runs the PR-2 blank-restart protocol.
    journal: Option<JournalHandle>,
    /// One entry per restart, tagged with the path it took.
    restarts: Vec<RestartEvent>,
}

/// The local suspicion oracle unioned with the permanently departed
/// neighbors. A departed peer can never ack a ping or grant a fork again,
/// so every oracle-guarded action (doorway entry, eating) must treat it
/// exactly like a suspected crash — even under an oracle (such as the
/// silent one) that never suspects anyone on its own. Without this union a
/// crash-stop departure would starve every survivor that still waits on
/// the dead edge.
struct WithDeparted<'a> {
    base: &'a dyn SuspicionView,
    departed: &'a BTreeSet<ProcessId>,
}

impl SuspicionView for WithDeparted<'_> {
    fn suspects(&self, q: ProcessId) -> bool {
        self.departed.contains(&q) || self.base.suspects(q)
    }
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut r = *z;
    r = (r ^ (r >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    r = (r ^ (r >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    r ^ (r >> 31)
}

impl RecoverableDining {
    /// Creates the recoverable process `id`; arguments as in
    /// [`DiningProcess::new`].
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut peers: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        peers.sort_unstable_by_key(|&(q, _)| q);
        let mut inner = DiningProcess::new(id, color, peers.iter().copied());
        inner.harden();
        let edges = peers
            .iter()
            .map(|&(q, _)| (q, EdgeState::fresh(true)))
            .collect();
        RecoverableDining {
            inner,
            id,
            color,
            peers,
            inc: 0,
            commit_seq: 0,
            now: 0,
            boot: BootPath::Genesis,
            resume_seq: 0,
            edges,
            departed: BTreeSet::new(),
            stats: RecoveryStats::default(),
            joined_this_life: false,
            strikes: DEFAULT_STRIKES,
            journal: None,
            restarts: Vec::new(),
        }
    }

    /// Attaches stable storage: every committed transition is journaled
    /// and restarts attempt the journal fast path before rejoining.
    pub fn with_journal(mut self, journal: JournalHandle) -> Self {
        self.journal = Some(journal);
        // A reopened store already holds committed records; the sequence
        // counter must never regress below them, or peers' last-seen
        // watermarks would refute every future resume.
        self.recover_seq_floor();
        self.journal_commit();
        self
    }

    /// Overrides the audit strike threshold (consecutive bad observations
    /// before a repair fires; minimum 1). Lower values repair faster but
    /// risk "repairing" resources that are merely in flight.
    pub fn with_strikes(mut self, strikes: u8) -> Self {
        self.strikes = strikes.max(1);
        self
    }

    /// Creates the recoverable process `id` from a conflict graph and a
    /// proper coloring.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    /// This process's current incarnation (0 = never crashed).
    pub fn incarnation(&self) -> u64 {
        self.inc
    }

    /// The monotone commit sequence number (the seq the next journal
    /// record will carry is `commit_seq() + 1`).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Recovery counters for the metrics layer.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The per-restart path log (empty until the first restart).
    pub fn restart_log(&self) -> &[RestartEvent] {
        &self.restarts
    }

    /// Whether stable storage is attached.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// The wrapped Algorithm 1 state machine (read-only).
    pub fn inner(&self) -> &DiningProcess {
        &self.inner
    }

    /// Whether the edge to `q` has an authoritative fork/token assignment
    /// (false only mid-rejoin after a restart of this process).
    pub fn edge_synced(&self, q: ProcessId) -> bool {
        self.edges[&q].synced
    }

    /// Whether `q` is marked as permanently departed (crash-stop leave).
    pub fn peer_is_departed(&self, q: ProcessId) -> bool {
        self.departed.contains(&q)
    }

    /// Current sorted `(neighbor, color)` configuration — shrinks and grows
    /// with membership notices.
    pub fn peer_list(&self) -> &[(ProcessId, Color)] {
        &self.peers
    }

    /// Whether this process holds the fork shared with `q`.
    pub fn holds_fork(&self, q: ProcessId) -> bool {
        self.inner.holds_fork(q)
    }

    /// Whether this process holds the token shared with `q`.
    pub fn holds_token(&self, q: ProcessId) -> bool {
        self.inner.holds_token(q)
    }

    fn peer_color(&self, q: ProcessId) -> Color {
        let i = self
            .peers
            .binary_search_by_key(&q, |&(p, _)| p)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id));
        self.peers[i].1
    }

    /// The initial-placement rule of §3.1, as `(my_fork, my_token)`:
    /// fork at the higher color, token at the lower.
    fn canonical(&self, qcolor: Color) -> (bool, bool) {
        (self.color > qcolor, self.color < qcolor)
    }

    /// Wraps raw Algorithm 1 sends with incarnation stamps; messages on
    /// not-yet-resynced edges are suppressed (the post-sync re-evaluation
    /// of the internal actions regenerates whatever is still needed from
    /// the authoritative state).
    fn forward(
        &mut self,
        raw: Vec<(ProcessId, DiningMsg)>,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        for (q, msg) in raw {
            let e = self.edges.get_mut(&q).expect("neighbor");
            if e.synced {
                if matches!(msg, DiningMsg::Fork | DiningMsg::Request { .. }) {
                    e.activity += 1;
                }
                sends.push((
                    q,
                    RecoveryMsg::Dining {
                        inc: self.inc,
                        dst_inc: e.peer_inc,
                        // The seq of the commit this send belongs to: every
                        // entry point commits exactly once, after its sends
                        // are produced and before they are released.
                        seq: self.commit_seq + 1,
                        msg,
                    },
                ));
            } else {
                self.stats.suppressed += 1;
            }
        }
    }

    /// Runs the inner Algorithm 1 machine under the departed-peer suspicion
    /// union — the single choke point through which every inner guard
    /// evaluation goes, so a departed neighbor substitutes for its missing
    /// ack/fork everywhere.
    fn inner_handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        suspicion: &dyn SuspicionView,
        raw: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        let departed = std::mem::take(&mut self.departed);
        self.inner.handle(
            input,
            &WithDeparted {
                base: suspicion,
                departed: &departed,
            },
            raw,
        );
        self.departed = departed;
    }

    /// Re-evaluates the inner machine's guarded commands (Actions 2/5/6/9)
    /// after recovery-layer state surgery.
    fn poke(&mut self, suspicion: &dyn SuspicionView, sends: &mut Vec<(ProcessId, RecoveryMsg)>) {
        let mut raw = Vec::new();
        self.inner_handle(DiningInput::SuspicionChange, suspicion, &mut raw);
        self.forward(raw, sends);
    }

    /// Handles a rejoin announcement. `stale` is set when this call
    /// refutes a [`RecoveryMsg::JournalResume`] whose sequence number
    /// proved the snapshot stale — the flag rides on the ack so the
    /// rejoiner records the right [`ResyncPath`].
    fn on_rejoin(
        &mut self,
        from: ProcessId,
        rinc: u64,
        stale: bool,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let known = self.edges[&from].peer_inc;
        if rinc < known {
            self.stats.stale_dropped += 1;
            return;
        }
        if rinc > known {
            // First sight of this incarnation: re-canonicalize my side of
            // the edge and hand the rejoiner the complement. An eating
            // responder keeps its fork so re-admission cannot violate
            // exclusion; otherwise the initial-placement rule applies.
            let (my_fork, my_token) = if self.inner.state() == DinerState::Eating {
                (true, false)
            } else {
                self.canonical(self.peer_color(from))
            };
            {
                let e = self.edges.get_mut(&from).expect("neighbor");
                e.peer_inc = rinc;
                e.clear_strikes();
            }
            self.inner.reset_edge_session(from);
            self.inner.set_fork(from, my_fork);
            self.inner.set_token(from, my_token);
            sends.push((
                from,
                RecoveryMsg::RejoinAck {
                    inc: self.inc,
                    rejoiner_inc: rinc,
                    fork: !my_fork,
                    token: !my_token,
                    stale,
                },
            ));
            self.poke(suspicion, sends);
        } else {
            // Duplicate rejoin (retry): answer idempotently with the
            // complement of the current holdings — no state surgery.
            sends.push((
                from,
                RecoveryMsg::RejoinAck {
                    inc: self.inc,
                    rejoiner_inc: rinc,
                    fork: !self.inner.holds_fork(from),
                    token: !self.inner.holds_token(from),
                    stale,
                },
            ));
        }
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_rejoin_ack(
        &mut self,
        from: ProcessId,
        pinc: u64,
        rinc: u64,
        fork: bool,
        token: bool,
        stale: bool,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let outcome;
        {
            let e = self.edges.get_mut(&from).expect("neighbor");
            e.peer_inc = e.peer_inc.max(pinc);
            if rinc != self.inc || e.synced {
                self.stats.stale_dropped += 1;
                return;
            }
            // The edge completed via the rejoin handshake; it counts as
            // stale-refuted when either side's sequence comparison caught
            // a stale snapshot first (the responder's verdict rides on
            // the ack, the resumer's own was parked in `resync`).
            outcome = if stale || e.resync == ResyncPath::StaleRefuted {
                ResyncPath::StaleRefuted
            } else {
                ResyncPath::Rejoined
            };
            e.resync = outcome;
            e.resume_inc = None;
            e.synced = true;
            e.clear_strikes();
        }
        self.inner.reset_edge_session(from);
        self.inner.set_fork(from, fork);
        self.inner.set_token(from, token);
        self.stats.resyncs += 1;
        self.note_restart_edge(outcome);
        self.poke(suspicion, sends);
    }

    /// Commits the current recoverable state to stable storage (no-op
    /// without a journal). Called after every entry point, so the journal
    /// always holds the last committed transition.
    fn journal_commit(&mut self) {
        // The sequence number advances even without a journal: outgoing
        // messages are stamped with the would-be record's seq, and the
        // stamps must not depend on whether journaling is enabled.
        self.commit_seq += 1;
        let Some(journal) = &self.journal else { return };
        let record = JournalRecord {
            seq: self.commit_seq,
            tick: self.now,
            incarnation: self.inc,
            phase: match self.inner.state() {
                DinerState::Thinking => 0,
                DinerState::Hungry => 1,
                DinerState::Eating => 2,
            },
            doorway: self.inner.inside_doorway(),
            boot: self.boot,
            edges: self
                .peers
                .iter()
                .map(|&(q, _)| {
                    let e = &self.edges[&q];
                    EdgeRecord {
                        peer: q.index() as u32,
                        peer_inc: e.peer_inc,
                        flags: self.inner.edge_flags(q),
                        synced: e.synced,
                        resume_pending: e.resume_inc.is_some(),
                        resync: e.resync,
                    }
                })
                .collect(),
        };
        journal.commit(&record.encode());
    }

    /// Raises `commit_seq` to the highest sequence number recoverable
    /// from stable storage: the store's own commit counter and every
    /// decodable retained record. Called on attach and on restart — even
    /// when the restart then goes blank — so the counter never regresses
    /// and peers' last-seen watermarks stay sound across any fault.
    fn recover_seq_floor(&mut self) {
        let Some(journal) = self.journal.clone() else {
            return;
        };
        self.commit_seq = self.commit_seq.max(journal.commit_seq());
        for k in 0.. {
            let Some(bytes) = journal.history(k) else {
                break;
            };
            if let Ok(r) = JournalRecord::decode(&bytes) {
                self.commit_seq = self.commit_seq.max(r.seq);
            }
        }
    }

    /// Attempts journal replay at the start of incarnation `incarnation`.
    ///
    /// On a valid record, restores the trusted per-edge bits (fork, token,
    /// deferred) and marks each edge that was synced at commit time as
    /// pending a [`RecoveryMsg::JournalResume`]; edges journaled mid-rejoin
    /// keep the full handshake. Any validation failure leaves the blank
    /// factory-reset state untouched.
    fn replay_journal(&mut self, incarnation: u64) -> RestartPath {
        if self.journal.is_none() {
            return RestartPath::Blank {
                reason: BlankReason::Disabled,
            };
        }
        // Sequence recovery runs before (and independently of) record
        // validation: a blank fallback must still never reuse a seq.
        self.recover_seq_floor();
        let journal = self.journal.clone().expect("journal checked above");
        let Some(bytes) = journal.load() else {
            return RestartPath::Blank {
                reason: BlankReason::Missing,
            };
        };
        let Ok(record) = JournalRecord::decode(&bytes) else {
            return RestartPath::Blank {
                reason: BlankReason::Corrupt,
            };
        };
        if record.incarnation >= incarnation {
            // A record claiming to be from this process's future is as
            // untrustworthy as a failed checksum.
            return RestartPath::Blank {
                reason: BlankReason::Corrupt,
            };
        }
        self.resume_seq = record.seq;
        for er in &record.edges {
            let q = ProcessId::from(er.peer as usize);
            let Some(e) = self.edges.get_mut(&q) else {
                continue; // configuration mismatch: ignore unknown edges
            };
            e.peer_inc = er.peer_inc;
            if er.synced {
                self.inner.restore_edge_flags(q, er.flags & RESTORE_MASK);
                e.resume_inc = Some(record.incarnation);
            }
        }
        RestartPath::Journal {
            resumed: 0,
            rejoined: 0,
            stale: 0,
        }
    }

    /// Updates the latest restart-log entry when an edge finishes its
    /// post-restart resync, bucketing it by the [`ResyncPath`] it took.
    fn note_restart_edge(&mut self, outcome: ResyncPath) {
        if let Some(RestartEvent {
            path:
                RestartPath::Journal {
                    resumed,
                    rejoined,
                    stale,
                },
            ..
        }) = self.restarts.last_mut()
        {
            match outcome {
                ResyncPath::Resumed => *resumed += 1,
                ResyncPath::StaleRefuted => *stale += 1,
                _ => *rejoined += 1,
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_journal_resume(
        &mut self,
        from: ProcessId,
        rinc: u64,
        jinc: u64,
        peer_view: u64,
        seq: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let known = self.edges[&from].peer_inc;
        let last_seen = self.edges[&from].peer_seq;
        if rinc < known {
            self.stats.stale_dropped += 1;
            return;
        }
        if rinc == known {
            // Retry of a resume this incarnation already registered (the
            // first answer was lost, or the edge already degraded to the
            // rejoin path): answer idempotently with current holdings —
            // the resumer's consistency check decides what to do.
            sends.push((
                from,
                RecoveryMsg::ResumeAck {
                    inc: self.inc,
                    resumer_inc: rinc,
                    fork: self.inner.holds_fork(from),
                    token: self.inner.holds_token(from),
                    last_seen,
                },
            ));
            return;
        }
        // Sequence refutation: a message stamped `s` is released only
        // after record `s` reached the sender's stable storage, so having
        // seen `s > seq` proves the replayed record is not the sender's
        // last commit. Refute immediately — no need to wait for the
        // fork/token consistency check (which a stale-but-complementary
        // snapshot could even pass).
        let stale = seq < last_seen;
        let confirm = !stale && jinc == known && peer_view == self.inc && self.edges[&from].synced;
        if confirm {
            // The journaled pairing matches this side exactly: register
            // the new incarnation and report holdings. Fork, token and
            // deferred obligations stay put — but any ping/ack handshake
            // with the *old* incarnation is dead (a ping the restarter
            // will never answer would otherwise dangle until the audit's
            // stuck-ping rescue), so restart it and re-evaluate.
            {
                let e = self.edges.get_mut(&from).expect("neighbor");
                e.peer_inc = rinc;
                e.clear_strikes();
            }
            self.inner.reset_edge_handshake(from);
            sends.push((
                from,
                RecoveryMsg::ResumeAck {
                    inc: self.inc,
                    resumer_inc: rinc,
                    fork: self.inner.holds_fork(from),
                    token: self.inner.holds_token(from),
                    last_seen,
                },
            ));
            self.poke(suspicion, sends);
        } else {
            // Refuted: the snapshot is provably stale (`stale`), or the
            // journal describes a pairing this side no longer recognizes
            // (it restarted too, or never saw that life). Degrade to the
            // rejoin handshake — the authoritative RejoinAck doubles as
            // the negative answer, saving a round trip.
            self.on_rejoin(from, rinc, stale, suspicion, sends);
        }
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_resume_ack(
        &mut self,
        from: ProcessId,
        pinc: u64,
        rinc: u64,
        fork: bool,
        token: bool,
        last_seen: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        // Resumer-side sequence refutation: the responder has observed a
        // commit newer than the record this restart replayed, so the
        // journal lost (at least) that commit's transition. The replayed
        // holdings cannot be trusted even if they happen to look
        // complementary.
        let stale = last_seen > self.resume_seq;
        let consistent;
        {
            let e = self.edges.get_mut(&from).expect("neighbor");
            e.peer_inc = e.peer_inc.max(pinc);
            if rinc != self.inc || e.synced {
                self.stats.stale_dropped += 1;
                return;
            }
            // The Lemma 1 edge-consistency check: trust the replayed state
            // only if it is exactly complementary to the responder's —
            // one fork and one token on the edge, no more, no less.
            consistent = !stale
                && (self.inner.holds_fork(from) != fork)
                && (self.inner.holds_token(from) != token);
            e.resume_inc = None;
            if consistent {
                e.synced = true;
                e.clear_strikes();
                e.resync = ResyncPath::Resumed;
            } else if stale {
                // Park the verdict: the RejoinAck that completes this
                // edge will bucket it as stale-refuted.
                e.resync = ResyncPath::StaleRefuted;
            }
        }
        if consistent {
            // Keep the replayed fork/token/deferred bits, but drop any
            // handshake state accrued while the edge was still unsynced —
            // a doorway ping issued before this ack was suppressed, and
            // leaving `pinged` set would wait forever on an ack that was
            // never requested.
            self.inner.reset_edge_handshake(from);
            self.stats.fast_resumes += 1;
            self.note_restart_edge(ResyncPath::Resumed);
            self.poke(suspicion, sends);
        } else {
            // The edge moved while we were down (an in-flight fork died
            // with the old incarnation, or the snapshot was stale): fall
            // back to the rejoin handshake for this edge only.
            sends.push((from, RecoveryMsg::Rejoin { inc: self.inc }));
        }
    }

    #[allow(clippy::too_many_arguments)] // message fields unpacked by the dispatcher
    fn on_audit_msg(
        &mut self,
        from: ProcessId,
        pinc: u64,
        dst: u64,
        seq: u64,
        fork: bool,
        token: bool,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        {
            // The watermark update precedes the incarnation gate: a seq
            // stamp proves a durable commit regardless of which life sent
            // it (the counter is monotone across the peer's restarts).
            let e = self.edges.get_mut(&from).expect("neighbor");
            e.peer_seq = e.peer_seq.max(seq);
        }
        if self.edges[&from].peer_inc != pinc || dst != self.inc || !self.edges[&from].synced {
            self.stats.stale_dropped += 1;
            return;
        }
        let my_fork = self.inner.holds_fork(from);
        let my_token = self.inner.holds_token(from);
        let lower = self.color < self.peer_color(from);
        let strikes = self.strikes;
        let mut repaired = false;
        {
            let e = self.edges.get_mut(&from).expect("neighbor");
            // *Recreate*-type strikes (missing fork/token) only accumulate
            // across quiet audit intervals: an in-flight transfer looks
            // exactly like a missing fork (sender cleared, receiver not
            // yet set), and under contention two consecutive audits can
            // both catch traffic — hysteresis alone would then mint a
            // second fork on a healthy edge and break ◇WX. Genuine loss
            // leaves the edge quiet (nothing can move a fork that does not
            // exist), so it still strikes out. *Drop*-type strikes (dup
            // fork/token) stay on plain hysteresis: dropping can only
            // destroy state, never violate exclusion, and a duplicate
            // keeps traffic flowing so a quiet requirement could starve
            // the repair indefinitely.
            if e.activity != e.audit_activity {
                e.audit_activity = e.activity;
                e.missing_fork = 0;
                e.missing_token = 0;
            }
            // Antisymmetric repairs with strike hysteresis: exactly one
            // endpoint acts on each anomaly, chosen by color.
            if my_fork && fork {
                e.dup_fork += 1;
                if e.dup_fork >= strikes && lower {
                    e.dup_fork = 0;
                    repaired = true; // lower color drops the duplicate fork
                }
            } else {
                e.dup_fork = 0;
            }
            if !my_fork && !fork {
                e.missing_fork += 1;
            } else {
                e.missing_fork = 0;
            }
            if my_token && token {
                e.dup_token += 1;
            } else {
                e.dup_token = 0;
            }
            if !my_token && !token {
                e.missing_token += 1;
            } else {
                e.missing_token = 0;
            }
        }
        let mut changed = false;
        if repaired {
            self.inner.set_fork(from, false);
            changed = true;
        }
        let e = self.edges.get_mut(&from).expect("neighbor");
        if e.missing_fork >= strikes && !lower {
            e.missing_fork = 0;
            self.inner.set_fork(from, true); // higher color recreates it
            changed = true;
        }
        if e.dup_token >= strikes && !lower {
            e.dup_token = 0;
            self.inner.set_token(from, false); // higher color drops it
            changed = true;
        }
        if e.missing_token >= strikes && lower {
            e.missing_token = 0;
            self.inner.set_token(from, true); // lower color recreates it
            changed = true;
        }
        if changed {
            self.stats.repairs += 1;
            self.poke(suspicion, sends);
        }
    }

    fn dispatch(
        &mut self,
        input: DiningInput<RecoveryMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        match input {
            DiningInput::Message { from, msg } => {
                if !self.edges.contains_key(&from) {
                    // A drained straggler from a peer that was removed, or
                    // a joiner's handshake racing ahead of its membership
                    // notice (the joiner's audit timer retries it).
                    self.stats.stale_dropped += 1;
                    return;
                }
                match msg {
                    RecoveryMsg::Dining {
                        inc,
                        dst_inc,
                        seq,
                        msg,
                    } => {
                        let e = self.edges.get_mut(&from).expect("neighbor");
                        // Watermark before gate: even a gated message proves
                        // the peer durably committed record `seq`.
                        e.peer_seq = e.peer_seq.max(seq);
                        if inc != e.peer_inc || dst_inc != self.inc || !e.synced {
                            self.stats.stale_dropped += 1;
                            return;
                        }
                        if matches!(msg, DiningMsg::Fork | DiningMsg::Request { .. }) {
                            e.activity += 1;
                        }
                        let mut raw = Vec::new();
                        self.inner_handle(DiningInput::Message { from, msg }, suspicion, &mut raw);
                        self.forward(raw, sends);
                    }
                    RecoveryMsg::Rejoin { inc } => {
                        self.on_rejoin(from, inc, false, suspicion, sends)
                    }
                    RecoveryMsg::RejoinAck {
                        inc,
                        rejoiner_inc,
                        fork,
                        token,
                        stale,
                    } => self.on_rejoin_ack(
                        from,
                        inc,
                        rejoiner_inc,
                        fork,
                        token,
                        stale,
                        suspicion,
                        sends,
                    ),
                    RecoveryMsg::Audit {
                        inc,
                        dst_inc,
                        seq,
                        fork,
                        token,
                    } => self.on_audit_msg(from, inc, dst_inc, seq, fork, token, suspicion, sends),
                    RecoveryMsg::JournalResume {
                        inc,
                        journal_inc,
                        peer_inc,
                        seq,
                    } => self.on_journal_resume(
                        from,
                        inc,
                        journal_inc,
                        peer_inc,
                        seq,
                        suspicion,
                        sends,
                    ),
                    RecoveryMsg::ResumeAck {
                        inc,
                        resumer_inc,
                        fork,
                        token,
                        last_seen,
                    } => self.on_resume_ack(
                        from,
                        inc,
                        resumer_inc,
                        fork,
                        token,
                        last_seen,
                        suspicion,
                        sends,
                    ),
                }
            }
            DiningInput::Hungry => {
                let mut raw = Vec::new();
                self.inner_handle(DiningInput::Hungry, suspicion, &mut raw);
                self.forward(raw, sends);
            }
            DiningInput::DoneEating => {
                let mut raw = Vec::new();
                self.inner_handle(DiningInput::DoneEating, suspicion, &mut raw);
                self.forward(raw, sends);
            }
            DiningInput::SuspicionChange => self.poke(suspicion, sends),
        }
    }
}

impl DiningAlgorithm for RecoverableDining {
    type Msg = RecoveryMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<RecoveryMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.dispatch(input, suspicion, sends);
        // Write-ahead commit: the transition is journaled in the same
        // atomic step that produced it, before its sends are released.
        self.journal_commit();
    }

    fn state(&self) -> DinerState {
        self.inner.state()
    }

    fn inside_doorway(&self) -> bool {
        self.inner.inside_doorway()
    }

    /// Inner Algorithm 1 state plus the recovery layer: the 64-bit
    /// incarnation, commit-sequence counter and pending-resume seq, and,
    /// per edge, the peer incarnation, the synced bit, the departed mark,
    /// the optional pending-resume incarnation (1 + 64 bits), the peer's
    /// last-seen commit seq, the 2-bit resync tag and five 8-bit strike
    /// counters. Restart-log entries and the commit-time tick are
    /// diagnostics, not protocol state, and are excluded.
    fn state_bits(&self) -> usize {
        self.inner.state_bits() + 3 * 64 + self.peers.len() * (64 + 1 + 1 + 65 + 64 + 2 + 5 * 8)
    }

    fn note_now(&mut self, now: u64) {
        self.now = now;
    }

    fn supports_recovery(&self) -> bool {
        true
    }

    fn recovery_stats(&self) -> Option<RecoveryStats> {
        Some(self.stats)
    }

    fn restart_log(&self) -> Option<Vec<RestartEvent>> {
        Some(self.restarts.clone())
    }

    fn restart(
        &mut self,
        incarnation: u64,
        corruption: Option<u64>,
        _suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.inc = incarnation;
        // A crash-recovery restart is an established member's life, even
        // if the previous life began with a join: the restart handshake
        // below re-greets every edge itself.
        self.joined_this_life = false;
        // Factory reset: volatile state is rebuilt from the program image;
        // only the incarnation counter survived in stable storage. The
        // commit-sequence counter deliberately survives too (and is
        // re-floored from storage during replay): seq stamps must stay
        // monotone across every restart, blank or not.
        let mut inner = DiningProcess::new(self.id, self.color, self.peers.iter().copied());
        inner.harden();
        self.inner = inner;
        for (q, e) in self.edges.iter_mut() {
            // A departed peer will never answer a handshake; this side's
            // view of the dead edge is authoritative from the start.
            *e = EdgeState::fresh(self.departed.contains(q));
        }
        self.resume_seq = 0;
        // Journal replay happens before adversarial corruption: the
        // corruption models damage to the rebuilt *volatile* state, and
        // the ResumeAck consistency check (plus the audit) is what keeps
        // a scrambled replay from going unnoticed.
        let path = self.replay_journal(incarnation);
        self.boot = match path {
            RestartPath::Journal { .. } => BootPath::Journal,
            RestartPath::Blank {
                reason: BlankReason::Disabled,
            } => BootPath::BlankDisabled,
            RestartPath::Blank {
                reason: BlankReason::Missing,
            } => BootPath::BlankMissing,
            RestartPath::Blank {
                reason: BlankReason::Corrupt,
            } => BootPath::BlankCorrupt,
        };
        if let Some(entropy) = corruption {
            self.scramble(entropy);
        }
        for &(q, _) in &self.peers.clone() {
            if self.departed.contains(&q) {
                continue; // no handshake with the permanently departed
            }
            let msg = match self.edges[&q].resume_inc {
                Some(journal_inc) => RecoveryMsg::JournalResume {
                    inc: incarnation,
                    journal_inc,
                    peer_inc: self.edges[&q].peer_inc,
                    seq: self.resume_seq,
                },
                None => RecoveryMsg::Rejoin { inc: incarnation },
            };
            sends.push((q, msg));
        }
        self.restarts.push(RestartEvent { incarnation, path });
        // No poke: every edge is unsynced, so dining traffic would be
        // suppressed anyway; the post-ResumeAck/RejoinAck poke does the
        // real work.
        self.journal_commit();
    }

    fn inject_corruption(
        &mut self,
        entropy: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.scramble(entropy);
        // Flipped bits may enable (or spuriously satisfy) internal guards;
        // re-evaluate so the damage manifests — and can be audited — now.
        self.poke(suspicion, sends);
        self.journal_commit();
    }

    fn audit(&mut self, suspicion: &dyn SuspicionView, sends: &mut Vec<(ProcessId, RecoveryMsg)>) {
        let mut changed = false;
        for &(q, _) in &self.peers.clone() {
            if self.departed.contains(&q) {
                // Reclaim a fork the dead peer took with it. The exchange
                // repair cannot run (a departed peer sends no Audit
                // snapshots), so the strike accumulates locally — and it
                // deliberately bypasses the busy-edge hysteresis: activity
                // on this edge can never again be a fork in flight from a
                // live sender, so resetting the counter on a recently-busy
                // edge would only postpone the survivor's relief. A drain
                // Fork still in transit at departure is absorbed as a
                // harmless duplicate (the peer can never eat again). The
                // token is *not* reminted: the survivor never needs to
                // request from this edge once it holds the fork, and a
                // co-located fork+token pair would be discharged into the
                // void by the local audit (hence the eligibility filter
                // below excludes departed edges).
                if !self.inner.holds_fork(q) {
                    let strikes = self.strikes;
                    let e = self.edges.get_mut(&q).expect("neighbor");
                    e.missing_fork += 1;
                    if e.missing_fork >= strikes {
                        e.missing_fork = 0;
                        self.inner.set_fork(q, true);
                        self.stats.repairs += 1;
                        changed = true;
                    }
                }
                continue;
            }
            if !self.edges[&q].synced {
                // Retry an unfinished resync (lost or crossed handshake),
                // preserving the path the restart chose for this edge: a
                // pending journal fast path keeps resuming — this is what
                // carries a resume across a partition — and everything
                // else re-rejoins.
                let msg = match self.edges[&q].resume_inc {
                    Some(journal_inc) => RecoveryMsg::JournalResume {
                        inc: self.inc,
                        journal_inc,
                        peer_inc: self.edges[&q].peer_inc,
                        seq: self.resume_seq,
                    },
                    None => RecoveryMsg::Rejoin { inc: self.inc },
                };
                sends.push((q, msg));
                continue;
            }
            if suspicion.suspects(q) {
                // A presumed-crashed peer re-canonicalizes the edge itself
                // when it rejoins; auditing against it is meaningless.
                self.edges.get_mut(&q).expect("neighbor").clear_strikes();
                continue;
            }
            // Stuck ping: hungry-outside with a pending ping and no ack for
            // two consecutive audit rounds means the ack was destroyed (the
            // peer is live and unsuspected); clear so Action 2 re-pings.
            let stuck = self.inner.state() == DinerState::Hungry
                && !self.inner.inside_doorway()
                && self.inner.ping_pending(q)
                && !self.inner.acked_by(q);
            let strikes = self.strikes;
            let e = self.edges.get_mut(&q).expect("neighbor");
            if stuck {
                e.stuck_ping += 1;
                if e.stuck_ping >= strikes {
                    e.stuck_ping = 0;
                    self.inner.reset_ping(q);
                    self.stats.local_repairs += 1;
                    changed = true;
                }
            } else {
                e.stuck_ping = 0;
            }
            let dst_inc = self.edges[&q].peer_inc;
            sends.push((
                q,
                RecoveryMsg::Audit {
                    inc: self.inc,
                    dst_inc,
                    seq: self.commit_seq + 1,
                    fork: self.inner.holds_fork(q),
                    token: self.inner.holds_token(q),
                },
            ));
        }
        let mut raw = Vec::new();
        let eligible: Vec<ProcessId> = self
            .edges
            .iter()
            .filter(|(q, e)| e.synced && !self.departed.contains(q))
            .map(|(&q, _)| q)
            .collect();
        if self.inner.audit_local(|q| eligible.contains(&q), &mut raw) {
            self.stats.local_repairs += 1;
            changed = true;
        }
        self.forward(raw, sends);
        if changed {
            self.poke(suspicion, sends);
        }
        self.journal_commit();
    }

    fn supports_membership(&self) -> bool {
        true
    }

    /// Boots an initially-absent process into the system. Structurally a
    /// blank restart — every edge starts unsynced and announces the boot
    /// incarnation with the *same* rejoin handshake a recovery uses, so the
    /// peers need no join-specific protocol: a `Rejoin { inc ≥ 1 }` from an
    /// unknown incarnation re-canonicalizes the edge either way. No journal
    /// replay is attempted (there is no previous life to resume) and the
    /// restart log records nothing.
    fn join(
        &mut self,
        incarnation: u64,
        _suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        self.inc = incarnation;
        self.joined_this_life = true;
        let mut inner = DiningProcess::new(self.id, self.color, self.peers.iter().copied());
        inner.harden();
        self.inner = inner;
        for (q, e) in self.edges.iter_mut() {
            *e = EdgeState::fresh(self.departed.contains(q));
        }
        for &(q, _) in &self.peers.clone() {
            if !self.departed.contains(&q) {
                sends.push((q, RecoveryMsg::Rejoin { inc: incarnation }));
            }
        }
        self.journal_commit();
    }

    /// Graceful departure: discharge everything a waiting neighbor could
    /// starve on — held forks travel to their edges, deferred pings are
    /// acked — then fall silent. The sends go out before the process
    /// disappears (the membership layer guarantees the drain), so survivors
    /// are typically unblocked before their `remove_peer` notice even
    /// arrives.
    fn retire(&mut self, sends: &mut Vec<(ProcessId, RecoveryMsg)>) {
        for &(q, _) in &self.peers.clone() {
            if !self.edges[&q].synced || self.departed.contains(&q) {
                continue; // nothing authoritative to discharge
            }
            let mut raw = Vec::new();
            if self.inner.deferring_ack(q) {
                raw.push((q, DiningMsg::Ack));
            }
            if self.inner.holds_fork(q) {
                raw.push((q, DiningMsg::Fork));
            }
            self.inner.reset_edge_session(q);
            self.inner.set_fork(q, false);
            self.forward(raw, sends);
        }
        self.journal_commit();
    }

    /// A newly joined neighbor: grow the edge with the canonical placement.
    /// At an established member the placement is provisional — the
    /// joiner's `Rejoin { inc ≥ 1 }` outranks our `peer_inc = 0` and
    /// re-canonicalizes authoritatively (keeping our fork if we are
    /// eating), so a notice racing the handshake in either order converges
    /// to the same edge state. At a member that itself joined this life
    /// the edge boots unsynced and this side sends the hello instead.
    fn add_peer(
        &mut self,
        q: ProcessId,
        color: u32,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        if self.edges.contains_key(&q) {
            return; // duplicate notice
        }
        let i = self
            .peers
            .binary_search_by_key(&q, |&(p, _)| p)
            .expect_err("edge map and peer list agree");
        self.peers.insert(i, (q, color));
        self.inner.add_neighbor(q, color);
        if self.joined_this_life {
            // A joiner is the newcomer on every edge grown this life —
            // its own `join` greeted only the edges it booted with, so an
            // edge toward a neighbor learned *after* boot (an earlier
            // joiner, typically) gets the same treatment here: boot
            // unsynced and initiate the handshake. Crossed hellos between
            // two joiners answer each other idempotently and converge;
            // a lost hello is retried by the audit (unsynced edge).
            self.edges.insert(q, EdgeState::fresh(false));
            sends.push((q, RecoveryMsg::Rejoin { inc: self.inc }));
        } else {
            self.edges.insert(q, EdgeState::fresh(true));
        }
        self.departed.remove(&q);
        self.poke(suspicion, sends);
        self.journal_commit();
    }

    /// A neighbor left gracefully: tear the edge down completely. Guards
    /// that quantified over it are re-evaluated — a hungry process waiting
    /// on the departed neighbor's ack or fork is unblocked immediately.
    fn remove_peer(
        &mut self,
        q: ProcessId,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let Ok(i) = self.peers.binary_search_by_key(&q, |&(p, _)| p) else {
            return; // duplicate notice
        };
        self.peers.remove(i);
        self.edges.remove(&q);
        self.inner.remove_neighbor(q);
        self.departed.remove(&q);
        self.poke(suspicion, sends);
        self.journal_commit();
    }

    /// A neighbor crash-stopped out of the system without draining. The
    /// edge is retained (its fork may be stranded on the dead side) but
    /// marked departed: the peer counts as suspected in every guard from
    /// now on, pending handshakes are abandoned, and the audit pass remints
    /// a stranded fork after the strike policy.
    fn peer_departed(
        &mut self,
        q: ProcessId,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, RecoveryMsg)>,
    ) {
        let Some(e) = self.edges.get_mut(&q) else {
            return; // duplicate notice, or the edge was already removed
        };
        e.synced = true; // the dead peer will never answer; our view stands
        e.resume_inc = None;
        e.clear_strikes();
        self.departed.insert(q);
        self.poke(suspicion, sends);
        self.journal_commit();
    }
}

impl RecoverableDining {
    /// Deterministically flips per-edge flag bits from `entropy`: roughly
    /// three of four edges get a non-empty XOR mask over the six per-edge
    /// bits; if the draw selects no edge at all, the first edge's fork bit
    /// is flipped so a scheduled corruption is never a silent no-op.
    fn scramble(&mut self, entropy: u64) {
        let mut z = entropy;
        let mut any = false;
        for &(q, _) in &self.peers.clone() {
            let r = splitmix(&mut z);
            if r & 0b11 == 0 {
                continue;
            }
            let mut mask = ((r >> 2) & 0x3F) as u8;
            if mask == 0 {
                mask = 0x10; // FORK
            }
            self.inner.corrupt_edge(q, mask);
            any = true;
        }
        if !any {
            if let Some(&(q, _)) = self.peers.first() {
                self.inner.corrupt_edge(q, 0x10);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    fn sus(ids: &[usize]) -> BTreeSet<ProcessId> {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// `hi` (color 1, starts with fork) and `lo` (color 0, starts with
    /// token), as recoverable processes.
    fn pair() -> (RecoverableDining, RecoverableDining) {
        let hi = RecoverableDining::new(p(0), 1, [(p(1), 0)]);
        let lo = RecoverableDining::new(p(1), 0, [(p(0), 1)]);
        (hi, lo)
    }

    /// Delivers `msgs` (sent by `from`) into `target`, returning its sends.
    fn deliver(
        target: &mut RecoverableDining,
        from: ProcessId,
        msgs: &[(ProcessId, RecoveryMsg)],
        suspicion: &BTreeSet<ProcessId>,
    ) -> Vec<(ProcessId, RecoveryMsg)> {
        let mut out = Vec::new();
        for &(to, msg) in msgs {
            assert_eq!(to, target.id(), "test shuttles to the right process");
            target.handle(DiningInput::Message { from, msg }, suspicion, &mut out);
        }
        out
    }

    /// Asserts the Lemma 1 edge invariant between two synced endpoints.
    fn assert_edge_canonical(a: &RecoverableDining, b: &RecoverableDining) {
        let forks = a.holds_fork(b.id()) as u32 + b.holds_fork(a.id()) as u32;
        let tokens = a.holds_token(b.id()) as u32 + b.holds_token(a.id()) as u32;
        assert_eq!(forks, 1, "exactly one fork on the edge");
        assert_eq!(tokens, 1, "exactly one token on the edge");
    }

    #[test]
    fn fault_free_pair_behaves_like_algorithm_1() {
        let (mut hi, mut lo) = pair();
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        // Ping → Ack → Request → Fork, all wrapped at incarnation 0.
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        assert!(m.is_empty());
        assert_eq!(lo.state(), DinerState::Eating);
        assert_eq!(lo.stats(), RecoveryStats::default(), "no recovery action");
    }

    #[test]
    fn rejoin_handshake_restores_the_edge_invariant() {
        let (mut hi, mut lo) = pair();
        // lo crashes and restarts blank as incarnation 1.
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        assert_eq!(
            rejoins,
            vec![(p(0), RecoveryMsg::Rejoin { inc: 1 })],
            "restart announces the new incarnation on every edge"
        );
        assert!(!lo.edge_synced(p(0)));
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        assert_eq!(
            acks,
            vec![(
                p(1),
                RecoveryMsg::RejoinAck {
                    inc: 0,
                    rejoiner_inc: 1,
                    fork: false,
                    token: true,
                    stale: false
                }
            )],
            "responder keeps the fork (higher color), hands back the token"
        );
        let quiet = deliver(&mut lo, p(0), &acks, &none());
        assert!(quiet.is_empty());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(lo.stats().resyncs, 1);
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn messages_from_or_to_a_previous_life_are_dropped() {
        let (mut hi, mut lo) = pair();
        // A pre-crash ping from lo's incarnation 0 is in flight…
        let mut stale = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut stale);
        // …lo restarts and resyncs…
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        // …then the stale ping finally arrives: dropped, no ack.
        let before = hi.stats().stale_dropped;
        let out = deliver(&mut hi, p(1), &stale, &none());
        assert!(out.is_empty(), "no ack for a previous life's ping");
        assert_eq!(hi.stats().stale_dropped, before + 1);
        // And a message addressed to lo's previous life is dropped by lo.
        let to_old_lo = [(
            p(1),
            RecoveryMsg::Dining {
                inc: 0,
                dst_inc: 0,
                seq: 1,
                msg: DiningMsg::Ack,
            },
        )];
        let out = deliver(&mut lo, p(0), &to_old_lo, &none());
        assert!(out.is_empty());
        assert!(lo.stats().stale_dropped >= 1);
    }

    #[test]
    fn mutual_restart_converges_via_crossed_rejoins() {
        let (mut hi, mut lo) = pair();
        let mut hi_rejoin = Vec::new();
        hi.restart(1, None, &none(), &mut hi_rejoin);
        let mut lo_rejoin = Vec::new();
        lo.restart(1, None, &none(), &mut lo_rejoin);
        // Crossed delivery: each answers the other's rejoin.
        let hi_acks = deliver(&mut hi, p(1), &lo_rejoin, &none());
        let lo_acks = deliver(&mut lo, p(0), &hi_rejoin, &none());
        let a = deliver(&mut lo, p(0), &hi_acks, &none());
        let b = deliver(&mut hi, p(1), &lo_acks, &none());
        assert!(a.is_empty() && b.is_empty());
        assert!(hi.edge_synced(p(1)) && lo.edge_synced(p(0)));
        assert_edge_canonical(&hi, &lo);
        assert!(hi.holds_fork(p(1)), "canonical rule: fork at higher color");
    }

    #[test]
    fn eating_responder_keeps_its_fork() {
        // lo (color 0) eats while suspecting hi; hi "recovers" with a
        // higher color. Canonically hi would get the fork — but handing it
        // over mid-meal would break exclusion, so the eating responder
        // keeps it.
        let (mut hi, mut lo) = pair();
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &sus(&[0]), &mut m);
        assert_eq!(lo.state(), DinerState::Eating);
        let mut rejoins = Vec::new();
        hi.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut lo, p(0), &rejoins, &sus(&[0]));
        assert!(acks.contains(&(
            p(0),
            RecoveryMsg::RejoinAck {
                inc: 0,
                rejoiner_inc: 1,
                fork: false,
                token: true,
                stale: false
            }
        )));
        deliver(&mut hi, p(1), &acks, &none());
        assert_eq!(lo.state(), DinerState::Eating, "meal undisturbed");
        assert!(lo.holds_fork(p(0)) && !hi.holds_fork(p(1)));
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn duplicate_rejoin_is_answered_idempotently() {
        let (mut hi, mut lo) = pair();
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let first = deliver(&mut hi, p(1), &rejoins, &none());
        // The retry (same incarnation) must not re-canonicalize: hi's
        // holdings are untouched and the answer matches.
        let second = deliver(&mut hi, p(1), &rejoins, &none());
        assert_eq!(first, second);
        deliver(&mut lo, p(0), &first, &none());
        assert!(lo.edge_synced(p(0)));
        // A third ack (from the retry) is ignored — already synced.
        let quiet = deliver(&mut lo, p(0), &second, &none());
        assert!(quiet.is_empty());
        assert_eq!(lo.stats().resyncs, 1);
        assert_edge_canonical(&hi, &lo);
    }

    /// Runs `rounds` audit rounds between the two processes, shuttling the
    /// audit traffic both ways.
    fn audit_rounds(a: &mut RecoverableDining, b: &mut RecoverableDining, rounds: usize) {
        for _ in 0..rounds {
            let mut am = Vec::new();
            a.audit(&none(), &mut am);
            let mut bm = Vec::new();
            b.audit(&none(), &mut bm);
            let ra = deliver(b, a.id(), &am, &none());
            let rb = deliver(a, b.id(), &bm, &none());
            // Repairs may emit follow-up dining traffic; deliver it too.
            let x = deliver(a, b.id(), &ra, &none());
            let y = deliver(b, a.id(), &rb, &none());
            let x2 = deliver(b, a.id(), &x, &none());
            let y2 = deliver(a, b.id(), &y, &none());
            deliver(a, b.id(), &x2, &none());
            deliver(b, a.id(), &y2, &none());
        }
    }

    #[test]
    fn audit_repairs_a_duplicated_fork() {
        let (mut hi, mut lo) = pair();
        // Corruption forges a second fork at lo and destroys its token —
        // without the token the local co-location discharge cannot
        // shortcut the repair, so this exercises the exchange path.
        lo.inner.corrupt_edge(p(0), 0x30);
        assert!(hi.holds_fork(p(1)) && lo.holds_fork(p(0)));
        audit_rounds(&mut hi, &mut lo, DEFAULT_STRIKES as usize + 1);
        assert_edge_canonical(&hi, &lo);
        assert!(
            !lo.holds_fork(p(0)),
            "the lower color dropped the duplicate"
        );
        assert!(lo.stats().repairs >= 1);
    }

    #[test]
    fn audit_discharges_colocated_token_and_fork() {
        let (mut hi, mut lo) = pair();
        // Corruption forges a second fork right next to lo's token. A
        // thinking process holding both is unreachable under Algorithm 1
        // (exit discharges the pair), so the audit discharges it locally
        // and immediately: the fork travels to hi, which absorbs the
        // duplicate, and the token stays.
        lo.inner.corrupt_edge(p(0), 0x10);
        assert!(lo.holds_fork(p(0)) && lo.holds_token(p(0)));
        audit_rounds(&mut hi, &mut lo, 1);
        assert_edge_canonical(&hi, &lo);
        assert!(!lo.holds_fork(p(0)), "the pair was discharged");
        assert!(lo.stats().local_repairs >= 1);
    }

    #[test]
    fn audit_repairs_a_lost_token() {
        let (mut hi, mut lo) = pair();
        lo.inner.corrupt_edge(p(0), 0x20); // token bit flips off
        assert!(!hi.holds_token(p(1)) && !lo.holds_token(p(0)));
        audit_rounds(&mut hi, &mut lo, DEFAULT_STRIKES as usize + 1);
        assert_edge_canonical(&hi, &lo);
        assert!(lo.holds_token(p(0)), "the lower color recreated it");
    }

    #[test]
    fn audit_does_not_fire_on_a_single_observation() {
        // Hysteresis: one bad observation (a fork genuinely in flight)
        // must not trigger an exchange repair. The token is destroyed
        // alongside so the local co-location discharge stays out of play.
        let (mut hi, mut lo) = pair();
        lo.inner.corrupt_edge(p(0), 0x30);
        audit_rounds(&mut hi, &mut lo, 1);
        assert!(
            lo.holds_fork(p(0)) && hi.holds_fork(p(1)),
            "one strike is not enough"
        );
    }

    #[test]
    fn audit_clears_a_stuck_ping() {
        let (mut hi, _lo) = pair();
        let mut m = Vec::new();
        hi.handle(DiningInput::Hungry, &none(), &mut m);
        assert_eq!(m.len(), 1, "ping out");
        assert!(hi.inner().ping_pending(p(1)));
        // The ack is destroyed in transit; two audit rounds later the ping
        // flag is cleared and Action 2 re-pings immediately.
        let mut out = Vec::new();
        hi.audit(&none(), &mut out);
        assert!(hi.inner().ping_pending(p(1)), "first strike only");
        let mut out = Vec::new();
        hi.audit(&none(), &mut out);
        assert!(
            out.iter().any(|&(q, m)| q == p(1)
                && matches!(
                    m,
                    RecoveryMsg::Dining {
                        msg: DiningMsg::Ping,
                        ..
                    }
                )),
            "repair re-pings: {out:?}"
        );
        assert!(hi.stats().local_repairs >= 1);
    }

    #[test]
    fn corrupted_restart_still_resyncs_canonically() {
        let (mut hi, mut lo) = pair();
        let mut rejoins = Vec::new();
        lo.restart(1, Some(0xDEAD_BEEF), &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        // Whatever the scramble did to the edge bits, the RejoinAck is
        // authoritative.
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn scramble_is_deterministic_and_never_a_noop() {
        let (_, lo0) = pair();
        let mut a = lo0.clone();
        let mut b = lo0.clone();
        a.scramble(42);
        b.scramble(42);
        assert_eq!(a.inner(), b.inner(), "same entropy ⇒ same flips");
        let mut c = lo0.clone();
        for seed in 0..64u64 {
            let mut d = c.clone();
            d.scramble(seed);
            assert_ne!(d.inner(), c.inner(), "seed {seed} must flip something");
            c = lo0.clone();
        }
    }

    /// Shuttles one complete dining session for `lo` (which starts it):
    /// ping → ack → request → fork.
    fn run_session(hi: &mut RecoverableDining, lo: &mut RecoverableDining) {
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        let m = deliver(hi, lo.id(), &m, &none());
        let m = deliver(lo, hi.id(), &m, &none());
        let m = deliver(hi, lo.id(), &m, &none());
        deliver(lo, hi.id(), &m, &none());
        assert_eq!(lo.state(), DinerState::Eating);
    }

    #[test]
    fn journaled_restart_takes_the_fast_path_and_keeps_its_fork() {
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(ekbd_journal::JournalHandle::in_memory());
        run_session(&mut hi, &mut lo);
        assert!(lo.holds_fork(p(0)), "the meal left the fork at lo");
        // Clean crash + restart: the journal replays and the restart asks
        // for confirmation instead of rejoining.
        let mut m = Vec::new();
        lo.restart(1, None, &none(), &mut m);
        assert!(
            matches!(m[..], [(q, RecoveryMsg::JournalResume { inc: 1, .. })] if q == p(0)),
            "journaled restart resumes, not rejoins: {m:?}"
        );
        assert!(lo.holds_fork(p(0)), "replay restored the journaled fork");
        let acks = deliver(&mut hi, p(1), &m, &none());
        assert!(
            matches!(acks[..], [(_, RecoveryMsg::ResumeAck { .. })]),
            "{acks:?}"
        );
        deliver(&mut lo, p(0), &acks, &none());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(lo.stats().fast_resumes, 1);
        assert_eq!(lo.stats().resyncs, 0, "no rejoin handshake ran");
        assert_eq!(
            lo.restart_log(),
            &[RestartEvent {
                incarnation: 1,
                path: RestartPath::Journal {
                    resumed: 1,
                    rejoined: 0,
                    stale: 0
                }
            }]
        );
        assert_edge_canonical(&hi, &lo);
        assert!(lo.holds_fork(p(0)), "fast path skipped fork reacquisition");
    }

    #[test]
    fn restart_without_journal_logs_a_blank_disabled_path() {
        let (_, mut lo) = pair();
        let mut m = Vec::new();
        lo.restart(1, None, &none(), &mut m);
        assert_eq!(
            lo.restart_log(),
            &[RestartEvent {
                incarnation: 1,
                path: RestartPath::Blank {
                    reason: BlankReason::Disabled
                }
            }]
        );
    }

    #[test]
    fn corrupt_journal_degrades_to_the_blank_restart_path() {
        use ekbd_journal::{FaultyJournal, JournalHandle, StorageFault};
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(JournalHandle::new(FaultyJournal::new(
            StorageFault::BitRot,
            0x0BAD_5EED,
        )));
        run_session(&mut hi, &mut lo);
        let mut m = Vec::new();
        lo.restart(1, None, &none(), &mut m);
        assert!(
            matches!(m[..], [(_, RecoveryMsg::Rejoin { inc: 1 })]),
            "rotted journal must reboot blank: {m:?}"
        );
        assert_eq!(
            lo.restart_log()[0].path,
            RestartPath::Blank {
                reason: BlankReason::Corrupt
            }
        );
        let acks = deliver(&mut hi, p(1), &m, &none());
        deliver(&mut lo, p(0), &acks, &none());
        assert!(lo.edge_synced(p(0)));
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn dropped_syncs_look_like_a_missing_journal() {
        use ekbd_journal::{FaultyJournal, JournalHandle, StorageFault};
        let (_, mut lo) = pair();
        // Only a handful of commits ever happen, and the dropped-sync
        // fault means none of them became durable.
        lo = lo.with_journal(JournalHandle::new(FaultyJournal::new(
            StorageFault::DroppedSync,
            7,
        )));
        let mut m = Vec::new();
        lo.restart(1, None, &none(), &mut m);
        assert!(matches!(m[..], [(_, RecoveryMsg::Rejoin { inc: 1 })]));
        assert_eq!(
            lo.restart_log()[0].path,
            RestartPath::Blank {
                reason: BlankReason::Missing
            }
        );
    }

    #[test]
    fn refuted_resume_degrades_to_the_rejoin_handshake() {
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(ekbd_journal::JournalHandle::in_memory());
        run_session(&mut hi, &mut lo);
        // Both endpoints crash. hi restarts blank first, so lo's journaled
        // view of hi's incarnation (0) is out of date and hi must refute
        // the resume.
        let mut hi_rejoin = Vec::new();
        hi.restart(1, None, &none(), &mut hi_rejoin);
        let mut resume = Vec::new();
        lo.restart(1, None, &none(), &mut resume);
        let answer = deliver(&mut hi, p(1), &resume, &none());
        assert!(
            matches!(answer[..], [(_, RecoveryMsg::RejoinAck { .. })]),
            "a refuted resume is answered with an authoritative RejoinAck: {answer:?}"
        );
        deliver(&mut lo, p(0), &answer, &none());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(lo.stats().fast_resumes, 0);
        assert_eq!(lo.stats().resyncs, 1);
        assert_eq!(
            lo.restart_log()[0].path,
            RestartPath::Journal {
                resumed: 0,
                rejoined: 1,
                stale: 0
            }
        );
        // Finish hi's own rejoin so both sides are synced, then check the
        // edge invariant.
        let acks = deliver(&mut lo, p(0), &hi_rejoin, &none());
        deliver(&mut hi, p(1), &acks, &none());
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn stale_snapshot_fails_the_consistency_check_and_falls_back() {
        use ekbd_journal::{FaultyJournal, JournalHandle, StorageFault};
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(JournalHandle::new(FaultyJournal::new(
            StorageFault::StaleSnapshot,
            3,
        )));
        run_session(&mut hi, &mut lo);
        // Pad with sendless commits until the epoch-deep rollback lands
        // exactly on the request-step commit: the newest seq hi ever saw
        // stamped (so the sequence comparison cannot refute it), yet it
        // predates the fork's arrival. The replayed holdings (no fork, no
        // token — both were in flight) cannot be complementary to hi's
        // (no fork, token): only the consistency check catches it, and
        // the resumer must re-rejoin.
        while lo.commit_seq() < ekbd_journal::STALE_EPOCH as u64 + 3 {
            lo.handle(DiningInput::SuspicionChange, &none(), &mut Vec::new());
        }
        let mut resume = Vec::new();
        lo.restart(1, None, &none(), &mut resume);
        assert!(matches!(
            resume[..],
            [(_, RecoveryMsg::JournalResume { .. })]
        ));
        let acks = deliver(&mut hi, p(1), &resume, &none());
        let fallback = deliver(&mut lo, p(0), &acks, &none());
        assert!(
            matches!(fallback[..], [(_, RecoveryMsg::Rejoin { inc: 1 })]),
            "inconsistent ResumeAck falls back per-edge: {fallback:?}"
        );
        assert_eq!(lo.stats().fast_resumes, 0);
        let acks = deliver(&mut hi, p(1), &fallback, &none());
        deliver(&mut lo, p(0), &acks, &none());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(
            lo.restart_log()[0].path,
            RestartPath::Journal {
                resumed: 0,
                rejoined: 1,
                stale: 0
            }
        );
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn stale_resume_is_refuted_by_sequence_comparison() {
        use ekbd_journal::{FaultyJournal, JournalHandle, StorageFault};
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(JournalHandle::new(FaultyJournal::new(
            StorageFault::StaleSnapshot,
            3,
        )));
        run_session(&mut hi, &mut lo);
        // Pad until the journal is deep enough for the epoch-deep rollback
        // to serve a record at all, then let an audit round stamp hi with
        // the seq of lo's *latest* commit — so when the stale snapshot
        // ([`STALE_EPOCH`] commits behind) tries to resume, hi's watermark
        // refutes it outright, before any fork/token comparison.
        while lo.commit_seq() < ekbd_journal::STALE_EPOCH as u64 {
            lo.handle(DiningInput::SuspicionChange, &none(), &mut Vec::new());
        }
        let mut out = Vec::new();
        lo.audit(&none(), &mut out);
        deliver(&mut hi, p(1), &out, &none());
        let mut resume = Vec::new();
        lo.restart(1, None, &none(), &mut resume);
        assert!(matches!(
            resume[..],
            [(_, RecoveryMsg::JournalResume { .. })]
        ));
        let answer = deliver(&mut hi, p(1), &resume, &none());
        assert!(
            answer
                .iter()
                .any(|&(_, m)| matches!(m, RecoveryMsg::RejoinAck { stale: true, .. })),
            "the responder's seq watermark refutes the stale snapshot: {answer:?}"
        );
        deliver(&mut lo, p(0), &answer, &none());
        assert!(lo.edge_synced(p(0)));
        assert_eq!(lo.stats().fast_resumes, 0);
        assert_eq!(
            lo.restart_log()[0].path,
            RestartPath::Journal {
                resumed: 0,
                rejoined: 0,
                stale: 1
            },
            "the detection is recorded in the restart path"
        );
        assert_edge_canonical(&hi, &lo);
    }

    #[test]
    fn commit_seq_is_monotone_across_process_images_and_blank_fallbacks() {
        use ekbd_journal::{FaultyJournal, JournalHandle, StorageFault};
        // A fresh process image re-attaching the same store (the threaded
        // restart shape: all volatile state lost) recovers the sequence
        // floor from stable storage before its first commit.
        let handle = JournalHandle::in_memory();
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(handle.clone());
        run_session(&mut hi, &mut lo);
        let before = lo.commit_seq();
        assert!(before >= 4, "attach + one dining session commit");
        let lo2 = RecoverableDining::new(p(1), 0, [(p(0), 1)]).with_journal(handle);
        assert_eq!(
            lo2.commit_seq(),
            before + 1,
            "floor recovered from storage, attach commit on top"
        );

        // Even when every retained record is undecodable and the restart
        // degrades to the blank path, the floor scan keeps the counter
        // monotone — a reused seq would poison peers' watermarks.
        let handle = JournalHandle::new(FaultyJournal::new(StorageFault::BitRot, 0x5EED));
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(handle.clone());
        run_session(&mut hi, &mut lo);
        let before = lo.commit_seq();
        let mut lo2 = RecoverableDining::new(p(1), 0, [(p(0), 1)]).with_journal(handle);
        let mut m = Vec::new();
        lo2.restart(1, None, &none(), &mut m);
        assert_eq!(
            lo2.restart_log()[0].path,
            RestartPath::Blank {
                reason: BlankReason::Corrupt
            }
        );
        assert!(
            lo2.commit_seq() > before,
            "blank fallback never reuses a sequence number"
        );
    }

    #[test]
    fn corrupted_journaled_restart_still_converges() {
        let (mut hi, mut lo) = pair();
        lo = lo.with_journal(ekbd_journal::JournalHandle::in_memory());
        run_session(&mut hi, &mut lo);
        for entropy in [0x1u64, 0xDEAD_BEEF, 0xFEED_FACE] {
            let mut m = Vec::new();
            let inc = lo.incarnation() + 1;
            lo.restart(inc, Some(entropy), &none(), &mut m);
            let answer = deliver(&mut hi, p(1), &m, &none());
            let follow = deliver(&mut lo, p(0), &answer, &none());
            let answer = deliver(&mut hi, p(1), &follow, &none());
            deliver(&mut lo, p(0), &answer, &none());
            assert!(lo.edge_synced(p(0)), "entropy {entropy:#x}");
            assert_edge_canonical(&hi, &lo);
        }
    }

    #[test]
    fn unsynced_edges_carry_no_dining_traffic() {
        // The partition-tolerance invariant: between a restart and the
        // peer's answer (which a partition can delay arbitrarily), the
        // edge carries recovery handshakes only — never wrapped Algorithm
        // 1 messages.
        for journaled in [false, true] {
            let (_, mut lo) = pair();
            if journaled {
                lo = lo.with_journal(ekbd_journal::JournalHandle::in_memory());
                let mut hi = pair().0;
                run_session(&mut hi, &mut lo);
            }
            let mut sends = Vec::new();
            let inc = lo.incarnation() + 1;
            lo.restart(inc, None, &none(), &mut sends);
            lo.handle(DiningInput::Hungry, &none(), &mut sends);
            for _ in 0..3 {
                lo.audit(&none(), &mut sends);
            }
            assert!(
                !sends
                    .iter()
                    .any(|(_, m)| matches!(m, RecoveryMsg::Dining { .. })),
                "suppressed edge leaked dining traffic (journaled={journaled}): {sends:?}"
            );
            assert!(lo.stats().suppressed > 0, "suppression was counted");
            if journaled {
                assert!(
                    sends
                        .iter()
                        .any(|(_, m)| matches!(m, RecoveryMsg::JournalResume { .. })),
                    "audit keeps retrying the journal fast path"
                );
            }
        }
    }

    // ----- dynamic membership -------------------------------------------

    /// Shuttles one complete session for `a` against `b`, leaving the fork
    /// at `a` (works from any canonical thinking/thinking edge state).
    fn eat_once(a: &mut RecoverableDining, b: &mut RecoverableDining) {
        let mut m = Vec::new();
        a.handle(DiningInput::Hungry, &none(), &mut m);
        let m = deliver(b, a.id(), &m, &none());
        let m = deliver(a, b.id(), &m, &none());
        let m = deliver(b, a.id(), &m, &none());
        deliver(a, b.id(), &m, &none());
        assert_eq!(a.state(), DinerState::Eating);
        let mut m = Vec::new();
        a.handle(DiningInput::DoneEating, &none(), &mut m);
        deliver(b, a.id(), &m, &none());
        assert!(a.holds_fork(b.id()), "the meal left the fork at {}", a.id());
    }

    #[test]
    fn join_reuses_the_rejoin_handshake() {
        // a (color 0) starts alone; b (color 1) joins at runtime. The
        // membership notice lands first, then b's Rejoin re-canonicalizes.
        let mut a = RecoverableDining::new(p(0), 0, []);
        let mut m = Vec::new();
        a.add_peer(p(1), 1, &none(), &mut m);
        assert!(m.is_empty(), "provisional edge sends nothing");
        assert!(!a.holds_fork(p(1)) && a.holds_token(p(1)), "canonical");
        let mut b = RecoverableDining::new(p(1), 1, [(p(0), 0)]);
        let mut hello = Vec::new();
        b.join(1, &none(), &mut hello);
        assert_eq!(hello, vec![(p(0), RecoveryMsg::Rejoin { inc: 1 })]);
        assert!(!b.edge_synced(p(0)), "joiner boots unsynced");
        let acks = deliver(&mut a, p(1), &hello, &none());
        deliver(&mut b, p(0), &acks, &none());
        assert!(b.edge_synced(p(0)));
        assert_edge_canonical(&a, &b);
        // The joiner is a full participant: it can eat.
        eat_once(&mut b, &mut a);
    }

    #[test]
    fn joiner_hello_racing_its_notice_is_recovered_by_the_audit_retry() {
        let mut a = RecoverableDining::new(p(0), 0, []);
        let mut b = RecoverableDining::new(p(1), 1, [(p(0), 0)]);
        let mut hello = Vec::new();
        b.join(1, &none(), &mut hello);
        // The Rejoin arrives before a's PeerJoined notice: dropped.
        let before = a.stats().stale_dropped;
        let out = deliver(&mut a, p(1), &hello, &none());
        assert!(out.is_empty());
        assert_eq!(a.stats().stale_dropped, before + 1);
        // Notice lands; b's audit timer retries the handshake.
        a.add_peer(p(1), 1, &none(), &mut Vec::new());
        let mut retry = Vec::new();
        b.audit(&none(), &mut retry);
        let acks = deliver(&mut a, p(1), &retry, &none());
        deliver(&mut b, p(0), &acks, &none());
        assert!(b.edge_synced(p(0)));
        assert_edge_canonical(&a, &b);
    }

    #[test]
    fn two_joiners_growing_the_same_edge_converge_without_a_survivor() {
        // Both endpoints joined at runtime (neither is an established
        // member), so each one's add_peer initiates a hello. The crossed
        // handshakes must converge to one synced canonical edge — the
        // regression here is a both-sides-provisional edge whose
        // incarnation stamps never match (a permanent wedge).
        let mut a = RecoverableDining::new(p(0), 0, []);
        let mut b = RecoverableDining::new(p(1), 1, []);
        a.join(1, &none(), &mut Vec::new());
        b.join(1, &none(), &mut Vec::new());
        let mut ha = Vec::new();
        a.add_peer(p(1), 1, &none(), &mut ha);
        assert!(
            ha.iter()
                .any(|&(q, m)| q == p(1) && matches!(m, RecoveryMsg::Rejoin { inc: 1 })),
            "a joiner's add_peer sends the hello itself: {ha:?}"
        );
        let mut hb = Vec::new();
        b.add_peer(p(0), 0, &none(), &mut hb);
        // Crossed delivery: each hello reaches the other side after both
        // edges exist.
        let ra = deliver(&mut b, p(0), &ha, &none());
        let rb = deliver(&mut a, p(1), &hb, &none());
        let x = deliver(&mut a, p(1), &ra, &none());
        let y = deliver(&mut b, p(0), &rb, &none());
        deliver(&mut b, p(0), &x, &none());
        deliver(&mut a, p(1), &y, &none());
        assert!(a.edge_synced(p(1)) && b.edge_synced(p(0)));
        assert_edge_canonical(&a, &b);
        eat_once(&mut b, &mut a);
    }

    #[test]
    fn add_peer_to_an_eating_process_cannot_break_exclusion() {
        // lo eats (suspecting hi) when a new higher-color neighbor joins.
        // Canonically the joiner would own the fork — but lo's RejoinAck is
        // authoritative and an eating responder keeps it.
        let (_, mut lo) = pair();
        lo.handle(DiningInput::Hungry, &sus(&[0]), &mut Vec::new());
        assert_eq!(lo.state(), DinerState::Eating);
        lo.add_peer(p(2), 2, &sus(&[0]), &mut Vec::new());
        let mut joiner = RecoverableDining::new(p(2), 2, [(p(1), 0)]);
        let mut hello = Vec::new();
        joiner.join(1, &none(), &mut hello);
        let acks = deliver(&mut lo, p(2), &hello, &sus(&[0]));
        deliver(&mut joiner, p(1), &acks, &none());
        assert_eq!(lo.state(), DinerState::Eating, "meal undisturbed");
        assert!(lo.holds_fork(p(2)), "eating responder kept the new fork");
        assert!(!joiner.holds_fork(p(1)));
        assert_edge_canonical(&lo, &joiner);
    }

    #[test]
    fn retire_discharges_a_deferred_fork_and_a_deferred_ack() {
        // hi eats; lo is hungry inside the doorway with its request
        // deferred at hi (token+fork co-located there), and a second ping
        // from lo is deferred too. hi retires instead of exiting: both
        // obligations must be discharged so lo eats without any notice.
        let (mut hi, mut lo) = pair();
        hi.handle(DiningInput::Hungry, &sus(&[1]), &mut Vec::new());
        assert_eq!(hi.state(), DinerState::Eating);
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        let m = deliver(&mut hi, p(1), &m, &none()); // ping deferred at hi
        assert!(m.is_empty());
        let mut drain = Vec::new();
        hi.retire(&mut drain);
        assert!(
            drain.iter().any(|&(_, m)| matches!(
                m,
                RecoveryMsg::Dining {
                    msg: DiningMsg::Ack,
                    ..
                }
            )),
            "deferred ping acked on retirement: {drain:?}"
        );
        assert!(!hi.holds_fork(p(1)), "the fork left with the drain");
        let m = deliver(&mut lo, p(0), &drain, &none());
        let m = deliver(&mut hi, p(1), &m, &none()); // lo's fork request
        deliver(&mut lo, p(0), &m, &none());
        assert_eq!(lo.state(), DinerState::Eating, "drain unblocked lo");
    }

    #[test]
    fn remove_peer_unblocks_a_waiting_survivor() {
        // lo is hungry, waiting on hi's ack that will never come (hi left;
        // every message was lost). The graceful-leave notice tears the edge
        // down and lo eats with its remaining (empty) guard set.
        let (_, mut lo) = pair();
        lo.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        assert_eq!(lo.state(), DinerState::Hungry);
        lo.remove_peer(p(0), &none(), &mut Vec::new());
        assert_eq!(lo.state(), DinerState::Eating);
        assert!(lo.inner().neighbors().is_empty());
    }

    #[test]
    fn messages_from_a_removed_peer_are_dropped_not_fatal() {
        let (mut hi, mut lo) = pair();
        let mut m = Vec::new();
        hi.handle(DiningInput::Hungry, &none(), &mut m); // ping in flight
        lo.remove_peer(p(0), &none(), &mut Vec::new());
        let before = lo.stats().stale_dropped;
        let out = deliver(&mut lo, p(0), &m, &none());
        assert!(out.is_empty());
        assert_eq!(lo.stats().stale_dropped, before + 1);
    }

    #[test]
    fn departed_neighbor_counts_as_suspected_under_a_silent_oracle() {
        // The wait-freedom crux of churn tolerance: hi crash-stops out
        // holding the fork, the oracle never suspects anyone, and lo must
        // still eat.
        let (mut hi, mut lo) = pair();
        eat_once(&mut hi, &mut lo); // primes edge activity on both sides
        assert!(hi.holds_fork(p(1)));
        lo.peer_departed(p(0), &none(), &mut Vec::new());
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        assert_eq!(
            lo.state(),
            DinerState::Eating,
            "departed ⇒ suspected substitutes for the missing ack and fork"
        );
        lo.handle(DiningInput::DoneEating, &none(), &mut Vec::new());
    }

    #[test]
    fn audit_remints_a_fork_stranded_at_a_departed_neighbor() {
        // The satellite regression: hi departs crash-stop holding the
        // fork, with recent traffic on the edge (the busy-edge hysteresis
        // trap — fresh activity used to reset the missing-fork strikes,
        // and a departed peer sends no audits to accumulate them). The
        // local audit must remint the fork after the normal strike policy.
        let (mut hi, mut lo) = pair();
        eat_once(&mut hi, &mut lo);
        assert!(hi.holds_fork(p(1)) && lo.holds_token(p(0)));
        lo.peer_departed(p(0), &none(), &mut Vec::new());
        // lo goes hungry and eats via the departed substitution, spending
        // its token on a request into the void — more edge activity.
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        assert_eq!(lo.state(), DinerState::Eating);
        lo.handle(DiningInput::DoneEating, &none(), &mut Vec::new());
        assert!(!lo.holds_fork(p(0)) && !lo.holds_token(p(0)));
        // One audit round is one strike — not enough (hysteresis intact).
        lo.audit(&none(), &mut Vec::new());
        assert!(!lo.holds_fork(p(0)), "one strike must not remint");
        lo.audit(&none(), &mut Vec::new());
        assert!(
            lo.holds_fork(p(0)),
            "the stranded fork is reminted at the strike threshold"
        );
        assert!(
            !lo.holds_token(p(0)),
            "the token is never reminted on a dead edge"
        );
        assert!(lo.stats().repairs >= 1);
        // With the fork home again, further audits are quiet: no discharge
        // loop throwing the fork back into the void.
        let mut out = Vec::new();
        lo.audit(&none(), &mut out);
        assert!(
            !out.iter().any(|(_, m)| matches!(
                m,
                RecoveryMsg::Dining {
                    msg: DiningMsg::Fork,
                    ..
                }
            )),
            "no fork discharged to the dead peer: {out:?}"
        );
        assert!(lo.holds_fork(p(0)));
    }

    #[test]
    fn departed_edge_with_colocated_token_is_not_drained_into_the_void() {
        // lo keeps its token (never goes hungry). After the remint it
        // holds token+fork outside the doorway — exactly the co-location
        // the local audit normally discharges. On a departed edge that
        // discharge would destroy the fork forever; the eligibility filter
        // must prevent it.
        let (mut hi, mut lo) = pair();
        eat_once(&mut hi, &mut lo);
        lo.peer_departed(p(0), &none(), &mut Vec::new());
        for _ in 0..DEFAULT_STRIKES + 2 {
            let mut out = Vec::new();
            lo.audit(&none(), &mut out);
            assert!(
                !out.iter().any(|(_, m)| matches!(
                    m,
                    RecoveryMsg::Dining {
                        msg: DiningMsg::Fork,
                        ..
                    }
                )),
                "departed edge excluded from the co-location discharge"
            );
        }
        assert!(lo.holds_fork(p(0)) && lo.holds_token(p(0)));
    }

    #[test]
    fn departed_mark_survives_a_restart_of_the_survivor() {
        let (mut hi, mut lo) = pair();
        eat_once(&mut hi, &mut lo);
        lo.peer_departed(p(0), &none(), &mut Vec::new());
        let mut m = Vec::new();
        lo.restart(1, None, &none(), &mut m);
        assert!(
            m.is_empty(),
            "no handshake with the permanently departed: {m:?}"
        );
        assert!(lo.peer_is_departed(p(0)));
        assert!(lo.edge_synced(p(0)), "dead edge is self-authoritative");
        // The reclaim still works in the new incarnation.
        for _ in 0..DEFAULT_STRIKES {
            lo.audit(&none(), &mut Vec::new());
        }
        assert!(lo.holds_fork(p(0)));
    }

    #[test]
    fn recovered_process_can_eat_again() {
        let (mut hi, mut lo) = pair();
        // lo restarts, resyncs, goes hungry, and completes a full session.
        let mut rejoins = Vec::new();
        lo.restart(1, None, &none(), &mut rejoins);
        let acks = deliver(&mut hi, p(1), &rejoins, &none());
        deliver(&mut lo, p(0), &acks, &none());
        let mut m = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m);
        let m = deliver(&mut hi, p(1), &m, &none());
        let m = deliver(&mut lo, p(0), &m, &none());
        let m = deliver(&mut hi, p(1), &m, &none());
        deliver(&mut lo, p(0), &m, &none());
        assert_eq!(lo.state(), DinerState::Eating, "readmitted");
        assert!(m.is_empty() || lo.state() == DinerState::Eating);
    }
}
