//! Algorithm 1 of Song & Pike, *"Eventually k-bounded Wait-Free Distributed
//! Daemons"* (DSN 2007): wait-free dining philosophers under eventual weak
//! exclusion (◇WX) with eventual 2-bounded waiting (◇2-BW), driven by the
//! locally scope-restricted eventually perfect failure detector ◇P₁.
//!
//! # The problem
//!
//! A *distributed daemon* schedules a set of processes so that no two
//! neighbors in a conflict graph execute conflicting actions simultaneously.
//! Daemons are classically implemented as dining-philosophers solutions, but
//! in purely asynchronous systems subject to crash faults, wait-free
//! scheduling is unsolvable: a crashed neighbor can starve a correct hungry
//! diner forever. The paper shows ◇P is sufficient (and, with its companion
//! result, necessary) to solve wait-free dining under *eventual* weak
//! exclusion — the safety net that makes crash-tolerant scheduling of
//! self-stabilizing protocols possible.
//!
//! # The algorithm
//!
//! Algorithm 1 combines two mechanisms, both crash-hardened by ◇P₁:
//!
//! * **Forks for safety.** Each conflict-graph edge carries a unique fork;
//!   eating requires every shared fork. Competition is resolved by static
//!   priorities (node colors); a token per edge regulates fork re-requests.
//!   A hungry process may *skip* a fork whose holder it suspects — the only
//!   way safety can be (finitely often) violated, and exactly what ◇WX
//!   permits.
//! * **An asynchronous doorway for fairness.** Before competing for forks, a
//!   hungry process must collect one ack per neighbor (or suspect it). A
//!   process inside the doorway defers acks, and — the paper's refinement of
//!   Choy & Singh's doorway — a hungry process grants at most **one** ack
//!   per neighbor per hungry session, which yields eventual *2*-bounded
//!   waiting.
//!
//! # This crate
//!
//! * [`DiningProcess`] — the per-process state machine, a line-by-line
//!   implementation of Algorithm 1's Actions 1–10. It is runtime-agnostic:
//!   events in, messages out, no clocks, no I/O.
//! * [`DiningAlgorithm`] — the trait that lets baselines (crash-oblivious
//!   doorway, naive priority dining, perfect-oracle dining) plug into the
//!   same harnesses and metrics.
//! * [`RecoverableDining`] — Algorithm 1 hardened for the crash-*recovery*
//!   fault model: incarnation-stamped messages, a per-edge rejoin handshake
//!   re-negotiating fork/token ownership after a restart, and a periodic
//!   audit-and-repair pass that makes the daemon state self-stabilizing
//!   under transient bit flips.
//! * [`daemon`] — the daemon-facing view: how a scheduled client (e.g. a
//!   self-stabilizing protocol) consumes eat-slots.
//!
//! # Example
//!
//! Two neighbors contending for one fork, messages shuttled by hand:
//!
//! ```
//! use ekbd_dining::{DiningProcess, DiningAlgorithm, DiningInput, DinerState};
//! use ekbd_graph::ProcessId;
//! use std::collections::BTreeSet;
//!
//! let (a, b) = (ProcessId(0), ProcessId(1));
//! // Colors 1 > 0: `a` has priority; fork starts at `a`, token at `b`.
//! let mut pa = DiningProcess::new(a, 1, [(b, 0)]);
//! let mut pb = DiningProcess::new(b, 0, [(a, 1)]);
//! let nobody = BTreeSet::new(); // no suspicions
//!
//! // `a` becomes hungry and sends a ping to `b`.
//! let mut out = Vec::new();
//! pa.handle(DiningInput::Hungry, &nobody, &mut out);
//! assert_eq!(pa.state(), DinerState::Hungry);
//!
//! // Shuttle messages until quiescence; `a` ends up eating.
//! let mut queues = vec![out];
//! while let Some(batch) = queues.pop() {
//!     for (to, msg) in batch {
//!         let mut replies = Vec::new();
//!         let (proc_, from) = if to == a { (&mut pa, b) } else { (&mut pb, a) };
//!         proc_.handle(DiningInput::Message { from, msg }, &nobody, &mut replies);
//!         if !replies.is_empty() { queues.push(replies); }
//!     }
//! }
//! assert_eq!(pa.state(), DinerState::Eating);
//! assert_eq!(pb.state(), DinerState::Thinking);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budgeted;
pub mod daemon;
mod msg;
mod process;
mod recovery;
mod traits;

pub use budgeted::BudgetedDiningProcess;
pub use msg::DiningMsg;
pub use process::DiningProcess;
pub use recovery::{
    BlankReason, RecoverableDining, RecoveryMsg, RecoveryStats, RestartEvent, RestartPath,
    DEFAULT_STRIKES,
};
pub use traits::{DinerState, DiningAlgorithm, DiningInput, DiningObs};

pub use ekbd_detector::SuspicionView;
pub use ekbd_graph::ProcessId;
