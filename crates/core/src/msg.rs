use ekbd_graph::coloring::Color;

/// Wire messages of Algorithm 1.
///
/// Exactly four message types exist (§7): `ping`/`ack` implement the revised
/// doorway protocol, `request`/`fork` the fork-collection scheme. Between any
/// neighbor pair at most one fork, one token (request), and one ping-or-ack
/// per direction-initiator can be in transit, which bounds every channel at
/// four messages (claim S2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiningMsg {
    /// Doorway request: "may I enter?" (Action 2).
    Ping,
    /// Doorway grant (Actions 3 and 10).
    Ack,
    /// Fork request carrying the requester's static color; sending it
    /// transfers the edge's token to the receiver (Action 6).
    Request {
        /// The requester's color (priority).
        color: Color,
    },
    /// The edge's fork (Actions 7 and 10).
    Fork,
}

impl DiningMsg {
    /// Payload size in bits, per the paper's §7 accounting: `ping`, `ack`
    /// and `fork` carry only the sender id (supplied by the transport);
    /// `request` additionally encodes the color, which needs `⌈log₂ n⌉`
    /// bits for an n-process system (colors are bounded by δ + 1 ≤ n).
    pub fn payload_bits(&self, n: usize) -> usize {
        match self {
            DiningMsg::Request { .. } => {
                // ⌈log₂ n⌉ = number of bits needed to index n values.
                (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_payload_is_logarithmic() {
        let m = DiningMsg::Request { color: 3 };
        assert_eq!(m.payload_bits(2), 1);
        assert_eq!(m.payload_bits(16), 4);
        assert_eq!(m.payload_bits(17), 5);
        assert_eq!(m.payload_bits(1024), 10);
    }

    #[test]
    fn control_messages_carry_no_payload() {
        for m in [DiningMsg::Ping, DiningMsg::Ack, DiningMsg::Fork] {
            assert_eq!(m.payload_bits(1024), 0);
        }
    }
}
