use crate::recovery::{RecoveryStats, RestartEvent};
use ekbd_detector::SuspicionView;
use ekbd_graph::ProcessId;
use std::fmt;

/// The dining phase of a process (Song & Pike §2): *thinking* (executing
/// independently), *hungry* (requesting shared resources), or *eating*
/// (inside the critical section).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DinerState {
    /// Executing independently; may become hungry at any time.
    Thinking,
    /// Requesting shared resources; a *hungry session* lasts from becoming
    /// hungry until scheduled to eat.
    Hungry,
    /// Using shared resources in the critical section; always finite for
    /// correct processes.
    Eating,
}

impl fmt::Display for DinerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DinerState::Thinking => "thinking",
            DinerState::Hungry => "hungry",
            DinerState::Eating => "eating",
        };
        f.write_str(s)
    }
}

/// Inputs to a [`DiningAlgorithm`].
///
/// `Hungry` and `DoneEating` are the environment actions (Action 1 and the
/// trigger of Action 10 in Algorithm 1); the rest is transport and oracle
/// plumbing.
#[derive(Clone, Debug)]
pub enum DiningInput<M> {
    /// The application asks to be scheduled (legal only while thinking).
    Hungry,
    /// The application finished its critical section (legal only while
    /// eating). Correct processes always eventually issue this.
    DoneEating,
    /// A dining-layer message arrived on the FIFO channel `from → self`.
    Message {
        /// The sender.
        from: ProcessId,
        /// The payload.
        msg: M,
    },
    /// The local failure-detector output changed; oracle-guarded actions
    /// must be re-evaluated.
    SuspicionChange,
}

/// Scheduling-relevant transitions, emitted by hosts for the metrics layer.
///
/// Hosts derive these by diffing [`DiningAlgorithm::state`] and
/// [`DiningAlgorithm::inside_doorway`] around each [`DiningAlgorithm::handle`]
/// call, so algorithms cannot forget to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiningObs {
    /// Transitioned thinking → hungry.
    BecameHungry,
    /// Entered the doorway (Algorithm 1, Action 5).
    EnteredDoorway,
    /// Transitioned hungry → eating.
    StartedEating,
    /// Transitioned eating → thinking.
    StoppedEating,
    /// Left the doorway (Algorithm 1, Action 10).
    ExitedDoorway,
}

/// A dining-philosophers algorithm as a pure, runtime-agnostic state
/// machine.
///
/// Implementations receive [`DiningInput`]s, may consult the local failure
/// detector through the supplied [`SuspicionView`], and append outgoing
/// messages to `sends`. All the algorithms in this workspace — Algorithm 1
/// ([`DiningProcess`](crate::DiningProcess)) and every baseline — implement
/// this trait, so harnesses, metrics, examples, and benchmarks are shared.
pub trait DiningAlgorithm {
    /// The algorithm's wire-message type.
    type Msg: Clone + fmt::Debug;

    /// This process's id.
    fn id(&self) -> ProcessId;

    /// Handles one input, appending outgoing `(destination, message)` pairs
    /// to `sends`.
    fn handle(
        &mut self,
        input: DiningInput<Self::Msg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    );

    /// Current dining phase.
    fn state(&self) -> DinerState;

    /// Whether the process is inside the doorway (always `false` for
    /// algorithms without one).
    fn inside_doorway(&self) -> bool {
        false
    }

    /// Size of the per-process protocol state in bits, as accounted in the
    /// paper's §7 space analysis (`log₂(δ) + 6δ + c` for Algorithm 1).
    fn state_bits(&self) -> usize;

    /// Informs the algorithm of the host's current time (simulation tick
    /// or elapsed milliseconds) before an input is handled. Purely
    /// observational — algorithms that journal use it to stamp records
    /// with a commit-time tick; the default is a no-op.
    fn note_now(&mut self, now: u64) {
        let _ = now;
    }

    // ----- crash-recovery extension (default: crash-stop, no-ops) -------

    /// Whether this algorithm implements the crash-recovery protocol
    /// (rejoin handshake + periodic audit). Hosts only arm the audit timer
    /// and deliver restart/corruption events when this returns `true`.
    fn supports_recovery(&self) -> bool {
        false
    }

    /// The process restarted after a crash with a fresh `incarnation`
    /// (1-based restart count, the one counter kept in stable storage).
    /// Volatile dining state was lost; `corruption` carries an entropy seed
    /// when the reboot additionally scrambled the rebuilt state. The
    /// implementation re-initializes itself and appends any rejoin traffic
    /// to `sends`.
    fn restart(
        &mut self,
        incarnation: u64,
        corruption: Option<u64>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (incarnation, corruption, suspicion, sends);
    }

    /// A transient fault flipped state bits of this (live) process;
    /// `entropy` seeds the deterministic choice of which bits.
    fn inject_corruption(
        &mut self,
        entropy: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (entropy, suspicion, sends);
    }

    /// One round of the periodic state audit: retry unfinished rejoins,
    /// repair locally detectable damage, and exchange per-edge fork/token
    /// snapshots with live peers.
    fn audit(&mut self, suspicion: &dyn SuspicionView, sends: &mut Vec<(ProcessId, Self::Msg)>) {
        let _ = (suspicion, sends);
    }

    /// Recovery-layer counters, when the algorithm keeps them (`None` for
    /// crash-stop algorithms).
    fn recovery_stats(&self) -> Option<RecoveryStats> {
        None
    }

    // ----- dynamic-membership extension (default: fixed graph, no-ops) --

    /// Whether this algorithm supports runtime membership changes (joining
    /// the system mid-run, neighbor insertion/teardown). Hosts only deliver
    /// join/leave and peer-change events when this returns `true`.
    fn supports_membership(&self) -> bool {
        false
    }

    /// The (initially absent) process boots into the system at runtime
    /// with a fresh `incarnation` (≥ 1; shares the restart counter with
    /// [`DiningAlgorithm::restart`]). The implementation initializes its
    /// edges unsynced and appends introduction traffic (the rejoin
    /// handshake) to `sends`.
    fn join(
        &mut self,
        incarnation: u64,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (incarnation, suspicion, sends);
    }

    /// The process is leaving the system gracefully; this is the last
    /// input it will ever handle. The implementation discharges held
    /// resources (forks owed to waiting neighbors, deferred acks) into
    /// `sends` so no survivor starves waiting on the departed node.
    fn retire(&mut self, sends: &mut Vec<(ProcessId, Self::Msg)>) {
        let _ = sends;
    }

    /// A new neighbor `q` with priority `color` joined the system: grow
    /// the conflict edge `self ↔ q`. The edge boots with canonical
    /// fork/token placement by color order; the joiner's rejoin handshake
    /// then establishes the live session.
    fn add_peer(
        &mut self,
        q: ProcessId,
        color: u32,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (q, color, suspicion, sends);
    }

    /// Neighbor `q` left the system after draining gracefully: tear the
    /// conflict edge down completely and re-evaluate guards that no longer
    /// wait on it.
    fn remove_peer(
        &mut self,
        q: ProcessId,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (q, suspicion, sends);
    }

    /// Neighbor `q` crash-stopped out of the system without draining: mark
    /// the edge departed so the audit path can reclaim whatever `q` held
    /// (a fork leaked by a dead neighbor must be reminted, not waited on).
    fn peer_departed(
        &mut self,
        q: ProcessId,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, Self::Msg)>,
    ) {
        let _ = (q, suspicion, sends);
    }

    /// Per-restart path log — whether each restart replayed its journal
    /// (and how its edges split between the fast resume and the rejoin
    /// fallback) or rebooted blank. `None` for algorithms without one.
    fn restart_log(&self) -> Option<Vec<RestartEvent>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diner_state_displays() {
        assert_eq!(DinerState::Thinking.to_string(), "thinking");
        assert_eq!(DinerState::Hungry.to_string(), "hungry");
        assert_eq!(DinerState::Eating.to_string(), "eating");
    }
}
