use crate::msg::DiningMsg;
use crate::traits::{DinerState, DiningAlgorithm, DiningInput};
use ekbd_detector::SuspicionView;
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};

/// Per-neighbor boolean variables of Algorithm 1, bit-packed so that the
/// paper's space bound (`6δ` bits of neighbor state, §7) is literal.
mod flag {
    /// `pinged_ij` — a ping request to `j` is pending (sent, deferred by
    /// `j`, or its ack is in flight).
    pub const PINGED: u8 = 1 << 0;
    /// `ack_ij` — an ack from `j` was received during the current hungry
    /// session, while outside the doorway.
    pub const ACK: u8 = 1 << 1;
    /// `replied_ij` — an ack was sent to `j` during the current hungry
    /// session of `self` (the ◇2-BW mechanism).
    pub const REPLIED: u8 = 1 << 2;
    /// `deferred_ij` — a ping from `j` is being deferred until after eating.
    pub const DEFERRED: u8 = 1 << 3;
    /// `fork_ij` — `self` holds the fork shared with `j`.
    pub const FORK: u8 = 1 << 4;
    /// `token_ij` — `self` holds the edge's request token.
    pub const TOKEN: u8 = 1 << 5;
}

/// The per-process state machine of Algorithm 1.
///
/// All ten actions of the paper are implemented verbatim:
///
/// | Action | Trigger here | Paper lines |
/// |---|---|---|
/// | 1 — become hungry | [`DiningInput::Hungry`] | 1–2 |
/// | 2 — request acks | internal, evaluated after every event | 3–5 |
/// | 3 — receive ping | [`DiningInput::Message`] (`Ping`) | 6–10 |
/// | 4 — receive ack | [`DiningInput::Message`] (`Ack`) | 11–13 |
/// | 5 — enter doorway | internal | 14–17 |
/// | 6 — request forks | internal | 18–20 |
/// | 7 — receive request | [`DiningInput::Message`] (`Request`) | 21–24 |
/// | 8 — receive fork | [`DiningInput::Message`] (`Fork`) | 25–26 |
/// | 9 — eat | internal | 27–28 |
/// | 10 — exit | [`DiningInput::DoneEating`] | 29–35 |
///
/// Internal actions (2, 5, 6, 9) are guarded commands; after handling any
/// event the machine evaluates them in the enabling order 2 → 5 → 6 → 9,
/// which is a legal weakly-fair schedule (an action enabled after an event
/// fires before the next event is handled).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DiningProcess {
    id: ProcessId,
    color: Color,
    /// Sorted neighbor ids; index into `vars` by position.
    neighbors: Vec<ProcessId>,
    state: DinerState,
    inside: bool,
    vars: Vec<u8>,
    /// Tolerate lemma violations (crash-recovery / corruption hardening).
    hardened: bool,
}

impl DiningProcess {
    /// Creates the process `id` with static priority `color` and the given
    /// neighbors (each with *its* color, used only for the initial fork and
    /// token placement: fork at the higher-color endpoint, token at the
    /// lower, §3.1).
    ///
    /// # Panics
    ///
    /// Panics if a neighbor shares `color` (the coloring must be proper) or
    /// if a neighbor is `id` itself.
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut pairs: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut vars = Vec::with_capacity(pairs.len());
        for (q, qcolor) in pairs {
            assert!(q != id, "a process is not its own neighbor");
            assert!(
                qcolor != color,
                "neighbors {id} and {q} share color {color}: coloring must be proper"
            );
            ids.push(q);
            vars.push(if color > qcolor {
                flag::FORK
            } else {
                flag::TOKEN
            });
        }
        DiningProcess {
            id,
            color,
            neighbors: ids,
            state: DinerState::Thinking,
            inside: false,
            vars,
            hardened: false,
        }
    }

    /// Creates the process `id` from a conflict graph and a proper coloring
    /// (as produced by [`ekbd_graph::coloring`]).
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    /// This process's static priority.
    pub fn color(&self) -> Color {
        self.color
    }

    /// Sorted neighbor ids.
    pub fn neighbors(&self) -> &[ProcessId] {
        &self.neighbors
    }

    fn idx(&self, q: ProcessId) -> usize {
        self.neighbors
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id))
    }

    fn get(&self, j: usize, f: u8) -> bool {
        self.vars[j] & f != 0
    }

    fn set(&mut self, j: usize, f: u8, v: bool) {
        if v {
            self.vars[j] |= f;
        } else {
            self.vars[j] &= !f;
        }
    }

    /// Whether this process currently holds the fork shared with `q`.
    pub fn holds_fork(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::FORK)
    }

    /// Whether this process currently holds the token shared with `q`.
    pub fn holds_token(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::TOKEN)
    }

    /// Whether a ping to `q` is pending (Lemma 2.2 allows at most one).
    pub fn ping_pending(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::PINGED)
    }

    /// Whether this process is deferring a ping from `q`.
    pub fn deferring_ack(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::DEFERRED)
    }

    /// Whether this process has sent `q` an ack during its current hungry
    /// session (the ◇2-BW `replied` flag).
    pub fn replied_to(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::REPLIED)
    }

    // ----- receive actions ---------------------------------------------

    /// Action 3 (lines 6–10): decide whether to grant or defer a ping.
    fn on_ping(&mut self, from: usize, sends: &mut Vec<(ProcessId, DiningMsg)>) {
        if self.inside || self.get(from, flag::REPLIED) {
            self.set(from, flag::DEFERRED, true);
        } else {
            sends.push((self.neighbors[from], DiningMsg::Ack));
            self.set(from, flag::REPLIED, self.state == DinerState::Hungry);
        }
    }

    /// Action 4 (lines 11–13): record an ack (only useful while hungry and
    /// outside the doorway) and clear the pending-ping flag.
    fn on_ack(&mut self, from: usize) {
        let useful = self.state == DinerState::Hungry && !self.inside;
        self.set(from, flag::ACK, useful);
        self.set(from, flag::PINGED, false);
    }

    /// Action 7 (lines 21–24): receive a fork request; grant immediately if
    /// outside the doorway or hungry-with-lower-color, else defer.
    fn on_request(
        &mut self,
        from: usize,
        their_color: Color,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        debug_assert!(
            self.hardened || self.get(from, flag::FORK),
            "Lemma 1.1 violated: {} received a request from {} without holding the fork",
            self.id,
            self.neighbors[from]
        );
        self.set(from, flag::TOKEN, true);
        // A fork can only be granted if actually held — under the
        // crash-recovery fault model a stale request may arrive after the
        // edge was re-canonicalized with the fork on the requester's side.
        let grant = self.get(from, flag::FORK)
            && (!self.inside || (self.state == DinerState::Hungry && self.color < their_color));
        if grant {
            sends.push((self.neighbors[from], DiningMsg::Fork));
            self.set(from, flag::FORK, false);
        }
    }

    /// Action 8 (lines 25–26): receive a fork. A duplicate (possible only
    /// under state corruption or a stale post-rejoin grant) is absorbed:
    /// setting an already-set bit discards the surplus fork.
    fn on_fork(&mut self, from: usize) {
        debug_assert!(
            self.hardened || !self.get(from, flag::FORK),
            "Lemma 1.2 violated: duplicate fork between {} and {}",
            self.id,
            self.neighbors[from]
        );
        self.set(from, flag::FORK, true);
    }

    // ----- internal guarded commands -----------------------------------

    /// Action 2 (lines 3–5): while hungry and outside, ping every neighbor
    /// whose ack is missing and to whom no ping is pending.
    fn try_request_acks(&mut self, sends: &mut Vec<(ProcessId, DiningMsg)>) {
        if self.state != DinerState::Hungry || self.inside {
            return;
        }
        for j in 0..self.neighbors.len() {
            if !self.get(j, flag::PINGED) && !self.get(j, flag::ACK) {
                sends.push((self.neighbors[j], DiningMsg::Ping));
                self.set(j, flag::PINGED, true);
            }
        }
    }

    /// Action 5 (lines 14–17): enter the doorway once every neighbor has
    /// either acked or is suspected; reset `ack` and `replied`.
    fn try_enter_doorway(&mut self, suspicion: &dyn SuspicionView) {
        if self.state != DinerState::Hungry || self.inside {
            return;
        }
        let all = (0..self.neighbors.len())
            .all(|j| self.get(j, flag::ACK) || suspicion.suspects(self.neighbors[j]));
        if all {
            self.inside = true;
            for j in 0..self.neighbors.len() {
                self.set(j, flag::ACK, false);
                self.set(j, flag::REPLIED, false);
            }
        }
    }

    /// Action 6 (lines 18–20): while hungry inside the doorway, spend held
    /// tokens to request missing forks.
    fn try_request_forks(&mut self, sends: &mut Vec<(ProcessId, DiningMsg)>) {
        if self.state != DinerState::Hungry || !self.inside {
            return;
        }
        for j in 0..self.neighbors.len() {
            if self.get(j, flag::TOKEN) && !self.get(j, flag::FORK) {
                sends.push((self.neighbors[j], DiningMsg::Request { color: self.color }));
                self.set(j, flag::TOKEN, false);
            }
        }
    }

    /// Action 9 (lines 27–28): eat once every neighbor's fork is held or
    /// the neighbor is suspected.
    fn try_eat(&mut self, suspicion: &dyn SuspicionView) {
        if self.state != DinerState::Hungry || !self.inside {
            return;
        }
        let all = (0..self.neighbors.len())
            .all(|j| self.get(j, flag::FORK) || suspicion.suspects(self.neighbors[j]));
        if all {
            self.state = DinerState::Eating;
        }
    }

    /// Evaluates the internal guarded commands in enabling order.
    fn internal_actions(
        &mut self,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        self.try_request_acks(sends);
        self.try_enter_doorway(suspicion);
        self.try_request_forks(sends);
        self.try_eat(suspicion);
    }

    // ----- dynamic-membership support -----------------------------------

    /// Grows the conflict edge to a newly joined neighbor `q` with priority
    /// `qcolor`. The edge boots with the §3.1 initial placement (fork bit at
    /// the higher color, token at the lower); session flags start clear, so
    /// an in-flight hungry session of `self` simply extends its guard set.
    ///
    /// # Panics
    ///
    /// Panics if `q` is already a neighbor, is `id` itself, or shares
    /// `color` (the incremental recoloring must keep the coloring proper).
    pub fn add_neighbor(&mut self, q: ProcessId, qcolor: Color) {
        assert!(q != self.id, "a process is not its own neighbor");
        assert!(
            qcolor != self.color,
            "neighbors {} and {q} share color {}: coloring must be proper",
            self.id,
            self.color
        );
        let j = self
            .neighbors
            .binary_search(&q)
            .expect_err("already a neighbor");
        self.neighbors.insert(j, q);
        let placement = if self.color > qcolor {
            flag::FORK
        } else {
            flag::TOKEN
        };
        self.vars.insert(j, placement);
    }

    /// Tears down the conflict edge to the departed neighbor `q`, dropping
    /// whatever edge state (fork, token, deferrals) this side held. Guards
    /// that quantified over `q` must be re-evaluated by the caller — a
    /// hungry process may become able to enter the doorway or eat.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a neighbor.
    pub fn remove_neighbor(&mut self, q: ProcessId) {
        let j = self.idx(q);
        self.neighbors.remove(j);
        self.vars.remove(j);
    }

    // ----- crash-recovery / self-stabilization support ------------------

    /// Switches the lemma `debug_assert!`s from "panic" to "tolerate".
    ///
    /// Under the crash-stop model Lemmas 1.1/1.2 are invariants and their
    /// violation is a bug; under crash-recovery with state corruption they
    /// fail *legitimately and transiently* (a stale request crossing a
    /// rejoin, a flipped fork bit) and the audit-and-repair layer restores
    /// them. The crash-recovery wrapper hardens its inner process.
    pub fn harden(&mut self) {
        self.hardened = true;
    }

    /// Whether this process has acked `q`'s doorway entry during the
    /// current hungry session (`ack_ij`).
    pub fn acked_by(&self, q: ProcessId) -> bool {
        self.get(self.idx(q), flag::ACK)
    }

    /// Forcibly sets fork possession on the edge to `q` (rejoin handshake
    /// and audit repairs — never called by Algorithm 1 itself).
    pub fn set_fork(&mut self, q: ProcessId, held: bool) {
        let j = self.idx(q);
        self.set(j, flag::FORK, held);
    }

    /// Forcibly sets token possession on the edge to `q`.
    pub fn set_token(&mut self, q: ProcessId, held: bool) {
        let j = self.idx(q);
        self.set(j, flag::TOKEN, held);
    }

    /// Clears the doorway/session flags (`pinged`, `ack`, `replied`,
    /// `deferred`) on the edge to `q`, as the rejoin handshake does when an
    /// edge is re-canonicalized.
    pub fn reset_edge_session(&mut self, q: ProcessId) {
        let j = self.idx(q);
        for f in [flag::PINGED, flag::ACK, flag::REPLIED, flag::DEFERRED] {
            self.set(j, f, false);
        }
    }

    /// Clears only the volatile handshake flags (`pinged`, `ack`,
    /// `replied`) on the edge to `q`, keeping `deferred` along with the
    /// fork and token — what a confirmed `JournalResume` does: the
    /// journaled obligations survive the restart, but any in-flight
    /// ping/ack exchange died with the old incarnation (or was suppressed
    /// while the edge was unsynced) and must be restarted from scratch.
    pub fn reset_edge_handshake(&mut self, q: ProcessId) {
        let j = self.idx(q);
        for f in [flag::PINGED, flag::ACK, flag::REPLIED] {
            self.set(j, f, false);
        }
    }

    /// Clears a stuck `pinged` flag so the next internal-action pass
    /// re-pings `q` (audit repair for a ping whose ack was destroyed by a
    /// fault; Algorithm 1 would otherwise wait forever on a live peer).
    pub fn reset_ping(&mut self, q: ProcessId) {
        let j = self.idx(q);
        self.set(j, flag::PINGED, false);
    }

    /// XORs `mask` (low six bits: `PINGED`, `ACK`, `REPLIED`, `DEFERRED`,
    /// `FORK`, `TOKEN`) into the per-neighbor flags of the edge to `q` —
    /// the transient-fault injection point.
    pub fn corrupt_edge(&mut self, q: ProcessId, mask: u8) {
        let j = self.idx(q);
        self.vars[j] ^= mask & 0x3F;
    }

    /// The raw bit-packed per-neighbor flags of the edge to `q` (low six
    /// bits: `PINGED`, `ACK`, `REPLIED`, `DEFERRED`, `FORK`, `TOKEN`) —
    /// what the stable-storage journal snapshots on every commit.
    pub fn edge_flags(&self, q: ProcessId) -> u8 {
        self.vars[self.idx(q)]
    }

    /// Overwrites the per-neighbor flags of the edge to `q` with `flags`
    /// (low six bits) — journal replay on restart. The caller masks the
    /// bits it trusts; session bits it does not restore are cleared.
    pub fn restore_edge_flags(&mut self, q: ProcessId, flags: u8) {
        let j = self.idx(q);
        self.vars[j] = flags & 0x3F;
    }

    /// Local audit-and-repair: clears flag states unreachable under
    /// Algorithm 1 (so only producible by corruption or a botched rejoin)
    /// and discharges them safely. Returns whether anything was repaired.
    ///
    /// * `ack`/`replied` set while not hungry-outside-the-doorway — both are
    ///   cleared on doorway entry and only set while hungry, so this is
    ///   residue; cleared.
    /// * `deferred` set while thinking outside the doorway — exit clears all
    ///   deferrals and a thinking process never defers, so this ping would
    ///   be deferred forever; grant the ack now and clear.
    /// * `token && fork` co-located while outside the doorway — a deferred
    ///   fork request is encoded as token+fork *inside* a session and exit
    ///   discharges it, so outside one the pair can only come from
    ///   corruption (directly, or via the audit exchange recreating a lost
    ///   fork/token next to the surviving one). Left alone it starves a
    ///   peer waiting inside the doorway whose request was consumed;
    ///   discharge it exactly as exit would — the fork travels to the
    ///   peer, the token stays.
    ///
    /// Only edges accepted by `eligible` are audited. The crash-recovery
    /// layer passes its synced-edge filter: an unsynced edge's state is
    /// owned by the resume/rejoin protocol (a journaled mid-session
    /// `token+fork` pair is *legitimate* there, and a discharge sent into
    /// a suppressed edge would silently destroy the fork).
    pub fn audit_local(
        &mut self,
        eligible: impl Fn(ProcessId) -> bool,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) -> bool {
        let mut repaired = false;
        let hungry_outside = self.state == DinerState::Hungry && !self.inside;
        for j in 0..self.neighbors.len() {
            if !eligible(self.neighbors[j]) {
                continue;
            }
            if !hungry_outside {
                for f in [flag::ACK, flag::REPLIED] {
                    if self.get(j, f) {
                        self.set(j, f, false);
                        repaired = true;
                    }
                }
            }
            if self.state == DinerState::Thinking && !self.inside && self.get(j, flag::DEFERRED) {
                sends.push((self.neighbors[j], DiningMsg::Ack));
                self.set(j, flag::DEFERRED, false);
                repaired = true;
            }
            if !self.inside && self.get(j, flag::TOKEN) && self.get(j, flag::FORK) {
                sends.push((self.neighbors[j], DiningMsg::Fork));
                self.set(j, flag::FORK, false);
                repaired = true;
            }
        }
        repaired
    }

    /// Action 10 (lines 29–35): exit eating — back to thinking, out of the
    /// doorway, granting every deferred fork request and deferred ping.
    fn exit(&mut self, sends: &mut Vec<(ProcessId, DiningMsg)>) {
        self.inside = false;
        self.state = DinerState::Thinking;
        for j in 0..self.neighbors.len() {
            if self.get(j, flag::TOKEN) && self.get(j, flag::FORK) {
                sends.push((self.neighbors[j], DiningMsg::Fork));
                self.set(j, flag::FORK, false);
            }
            if self.get(j, flag::DEFERRED) {
                sends.push((self.neighbors[j], DiningMsg::Ack));
                self.set(j, flag::DEFERRED, false);
            }
        }
    }
}

impl DiningAlgorithm for DiningProcess {
    type Msg = DiningMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        match input {
            DiningInput::Hungry => {
                debug_assert!(
                    self.hardened || self.state == DinerState::Thinking,
                    "{}: Hungry is only legal while thinking",
                    self.id
                );
                if self.state == DinerState::Thinking {
                    self.state = DinerState::Hungry;
                }
            }
            DiningInput::DoneEating => {
                debug_assert!(
                    self.hardened || self.state == DinerState::Eating,
                    "{}: DoneEating is only legal while eating",
                    self.id
                );
                if self.state == DinerState::Eating {
                    self.exit(sends);
                }
            }
            DiningInput::Message { from, msg } => {
                let j = self.idx(from);
                match msg {
                    DiningMsg::Ping => self.on_ping(j, sends),
                    DiningMsg::Ack => self.on_ack(j),
                    DiningMsg::Request { color } => self.on_request(j, color, sends),
                    DiningMsg::Fork => self.on_fork(j),
                }
            }
            DiningInput::SuspicionChange => {}
        }
        self.internal_actions(suspicion, sends);
    }

    fn state(&self) -> DinerState {
        self.state
    }

    fn inside_doorway(&self) -> bool {
        self.inside
    }

    /// §7: `log₂(δ) + 6δ + c` bits — 2 for `state`, 1 for `inside`,
    /// `⌈log₂(δ+1)⌉` for the color, and 6 per neighbor.
    fn state_bits(&self) -> usize {
        let delta = self.neighbors.len();
        // ⌈log₂(δ+1)⌉ bits index the δ+1 possible colors (at least 1 bit).
        let color_bits = (usize::BITS - delta.max(1).leading_zeros()) as usize;
        2 + 1 + color_bits + 6 * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    fn sus(ids: &[usize]) -> BTreeSet<ProcessId> {
        ids.iter().map(|&i| p(i)).collect()
    }

    /// A two-process pair: `hi` (color 1, starts with fork) and `lo`
    /// (color 0, starts with token).
    fn pair() -> (DiningProcess, DiningProcess) {
        let hi = DiningProcess::new(p(0), 1, [(p(1), 0)]);
        let lo = DiningProcess::new(p(1), 0, [(p(0), 1)]);
        (hi, lo)
    }

    #[test]
    fn initial_fork_and_token_placement() {
        let (hi, lo) = pair();
        assert!(hi.holds_fork(p(1)) && !hi.holds_token(p(1)));
        assert!(!lo.holds_fork(p(0)) && lo.holds_token(p(0)));
        assert_eq!(hi.state(), DinerState::Thinking);
        assert!(!hi.inside_doorway());
    }

    #[test]
    #[should_panic(expected = "share color")]
    fn rejects_improper_coloring() {
        let _ = DiningProcess::new(p(0), 1, [(p(1), 1)]);
    }

    #[test]
    #[should_panic(expected = "not its own neighbor")]
    fn rejects_self_neighbor() {
        let _ = DiningProcess::new(p(0), 1, [(p(0), 0)]);
    }

    #[test]
    fn action2_hungry_sends_pings_once() {
        let (mut hi, _) = pair();
        let mut out = Vec::new();
        hi.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(out, vec![(p(1), DiningMsg::Ping)]);
        assert!(hi.ping_pending(p(1)));
        // Re-evaluating internal actions must not duplicate the ping
        // (Lemma 2.2: at most one pending ping per direction).
        let mut out = Vec::new();
        hi.handle(DiningInput::SuspicionChange, &none(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn action3_thinking_process_grants_ack_without_replied() {
        let (mut hi, _) = pair();
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Ack)]);
        assert!(
            !hi.replied_to(p(1)),
            "replied is only set when the granter is hungry (line 10)"
        );
    }

    #[test]
    fn action3_hungry_process_grants_one_ack_then_defers() {
        let (mut hi, _) = pair();
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Ack)]);
        assert!(hi.replied_to(p(1)), "hungry granter records the reply");

        // A second ping within the same hungry session is deferred: this is
        // the revised doorway that yields eventual 2-bounded waiting.
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty());
        assert!(hi.deferring_ack(p(1)));
    }

    #[test]
    fn action4_ack_only_counts_while_hungry_outside() {
        let (mut hi, _) = pair();
        // Ack while thinking: pinged cleared, ack not recorded.
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut Vec::new(),
        );
        assert!(!hi.inside_doorway());
        // Become hungry: pings go out; the ack arrives; doorway entered.
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut out,
        );
        assert!(hi.inside_doorway(), "all acks collected ⇒ Action 5 fires");
        assert!(
            hi.state() == DinerState::Eating,
            "hi already held the only fork ⇒ Action 9 fires too"
        );
    }

    #[test]
    fn action5_resets_ack_and_replied_on_entry() {
        let (mut hi, _) = pair();
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        // Grant an ack to the neighbor while hungry: replied = true.
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut Vec::new(),
        );
        assert!(hi.replied_to(p(1)));
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut Vec::new(),
        );
        assert!(hi.inside_doorway());
        assert!(!hi.replied_to(p(1)), "replied resets on doorway entry");
    }

    #[test]
    fn suspicion_substitutes_for_missing_ack_and_fork() {
        // lo has neither the fork nor (ever) an ack from its crashed
        // neighbor; suspicion lets it enter the doorway and eat (the crux of
        // wait-freedom).
        let (_, mut lo) = pair();
        let suspects = sus(&[0]);
        let mut out = Vec::new();
        lo.handle(DiningInput::Hungry, &suspects, &mut out);
        assert_eq!(lo.state(), DinerState::Eating);
        assert!(lo.inside_doorway());
        // It pinged and token-requested nobody useful — but messages to the
        // crashed neighbor are allowed; check only that it ate.
    }

    #[test]
    fn full_two_process_handshake_lower_color_wins_fork() {
        let (mut hi, mut lo) = pair();
        // lo becomes hungry: ping out.
        let mut m1 = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut m1);
        assert_eq!(m1, vec![(p(0), DiningMsg::Ping)]);
        // hi (thinking) acks.
        let mut m2 = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut m2,
        );
        assert_eq!(m2, vec![(p(1), DiningMsg::Ack)]);
        // lo receives ack → enters doorway → spends token on a fork request.
        let mut m3 = Vec::new();
        lo.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut m3,
        );
        assert!(lo.inside_doorway());
        assert_eq!(m3, vec![(p(0), DiningMsg::Request { color: 0 })]);
        assert!(!lo.holds_token(p(0)), "token travels with the request");
        // hi is outside the doorway → grants the fork (Action 7).
        let mut m4 = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut m4,
        );
        assert_eq!(m4, vec![(p(1), DiningMsg::Fork)]);
        assert!(!hi.holds_fork(p(1)));
        assert!(
            hi.holds_token(p(1)),
            "token stays with the deferred granter"
        );
        // lo receives the fork → eats.
        let mut m5 = Vec::new();
        lo.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut m5,
        );
        assert_eq!(lo.state(), DinerState::Eating);
        assert!(m5.is_empty());
        // lo exits: no deferred requests, nothing to send.
        let mut m6 = Vec::new();
        lo.handle(DiningInput::DoneEating, &none(), &mut m6);
        assert_eq!(lo.state(), DinerState::Thinking);
        assert!(!lo.inside_doorway());
        assert!(m6.is_empty());
    }

    #[test]
    fn action7_defers_while_eating_and_grants_on_exit() {
        let (mut hi, _lo) = pair();
        // hi eats first (it holds the fork; the lone neighbor acks).
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut Vec::new(),
        );
        assert_eq!(hi.state(), DinerState::Eating);
        // A request arrives while eating: deferred (token retained).
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "eating processes defer fork requests");
        assert!(hi.holds_token(p(1)) && hi.holds_fork(p(1)));
        // Exit grants the deferred fork (Action 10, lines 32–33).
        let mut out = Vec::new();
        hi.handle(DiningInput::DoneEating, &none(), &mut out);
        assert_eq!(out, vec![(p(1), DiningMsg::Fork)]);
        assert!(!hi.holds_fork(p(1)));
        assert!(hi.holds_token(p(1)));
    }

    #[test]
    fn action7_priority_resolves_doorway_symmetry() {
        // A hungry process inside the doorway grants fork requests from
        // higher-color neighbors and defers those from lower-color ones —
        // the paper's color-based symmetry breaking (line 23).
        //
        // Star around p0 (color 1), leaves p1 (color 0), p2 (color 2),
        // p3 (color 3). Initially p0 holds fork(p1) and tokens for p2, p3.
        let mut p0 = DiningProcess::new(p(0), 1, [(p(1), 0), (p(2), 2), (p(3), 3)]);
        let mut out = Vec::new();
        p0.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(
            out,
            vec![
                (p(1), DiningMsg::Ping),
                (p(2), DiningMsg::Ping),
                (p(3), DiningMsg::Ping)
            ]
        );
        // All three leaves (thinking) ack; p0 enters the doorway and spends
        // both tokens requesting the missing forks.
        let mut out = Vec::new();
        for j in [1, 2, 3] {
            p0.handle(
                DiningInput::Message {
                    from: p(j),
                    msg: DiningMsg::Ack,
                },
                &none(),
                &mut out,
            );
        }
        assert!(p0.inside_doorway());
        assert_eq!(p0.state(), DinerState::Hungry);
        assert!(out.contains(&(p(2), DiningMsg::Request { color: 1 })));
        assert!(out.contains(&(p(3), DiningMsg::Request { color: 1 })));
        // p2 grants its fork; p3's is still missing, so p0 stays hungry
        // inside the doorway holding fork(p1) and fork(p2).
        p0.handle(
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut Vec::new(),
        );
        assert_eq!(p0.state(), DinerState::Hungry);
        // Request from the HIGHER-color p2 (it got the token with p0's
        // request): hungry insider with lower color must grant — and, since
        // Action 6 is still enabled (token back, fork gone), immediately
        // re-request the fork. This is the fork bouncing Lemma 2.3 talks
        // about: "i may lose forks to its neighbors in High_i before i eats".
        let mut out = Vec::new();
        p0.handle(
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Request { color: 2 },
            },
            &none(),
            &mut out,
        );
        assert_eq!(
            out,
            vec![
                (p(2), DiningMsg::Fork),
                (p(2), DiningMsg::Request { color: 1 })
            ]
        );
        assert!(!p0.holds_fork(p(2)));
        // Request from the LOWER-color p1: hungry insider with higher color
        // defers (token retained alongside the fork).
        let mut out = Vec::new();
        p0.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "higher-color hungry insider defers");
        assert!(p0.holds_fork(p(1)) && p0.holds_token(p(1)));
    }

    #[test]
    fn exit_sends_deferred_acks() {
        let (mut hi, _) = pair();
        hi.handle(DiningInput::Hungry, &sus(&[1]), &mut Vec::new());
        assert_eq!(hi.state(), DinerState::Eating);
        // Ping arrives while inside: deferred.
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty());
        assert!(hi.deferring_ack(p(1)));
        let mut out = Vec::new();
        hi.handle(DiningInput::DoneEating, &none(), &mut out);
        assert_eq!(out, vec![(p(1), DiningMsg::Ack)]);
        assert!(!hi.deferring_ack(p(1)));
    }

    #[test]
    fn state_bits_matches_paper_formula() {
        let g = ekbd_graph::topology::star(9);
        let colors = ekbd_graph::coloring::greedy(&g);
        let hub = DiningProcess::from_graph(&g, &colors, p(0));
        let leaf = DiningProcess::from_graph(&g, &colors, p(3));
        // hub: δ = 8 ⇒ 2 + 1 + ⌈log₂ 9⌉ + 48 = 2 + 1 + 4 + 48 = 55.
        assert_eq!(hub.state_bits(), 55);
        // leaf: δ = 1 ⇒ 2 + 1 + 1 + 6 = 10.
        assert_eq!(leaf.state_bits(), 10);
    }

    #[test]
    fn from_graph_places_forks_by_color() {
        let g = ekbd_graph::topology::ring(5);
        let colors = ekbd_graph::coloring::greedy(&g);
        for e in g.edges() {
            let a = DiningProcess::from_graph(&g, &colors, e.lo);
            let b = DiningProcess::from_graph(&g, &colors, e.hi);
            let fork_count = a.holds_fork(e.hi) as u32 + b.holds_fork(e.lo) as u32;
            let token_count = a.holds_token(e.hi) as u32 + b.holds_token(e.lo) as u32;
            assert_eq!(fork_count, 1, "exactly one fork per edge");
            assert_eq!(token_count, 1, "exactly one token per edge");
            let holder = if a.holds_fork(e.hi) { &a } else { &b };
            let other = if a.holds_fork(e.hi) { &b } else { &a };
            assert!(
                holder.color() > other.color(),
                "fork starts at higher color"
            );
        }
    }

    #[test]
    fn add_neighbor_inserts_sorted_with_canonical_placement() {
        let mut p1 = DiningProcess::new(p(1), 1, [(p(3), 2)]);
        p1.add_neighbor(p(0), 0); // lower id, lower color
        p1.add_neighbor(p(5), 3); // higher id, higher color
        assert_eq!(p1.neighbors(), &[p(0), p(3), p(5)]);
        assert!(p1.holds_fork(p(0)) && !p1.holds_token(p(0)));
        assert!(!p1.holds_fork(p(5)) && p1.holds_token(p(5)));
    }

    #[test]
    fn add_neighbor_extends_an_in_flight_hungry_session() {
        // hi is hungry outside the doorway when a new neighbor appears: the
        // next internal-action pass must ping it before the doorway opens.
        let (mut hi, _) = pair();
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        hi.add_neighbor(p(2), 4);
        let mut out = Vec::new();
        hi.handle(DiningInput::SuspicionChange, &none(), &mut out);
        assert_eq!(out, vec![(p(2), DiningMsg::Ping)]);
        assert!(!hi.inside_doorway(), "new edge gates the doorway");
    }

    #[test]
    fn remove_neighbor_unblocks_waiting_guards() {
        // lo waits on its only neighbor's ack and fork; removing the edge
        // leaves no guard unsatisfied, so the next pass eats.
        let (_, mut lo) = pair();
        lo.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        assert_eq!(lo.state(), DinerState::Hungry);
        lo.remove_neighbor(p(0));
        assert!(lo.neighbors().is_empty());
        lo.handle(DiningInput::SuspicionChange, &none(), &mut Vec::new());
        assert_eq!(lo.state(), DinerState::Eating);
    }

    #[test]
    #[should_panic(expected = "share color")]
    fn add_neighbor_rejects_improper_coloring() {
        let (mut hi, _) = pair();
        hi.add_neighbor(p(2), 1);
    }

    #[test]
    #[should_panic(expected = "already a neighbor")]
    fn add_neighbor_rejects_duplicates() {
        let (mut hi, _) = pair();
        hi.add_neighbor(p(1), 2);
    }

    #[test]
    fn eating_ignores_suspicion_changes() {
        let (mut hi, _) = pair();
        hi.handle(DiningInput::Hungry, &sus(&[1]), &mut Vec::new());
        assert_eq!(hi.state(), DinerState::Eating);
        let mut out = Vec::new();
        hi.handle(DiningInput::SuspicionChange, &none(), &mut out);
        assert_eq!(hi.state(), DinerState::Eating, "eating is not revoked");
        assert!(out.is_empty());
    }
}
