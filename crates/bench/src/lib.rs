//! Shared infrastructure for the experiment suite.
//!
//! The paper (Song & Pike, DSN 2007) proves its claims rather than
//! measuring them — it contains no tables or figures. The reproduction
//! therefore regenerates a quantitative experiment for every theorem and
//! every §7 claim; each experiment is a `harness = false` bench target in
//! this crate (run `cargo bench` to regenerate them all):
//!
//! | target | claim |
//! |---|---|
//! | `e1_safety` | Theorem 1 — eventual weak exclusion |
//! | `e2_progress` | Theorem 2 — wait-freedom (vs. Choy–Singh baseline) |
//! | `e3_fairness` | Theorem 3 — eventual 2-bounded waiting (vs. naive priority) |
//! | `e4_space` | §7 — `log₂(δ) + 6δ + c` bits per process |
//! | `e5_channels` | §7 — ≤ 4 messages in transit per edge, `O(log n)`-bit messages |
//! | `e6_quiescence` | §7 — communication with the crashed ceases |
//! | `e7_stabilization` | §1 — daemon-scheduled self-stabilization under crashes |
//! | `e8_oracle_sensitivity` | §1 — mistakes shrink with oracle quality; perpetual WX needs `P` |
//! | `e9_perf` | throughput/scaling characterization (sim + threaded runtime) |
//! | `e10_ack_budget` | ablation — the ack budget m is the "k": ◇(m+1)-BW |
//! | `e11_detector_quality` | §2 — ◇P₁ implementability: heartbeat & probe tuning sweep |
//! | `e12_message_cost` | engineering context — doorway cost vs. baselines |
//! | `e13_partitionable` | §8 — ◇P₁ and the daemon survive crash partitions |
//! | `e14_unreliable_channels` | beyond the paper — theorems survive lossy channels behind `ekbd-link` |
//! | `e15_crash_recovery` | beyond the paper — crash/recover/corrupt rejoin via the audit handshake |
//! | `e16_journal` | beyond the paper — durable journal, storage faults, post-mortem replay |
//! | `e17_churn` | beyond the paper — dynamic membership churn with online admission |
//! | `e18_chaos` | beyond the paper — composed chaos schedules + automatic shrinking |
//! | `e19_scale` | beyond the paper — packed S1-state kernel sharded over 10⁵-node graphs |
//! | `e20_net` | beyond the paper — networked sessions survive connection churn |
//! | `e21_reactor` | beyond the paper — readiness reactor: 1024 multiplexed sessions, blast-radius kills |
//! | `criterion_perf` | statistical micro-benchmarks (Criterion) |
//!
//! This library crate holds the plain-text table writer and small helpers
//! the experiment binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A plain-text aligned table, printed to stdout.
///
/// ```
/// use ekbd_bench::Table;
/// let mut t = Table::new(&["n", "mistakes", "verdict"]);
/// t.row([format!("{}", 8), format!("{}", 0), "PASS".into()]);
/// let s = t.render();
/// assert!(s.contains("mistakes"));
/// assert!(s.contains("PASS"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<const N: usize>(&mut self, cells: [String; N]) {
        assert_eq!(N, self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row from a vector (checked at runtime).
    pub fn row_vec(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                let _ = write!(out, "{}{}  ", c, " ".repeat(pad));
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id}: {claim} ===\n");
}

/// PASS/FAIL cell for claim checks.
pub fn verdict(ok: bool) -> String {
    if ok {
        "PASS".into()
    } else {
        "FAIL".into()
    }
}

/// Prints the experiment's overall verdict line (greppable).
pub fn conclude(id: &str, ok: bool) {
    println!("\n[{}] overall: {}\n", id, if ok { "PASS" } else { "FAIL" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_wrong_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn verdict_strings() {
        assert_eq!(verdict(true), "PASS");
        assert_eq!(verdict(false), "FAIL");
    }
}
