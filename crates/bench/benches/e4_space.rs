//! E4 — §7 bounded space.
//!
//! Claim: each process needs `log₂(δ) + 6δ + c` bits of protocol state
//! (O(n) in the clique worst case). The implementation bit-packs exactly
//! the paper's nine variable families, so the measured size should equal
//! the formula with `c = 3` (2 state bits + 1 doorway bit).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::{DiningAlgorithm, DiningProcess};
use ekbd_graph::{coloring, topology, ProcessId};

fn formula(delta: usize) -> usize {
    let color_bits = (usize::BITS - delta.max(1).leading_zeros()) as usize;
    2 + 1 + color_bits + 6 * delta
}

fn main() {
    banner("E4", "§7 — per-process state is log₂(δ) + 6δ + c bits");
    let mut table = Table::new(&[
        "topology",
        "n",
        "δ(max)",
        "measured bits(max)",
        "formula bits",
        "bytes",
        "verdict",
    ]);
    let mut all_ok = true;
    for (name, graph) in [
        ("star-4", topology::star(4)),
        ("star-8", topology::star(8)),
        ("star-16", topology::star(16)),
        ("star-32", topology::star(32)),
        ("star-64", topology::star(64)),
        ("clique-16", topology::clique(16)),
        ("clique-64", topology::clique(64)),
        ("ring-64", topology::ring(64)),
        ("grid-8x8", topology::grid(8, 8)),
    ] {
        let colors = coloring::greedy(&graph);
        let measured = graph
            .processes()
            .map(|p| DiningProcess::from_graph(&graph, &colors, p).state_bits())
            .max()
            .unwrap_or(0);
        let delta = graph.max_degree();
        let expect = formula(delta);
        let ok = measured == expect;
        all_ok &= ok;
        table.row([
            name.to_string(),
            graph.len().to_string(),
            delta.to_string(),
            measured.to_string(),
            expect.to_string(),
            measured.div_ceil(8).to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // Linearity check: bits grow linearly in δ (slope 6), not with n.
    let b8 = DiningProcess::from_graph(
        &topology::star(9),
        &coloring::greedy(&topology::star(9)),
        ProcessId(0),
    )
    .state_bits();
    let b64 = DiningProcess::from_graph(
        &topology::star(65),
        &coloring::greedy(&topology::star(65)),
        ProcessId(0),
    )
    .state_bits();
    let slope = (b64 - b8) as f64 / (64 - 8) as f64;
    println!("\nδ-slope between δ=8 and δ=64: {slope:.3} bits/neighbor (theory: 6 + o(1))");
    let slope_ok = (slope - 6.0).abs() < 0.2;
    conclude("E4", all_ok && slope_ok);
}
