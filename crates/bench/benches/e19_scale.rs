//! E19 — million-process scale tier (packed kernel, sharded driver).
//!
//! The paper's §7 space bound (`log₂(δ) + 6δ + c` bits per process) is
//! what makes very large instances *representable*; this experiment is
//! the matching throughput characterization. The packed kernel stores
//! Algorithm 1's state in the S1 bit budget (no per-event allocation, no
//! boxed observations) and the sharded driver runs it over N worker
//! shards with a lock-step populated-tick barrier, so the run's result
//! is a pure function of `(graph, colors, seed)` — shard count and
//! thread interleaving are unobservable.
//!
//! Measured here, per random-graph family (sparse G(n,p) and
//! Barabási–Albert power-law) and per node count:
//!
//! * events/s for shard counts 1 / 2 / 4 / 8 (graph built once per
//!   case, so the curve isolates kernel + barrier cost);
//! * shard-count invariance — every shard count must produce the same
//!   report fingerprint (verdict, eat counts, latency, excerpts);
//! * rerun byte-identity at the largest case;
//! * peak RSS (`VmHWM`) after the largest case, the scale-tier memory
//!   headline.
//!
//! The multi-shard speedup gate (`shards=4` ≥ 2× `shards=1`) is only
//! enforced when the host actually has ≥ 4 CPUs
//! (`available_parallelism`): on a single-core container the barrier
//! protocol serializes and the ratio is reported informationally.
//!
//! Results go to stdout **and** `BENCH_e19.json` (override the path via
//! `E19_JSON`). Set `E19_QUICK=1` for the CI smoke run (drops the
//! 100k-node case and the 8-shard column).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::partition::greedy_edge_cut;
use ekbd_graph::{coloring, random, ConflictGraph};
use ekbd_sim::{run_sharded, PackedKernel, ScaleConfig, ScaleRunReport};
use std::fmt::Write as _;

/// One `(family, n, shards)` measurement.
struct Measure {
    family: &'static str,
    n: usize,
    edges: usize,
    max_degree: usize,
    shards: usize,
    cut_edges: usize,
    state_bytes: usize,
    report: ScaleRunReport,
    wall_s: f64,
}

impl Measure {
    fn events_per_s(&self) -> f64 {
        self.report.events as f64 / self.wall_s.max(1e-9)
    }
}

fn run_case(
    family: &'static str,
    g: &ConflictGraph,
    colors: &[u32],
    shards: usize,
    seed: u64,
) -> Measure {
    let part = greedy_edge_cut(g, shards);
    let cut_edges = part.cut_edges(g);
    let kernel = PackedKernel::new(g, colors, &part, ScaleConfig::default().seed(seed));
    let state_bytes = kernel.state_bytes();
    let start = std::time::Instant::now();
    let report = run_sharded(kernel);
    let wall_s = start.elapsed().as_secs_f64();
    Measure {
        family,
        n: g.len(),
        edges: g.edge_count(),
        max_degree: g.max_degree(),
        shards,
        cut_edges,
        state_bytes,
        report,
        wall_s,
    }
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; 0 off-Linux.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

fn main() {
    let quick = std::env::var("E19_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    banner(
        "E19",
        "scale tier — packed S1 state + sharded kernel over random graph families",
    );
    if quick {
        println!("(E19_QUICK smoke mode: 100k-node case and 8-shard column dropped)\n");
    }

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let node_counts: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    // Graph builders: average degree ≈ 6 for G(n,p) so both families keep
    // a comparable edge budget per node as n grows.
    type GraphBuilder = Box<dyn Fn(usize) -> ConflictGraph>;
    let families: Vec<(&'static str, GraphBuilder)> = vec![
        (
            "sparse-gnp",
            Box::new(|n: usize| random::sparse_gnp(n, 6.0 / (n as f64 - 1.0), 1)),
        ),
        ("powerlaw", Box::new(|n: usize| random::powerlaw(n, 3, 1))),
    ];

    let mut measures: Vec<Measure> = Vec::new();
    let mut all_pass = true;
    let mut shard_invariant = true;
    for (family, build) in &families {
        for &n in node_counts {
            let g = build(n);
            let colors = coloring::greedy(&g);
            let mut base_fp: Option<String> = None;
            for &shards in shard_counts {
                let m = run_case(family, &g, &colors, shards, 0x5ca1e + n as u64);
                all_pass &= m.report.verdict();
                let fp = m.report.fingerprint();
                match &base_fp {
                    None => base_fp = Some(fp),
                    Some(b) => shard_invariant &= fp == *b,
                }
                measures.push(m);
            }
        }
    }
    let rss_kb = peak_rss_kb();

    let mut table = Table::new(&[
        "family",
        "n",
        "edges",
        "maxdeg",
        "shards",
        "cut",
        "state B/proc",
        "events",
        "events/s",
        "wall s",
        "verdict",
    ]);
    for m in &measures {
        table.row([
            m.family.to_string(),
            m.n.to_string(),
            m.edges.to_string(),
            m.max_degree.to_string(),
            m.shards.to_string(),
            m.cut_edges.to_string(),
            format!("{:.1}", m.state_bytes as f64 / m.n as f64),
            m.report.events.to_string(),
            format!("{:.0}", m.events_per_s()),
            format!("{:.3}", m.wall_s),
            verdict(m.report.verdict()),
        ]);
    }
    table.print();

    // Shard-count scaling at the largest case of each family. The packed
    // run's wall clock is re-measured here, so the ratio is the honest
    // multi-thread effect on this host — meaningful only with ≥ 4 cores.
    let n_top = *node_counts.last().expect("node counts non-empty");
    println!("\nShard speedup at n={n_top} (host has {cores} core(s)):\n");
    let mut su_table = Table::new(&["family", "1-shard events/s", "4-shard events/s", "ratio"]);
    let mut speedups: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    let mut speedup_ok = true;
    for (family, _) in &families {
        let at = |shards: usize| {
            measures
                .iter()
                .find(|m| m.family == *family && m.n == n_top && m.shards == shards)
                .expect("measured")
                .events_per_s()
        };
        let (one, four) = (at(1), at(4));
        let ratio = four / one.max(1e-9);
        if cores >= 4 {
            speedup_ok &= ratio >= 2.0;
        }
        su_table.row([
            family.to_string(),
            format!("{one:.0}"),
            format!("{four:.0}"),
            format!("{ratio:.2}x"),
        ]);
        speedups.push((family, one, four, ratio));
    }
    su_table.print();
    if cores < 4 {
        println!(
            "\n(speedup gate waived: {cores} core(s) < 4 — the lock-step barrier\n serializes shards on this host; ratios above are informational)"
        );
    }

    // Rerun byte-identity at the largest powerlaw case, 4 shards: the
    // report fingerprint (which excludes wall clock) must be stable.
    let g = random::powerlaw(n_top, 3, 1);
    let colors = coloring::greedy(&g);
    let a = run_case("powerlaw", &g, &colors, 4, 0x5ca1e + n_top as u64);
    let b = run_case("powerlaw", &g, &colors, 4, 0x5ca1e + n_top as u64);
    let rerun_identical = a.report.fingerprint() == b.report.fingerprint()
        && a.report.eats == b.report.eats
        && a.report.excerpts == b.report.excerpts;
    println!(
        "\nshard-count invariance ...... {}",
        verdict(shard_invariant)
    );
    println!("rerun byte-identity ......... {}", verdict(rerun_identical));
    println!(
        "peak RSS .................... {:.1} MiB",
        rss_kb as f64 / 1024.0
    );

    // JSON artifact.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E19\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"runs\": [");
    for (i, m) in measures.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"family\": \"{}\", \"n\": {}, \"edges\": {}, \"max_degree\": {}, \
             \"shards\": {}, \"cut_edges\": {}, \"state_bytes\": {}, \"events\": {}, \
             \"messages\": {}, \"final_tick\": {}, \"events_per_s\": {:.0}, \
             \"wall_s\": {:.6}, \"verdict\": {}}}",
            m.family,
            m.n,
            m.edges,
            m.max_degree,
            m.shards,
            m.cut_edges,
            m.state_bytes,
            m.report.events,
            m.report.messages,
            m.report.final_tick,
            m.events_per_s(),
            m.wall_s,
            m.report.verdict()
        );
    }
    json.push_str("\n  ],\n  \"speedup\": [");
    for (i, (family, one, four, ratio)) in speedups.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"family\": \"{family}\", \"n\": {n_top}, \
             \"one_shard_events_per_s\": {one:.0}, \"four_shard_events_per_s\": {four:.0}, \
             \"ratio\": {ratio:.3}, \"gated\": {}}}",
            cores >= 4
        );
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"shard_invariant\": {shard_invariant},\n  \"rerun_identical\": {rerun_identical},"
    );
    let _ = writeln!(json, "  \"peak_rss_kb\": {rss_kb}");
    json.push('}');
    json.push('\n');
    let json_path = std::env::var("E19_JSON").unwrap_or_else(|_| "BENCH_e19.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nJSON artifact ............... {json_path}"),
        Err(e) => println!("\nJSON artifact ............... FAILED to write {json_path}: {e}"),
    }

    conclude(
        "E19",
        all_pass && shard_invariant && rerun_identical && speedup_ok,
    );
}
