//! E12 — message and latency cost of the doorway.
//!
//! Algorithm 1 pays ping/ack traffic for its fairness; the doorway-less
//! baselines pay less per session but lose fairness (naive priority, E3)
//! or concurrency (resource hierarchy: ordered acquisition serializes
//! chains). This experiment quantifies the trade: messages per eat
//! session and hungry-session latency for all four algorithms on the same
//! crash-free workloads.
//!
//! Expected shape: Algorithm 1 ≈ 2×(ping+ack) + fork traffic per session —
//! more messages than the fork-only baselines — while its latency stays
//! comparable and its fairness (E3) and crash tolerance (E2) hold.

use ekbd_baselines::{ChoySinghProcess, HierarchicalProcess, NaivePriorityProcess};
use ekbd_bench::{banner, conclude, Table};
use ekbd_graph::topology;
use ekbd_harness::{RunReport, Scenario, Workload};
use ekbd_sim::Time;

fn run(alg: &str, scenario: &Scenario) -> RunReport {
    match alg {
        "algorithm-1" => scenario.run_algorithm1(),
        "choy-singh" => {
            scenario.run_with(|s, p| ChoySinghProcess::from_graph(&s.graph, &s.colors, p))
        }
        "naive-priority" => {
            scenario.run_with(|s, p| NaivePriorityProcess::from_graph(&s.graph, &s.colors, p))
        }
        _ => scenario.run_with(|s, p| HierarchicalProcess::from_graph(&s.graph, &s.colors, p)),
    }
}

fn main() {
    banner(
        "E12",
        "message & latency cost per eat session — the price of the doorway",
    );
    let mut table = Table::new(&[
        "topology",
        "algorithm",
        "sessions",
        "messages",
        "msgs/session",
        "latency p50",
        "latency p99",
        "latency max",
        "avg conc.",
    ]);
    let mut all_ok = true;
    for (name, graph) in [
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("grid-4x4", topology::grid(4, 4)),
    ] {
        for alg in [
            "algorithm-1",
            "choy-singh",
            "naive-priority",
            "hierarchical",
        ] {
            let mut sessions = 0usize;
            let mut messages = 0u64;
            let mut p50 = 0u64;
            let mut p99 = 0u64;
            let mut max = 0u64;
            let mut conc = 0.0f64;
            let seeds = 4;
            for seed in 0..seeds {
                let scenario = Scenario::new(graph.clone())
                    .seed(seed)
                    .workload(Workload {
                        sessions: 25,
                        think: (1, 40),
                        eat: (1, 12),
                    })
                    .horizon(Time(400_000));
                let report = run(alg, &scenario);
                let progress = report.progress();
                all_ok &= progress.wait_free();
                sessions += progress.total_sessions();
                messages += report.total_messages;
                let lat = progress.latency_summary();
                p50 = p50.max(lat.p50);
                p99 = p99.max(lat.p99);
                max = max.max(lat.max);
                conc += report.concurrency().avg_concurrency_while_busy();
            }
            table.row([
                name.to_string(),
                alg.to_string(),
                sessions.to_string(),
                messages.to_string(),
                format!("{:.1}", messages as f64 / sessions.max(1) as f64),
                p50.to_string(),
                p99.to_string(),
                max.to_string(),
                format!("{:.2}", conc / seeds as f64),
            ]);
        }
    }
    table.print();
    println!(
        "\nReading: Algorithm 1's extra msgs/session are the doorway's ping/ack\n\
         pairs — the price of ◇2-BW fairness and crash-ready scheduling; the\n\
         hierarchical baseline's tail latency reflects ordered-chain\n\
         serialization; naive priority is cheapest and least fair (E3)."
    );
    conclude("E12", all_ok);
}
