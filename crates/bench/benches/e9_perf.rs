//! E9 — performance characterization (not a paper claim; standard
//! open-source hygiene).
//!
//! Since the fast-kernel PR this is a **before/after** suite: every
//! simulator case runs twice, once on the `legacy` engine (binary-heap
//! event queue, hash-map channel state, per-event allocations — the
//! pre-optimization cost model, kept in-tree exactly so this comparison
//! stays honest) and once on the default `indexed` engine (timer-wheel
//! queue, dense interned channel state, pooled buffers, move-not-clone
//! payloads). Both engines are observably identical — the golden-trace
//! suite enforces byte-equal traces — so any throughput delta is pure
//! kernel cost.
//!
//! Also measured: the parallel multi-seed [`Campaign`] runner (serial vs
//! parallel wall clock and the byte-identity of their merged reports) and
//! the threaded runtime's wall-clock scheduling throughput.
//!
//! Results go to stdout **and** to `BENCH_e9.json` (schema documented in
//! `docs/PERF.md`). Set `E9_QUICK=1` for a seconds-scale smoke run (CI);
//! set `E9_JSON=path` to redirect the JSON artifact.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{topology, ConflictGraph, ProcessId};
use ekbd_harness::{Campaign, Scenario, Workload};
use ekbd_runtime::{RuntimeConfig, ThreadedDining};
use ekbd_sim::{EngineKind, Time};
use std::fmt::Write as _;
use std::time::Instant;

/// One engine's measurement of one simulator case.
struct SimMeasure {
    topology: String,
    n: usize,
    engine: &'static str,
    events: u64,
    sessions: usize,
    wall_s: f64,
}

impl SimMeasure {
    fn events_per_s(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
    fn sessions_per_s(&self) -> f64 {
        self.sessions as f64 / self.wall_s.max(1e-9)
    }
}

/// Pre-PR throughput (events/s) of the seed-commit binary, measured on the
/// reference machine with exactly this suite's full-mode workload (seed 1,
/// adversarial oracle 2000/50, 200 sessions/process, horizon 500k, warm
/// best-of-30). Methodology and raw numbers: `docs/PERF.md`. The headline
/// acceptance gate compares the indexed engine against this recording; the
/// in-binary `legacy` engine column isolates the kernel data-structure
/// delta alone (it shares the host-layer and build-profile improvements).
const PREPR_BASELINE: &[(&str, f64)] = &[
    ("ring-8", 5_578_235.0),
    ("ring-32", 5_133_517.0),
    ("ring-128", 4_704_109.0),
    ("clique-8", 5_012_870.0),
    ("clique-16", 4_514_296.0),
    ("grid-8x8", 4_494_200.0),
];

fn prepr_baseline(topology: &str) -> Option<f64> {
    PREPR_BASELINE
        .iter()
        .find(|&&(t, _)| t == topology)
        .map(|&(_, v)| v)
}

fn scenario_for(graph: ConflictGraph, sessions: u32, horizon: u64) -> Scenario {
    Scenario::new(graph)
        .seed(1)
        .adversarial_oracle(Time(2_000), 50)
        .workload(Workload {
            sessions,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(horizon))
}

/// Runs one case on one engine repeatedly and keeps the fastest wall time
/// (events/sessions are identical across reps — the run is seed-pure).
///
/// Repetition is adaptive: after `min_reps` warm-up runs, measurement
/// continues until `settle` consecutive reps fail to lower the floor (or a
/// hard cap is hit). A fixed small rep count under-estimates throughput by
/// whatever scheduler noise happened to hit those reps; waiting for the
/// floor to stop moving converges to the same warm-floor number a clean
/// dedicated process reports.
fn measure(
    name: &str,
    graph: &ConflictGraph,
    engine: EngineKind,
    sessions: u32,
    horizon: u64,
    min_reps: u32,
    settle: u32,
) -> SimMeasure {
    const MAX_REPS: u32 = 200;
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    let mut eat_sessions = 0usize;
    let mut since_improved = 0u32;
    for rep in 0..MAX_REPS {
        let s = scenario_for(graph.clone(), sessions, horizon).engine(engine);
        let start = Instant::now();
        let report = s.run_algorithm1();
        let wall = start.elapsed().as_secs_f64();
        if wall < best_wall {
            best_wall = wall;
            since_improved = 0;
        } else {
            since_improved += 1;
        }
        events = report.events_processed;
        eat_sessions = report.total_eat_sessions();
        if rep + 1 >= min_reps && since_improved >= settle {
            break;
        }
    }
    SimMeasure {
        topology: name.to_string(),
        n: graph.len(),
        engine: match engine {
            EngineKind::Indexed => "indexed",
            EngineKind::Legacy => "legacy",
        },
        events,
        sessions: eat_sessions,
        wall_s: best_wall,
    }
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; 0 off-Linux.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::var("E9_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    // Full mode keeps the best of many reps: single-shot walls on a shared
    // box are dominated by cold caches and frequency ramp; the warm floor
    // is the reproducible number (the pre-PR baseline was recorded the
    // same way — warm best-of-N to convergence). Quick mode takes one shot:
    // its numbers are smoke-level only.
    let (min_reps, settle) = if quick { (1, 0) } else { (30, 20) };
    let (sessions, horizon) = if quick { (5, 60_000) } else { (200, 500_000) };
    banner(
        "E9",
        "performance characterization — indexed vs legacy kernel, campaign runner, threaded runtime",
    );
    if quick {
        println!("(E9_QUICK smoke mode: reduced workload, 1 rep per case)\n");
    }

    let cases: Vec<(&str, ConflictGraph)> = vec![
        ("ring-8", topology::ring(8)),
        ("ring-32", topology::ring(32)),
        ("ring-128", topology::ring(128)),
        ("clique-8", topology::clique(8)),
        ("clique-16", topology::clique(16)),
        ("grid-8x8", topology::grid(8, 8)),
    ];

    // Indexed first so its RSS high-water snapshot is not polluted by the
    // larger legacy footprint (VmHWM is a process-wide monotone).
    println!("Simulator (Algorithm 1, adversarial oracle, {sessions} sessions/process):\n");
    let mut measures: Vec<SimMeasure> = Vec::new();
    for &(name, ref graph) in &cases {
        measures.push(measure(
            name,
            graph,
            EngineKind::Indexed,
            sessions,
            horizon,
            min_reps,
            settle,
        ));
    }
    let rss_after_indexed = peak_rss_kb();
    for &(name, ref graph) in &cases {
        measures.push(measure(
            name,
            graph,
            EngineKind::Legacy,
            sessions,
            horizon,
            min_reps,
            settle,
        ));
    }
    let rss_after_legacy = peak_rss_kb();

    let mut table = Table::new(&[
        "topology",
        "n",
        "engine",
        "events",
        "events/s",
        "sessions",
        "sessions/s",
        "wall s",
    ]);
    for m in &measures {
        table.row([
            m.topology.clone(),
            m.n.to_string(),
            m.engine.to_string(),
            m.events.to_string(),
            format!("{:.0}", m.events_per_s()),
            m.sessions.to_string(),
            format!("{:.0}", m.sessions_per_s()),
            format!("{:.3}", m.wall_s),
        ]);
    }
    table.print();

    // Before/after: the engines must agree observably; the speedup is the
    // whole point of the kernel rewrite. Two ratios are reported — against
    // the in-binary legacy engine (isolates the queue/channel/pooling
    // delta) and against the recorded pre-PR binary (the full PR effect,
    // including host-layer and build-profile work the legacy engine
    // shares).
    println!("\nIndexed vs legacy (same seed → identical observable run):\n");
    let mut speedups: Vec<(String, f64, f64, f64, f64, bool)> = Vec::new();
    let mut observably_identical = true;
    let mut ring128_vs_prepr = 0.0;
    let mut su_table = Table::new(&[
        "topology",
        "pre-PR events/s",
        "legacy events/s",
        "indexed events/s",
        "vs legacy",
        "vs pre-PR",
        "identical run",
    ]);
    for &(name, _) in &cases {
        let idx = measures
            .iter()
            .find(|m| m.topology == name && m.engine == "indexed")
            .expect("indexed measure");
        let leg = measures
            .iter()
            .find(|m| m.topology == name && m.engine == "legacy")
            .expect("legacy measure");
        let same = idx.events == leg.events && idx.sessions == leg.sessions;
        observably_identical &= same;
        let ratio = idx.events_per_s() / leg.events_per_s().max(1e-9);
        let prepr = prepr_baseline(name).expect("baseline recorded for every case");
        let vs_prepr = idx.events_per_s() / prepr;
        if name == "ring-128" {
            ring128_vs_prepr = vs_prepr;
        }
        su_table.row([
            name.to_string(),
            format!("{prepr:.0}"),
            format!("{:.0}", leg.events_per_s()),
            format!("{:.0}", idx.events_per_s()),
            format!("{ratio:.2}x"),
            format!("{vs_prepr:.2}x"),
            verdict(same),
        ]);
        speedups.push((
            name.to_string(),
            leg.events_per_s(),
            idx.events_per_s(),
            ratio,
            vs_prepr,
            same,
        ));
    }
    su_table.print();
    if quick {
        println!("\n(pre-PR ratios are against the recorded reference-machine baseline\n and are not meaningful under the reduced quick-mode workload)");
    }

    // Campaign: 16 seeds of ring-32, serial vs parallel, merged reports
    // must be byte-identical.
    let campaign_jobs = if quick { 4 } else { 16 };
    println!("\nCampaign runner ({campaign_jobs} seeds of ring-32, serial vs parallel):\n");
    let base = scenario_for(topology::ring(32), sessions, horizon);
    let campaign = Campaign::new().seeds("ring-32", &base, 0..campaign_jobs);
    let serial = campaign.run_serial();
    let parallel = campaign.run();
    let merged_identical = serial.merged() == parallel.merged();
    let campaign_speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    let mut c_table = Table::new(&["mode", "workers", "wall s", "events/s", "merged identical"]);
    for (mode, r) in [("serial", &serial), ("parallel", &parallel)] {
        c_table.row([
            mode.to_string(),
            r.workers.to_string(),
            format!("{:.3}", r.wall.as_secs_f64()),
            format!(
                "{:.0}",
                r.total_events() as f64 / r.wall.as_secs_f64().max(1e-9)
            ),
            verdict(merged_identical),
        ]);
    }
    c_table.print();
    println!(
        "\ncampaign speedup ............ {campaign_speedup:.2}x on {} worker(s)",
        parallel.workers
    );

    // Threaded runtime characterization (wall-clock; unchanged by the PR).
    println!("\nThreaded runtime (real threads, wall-clock heartbeats):\n");
    let rounds = if quick { 8 } else { 30 };
    let mut t_table = Table::new(&["topology", "n", "eat-sessions", "sessions/s"]);
    let mut threaded_json = String::new();
    for (name, graph) in [
        ("ring-5", topology::ring(5)),
        ("clique-4", topology::clique(4)),
    ] {
        let n = graph.len();
        let sys = ThreadedDining::spawn(graph, RuntimeConfig::default());
        let start = Instant::now();
        for round in 0..rounds {
            for i in 0..n {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(std::time::Duration::from_millis(10 + (round % 3)));
        }
        let events = sys.shutdown_after(std::time::Duration::from_millis(50));
        let wall = start.elapsed().as_secs_f64();
        let eat = events
            .iter()
            .filter(|e| e.obs == ekbd_dining::DiningObs::StartedEating)
            .count();
        t_table.row([
            name.to_string(),
            n.to_string(),
            eat.to_string(),
            format!("{:.0}", eat as f64 / wall),
        ]);
        if !threaded_json.is_empty() {
            threaded_json.push(',');
        }
        let _ = write!(
            threaded_json,
            "\n    {{\"topology\": \"{}\", \"n\": {}, \"sessions\": {}, \"sessions_per_s\": {:.0}}}",
            json_escape(name),
            n,
            eat,
            eat as f64 / wall.max(1e-9)
        );
    }
    t_table.print();

    // JSON artifact.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E9\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"sessions\": {sessions}, \"horizon\": {horizon}, \"min_reps\": {min_reps}, \"settle\": {settle}}},"
    );
    json.push_str("  \"sim\": [");
    for (i, m) in measures.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"topology\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"events\": {}, \
             \"events_per_s\": {:.0}, \"sessions\": {}, \"sessions_per_s\": {:.0}, \
             \"wall_s\": {:.6}}}",
            json_escape(&m.topology),
            m.n,
            m.engine,
            m.events,
            m.events_per_s(),
            m.sessions,
            m.sessions_per_s(),
            m.wall_s
        );
    }
    json.push_str("\n  ],\n  \"speedup\": [");
    for (i, (name, leg, idx, ratio, vs_prepr, same)) in speedups.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let prepr = prepr_baseline(name).expect("baseline recorded for every case");
        let _ = write!(
            json,
            "\n    {{\"topology\": \"{}\", \"prepr_events_per_s\": {prepr:.0}, \
             \"legacy_events_per_s\": {leg:.0}, \
             \"indexed_events_per_s\": {idx:.0}, \"ratio_vs_legacy\": {ratio:.3}, \
             \"ratio_vs_prepr\": {vs_prepr:.3}, \
             \"observably_identical\": {same}}}",
            json_escape(name)
        );
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"campaign\": {{\"topology\": \"ring-32\", \"jobs\": {campaign_jobs}, \
         \"workers\": {}, \"serial_wall_s\": {:.6}, \"parallel_wall_s\": {:.6}, \
         \"speedup\": {campaign_speedup:.3}, \"merged_identical\": {merged_identical}}},",
        parallel.workers,
        serial.wall.as_secs_f64(),
        parallel.wall.as_secs_f64()
    );
    let _ = writeln!(json, "  \"threaded\": [{threaded_json}\n  ],");
    let _ = writeln!(
        json,
        "  \"peak_rss_kb\": {{\"after_indexed\": {rss_after_indexed}, \
         \"after_legacy\": {rss_after_legacy}}}"
    );
    json.push('}');
    json.push('\n');
    let json_path = std::env::var("E9_JSON").unwrap_or_else(|_| "BENCH_e9.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nJSON artifact ............... {json_path}"),
        Err(e) => println!("\nJSON artifact ............... FAILED to write {json_path}: {e}"),
    }

    // Verdict: engines must agree observably, merged campaign reports must
    // be byte-identical, and (full mode) the headline ring-128 throughput
    // must clear 2x the recorded pre-PR baseline. Quick mode skips the
    // speedup gate — smoke timings and workloads are not comparable.
    let speedup_ok = quick || ring128_vs_prepr >= 2.0;
    println!(
        "\nring-128 vs pre-PR .......... {ring128_vs_prepr:.2}x (gate: >=2.00x{})",
        if quick { ", waived in quick mode" } else { "" }
    );
    conclude("E9", observably_identical && merged_identical && speedup_ok);
}
