//! E9 — performance characterization (not a paper claim; standard
//! open-source hygiene).
//!
//! Reported: simulator throughput (events/s and eat-sessions/s) across
//! topology sizes, plus wall-clock scheduling throughput of the threaded
//! runtime. Statistical micro-benchmarks live in `criterion_perf`.

use ekbd_bench::{banner, Table};
use ekbd_graph::{topology, ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_runtime::{RuntimeConfig, ThreadedDining};
use ekbd_sim::Time;
use std::time::Instant;

fn sim_case(name: &str, graph: ConflictGraph, table: &mut Table) {
    let n = graph.len();
    let start = Instant::now();
    let report = Scenario::new(graph)
        .seed(1)
        .adversarial_oracle(Time(2_000), 50)
        .workload(Workload {
            sessions: 20,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(500_000))
        .run_algorithm1();
    let wall = start.elapsed().as_secs_f64();
    let sessions = report.total_eat_sessions();
    table.row([
        name.to_string(),
        n.to_string(),
        report.events_processed.to_string(),
        format!("{:.0}", report.events_processed as f64 / wall),
        sessions.to_string(),
        format!("{:.0}", sessions as f64 / wall),
        format!("{:.3}", wall),
    ]);
}

fn main() {
    banner(
        "E9",
        "performance characterization — simulator and threaded runtime",
    );

    println!("Simulator (Algorithm 1, adversarial oracle, 20 sessions/process):\n");
    let mut table = Table::new(&[
        "topology",
        "n",
        "events",
        "events/s",
        "eat-sessions",
        "sessions/s",
        "wall s",
    ]);
    sim_case("ring-8", topology::ring(8), &mut table);
    sim_case("ring-32", topology::ring(32), &mut table);
    sim_case("ring-128", topology::ring(128), &mut table);
    sim_case("clique-8", topology::clique(8), &mut table);
    sim_case("clique-16", topology::clique(16), &mut table);
    sim_case("grid-8x8", topology::grid(8, 8), &mut table);
    table.print();

    println!("\nThreaded runtime (real threads, wall-clock heartbeats, 300 ms window):\n");
    let mut table = Table::new(&["topology", "n", "eat-sessions", "sessions/s"]);
    for (name, graph) in [
        ("ring-5", topology::ring(5)),
        ("clique-4", topology::clique(4)),
    ] {
        let n = graph.len();
        let sys = ThreadedDining::spawn(graph, RuntimeConfig::default());
        let start = Instant::now();
        // Keep everyone permanently greedy for the window.
        for round in 0..30 {
            for i in 0..n {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(std::time::Duration::from_millis(10 + (round % 3)));
        }
        let events = sys.shutdown_after(std::time::Duration::from_millis(50));
        let wall = start.elapsed().as_secs_f64();
        let sessions = events
            .iter()
            .filter(|e| e.obs == ekbd_dining::DiningObs::StartedEating)
            .count();
        table.row([
            name.to_string(),
            n.to_string(),
            sessions.to_string(),
            format!("{:.0}", sessions as f64 / wall),
        ]);
    }
    table.print();
    println!("\n[E9] overall: PASS (characterization only)\n");
}
