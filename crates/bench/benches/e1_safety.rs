//! E1 — Theorem 1 (eventual weak exclusion, ◇WX).
//!
//! Claim: for every run there exists a time after which no two live
//! neighbors eat simultaneously; equivalently, at most finitely many
//! scheduling mistakes per run, all before the oracle's convergence.
//!
//! Setup: adversarial scripted ◇P₁ (mutual false suspicions in bursts
//! until `converge_at = 3000`), several topologies and crash counts, five
//! seeds each. Reported: total mistakes (finite, may be positive before
//! convergence) and mistakes starting at/after convergence (must be 0).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

fn topologies() -> Vec<(&'static str, ConflictGraph)> {
    vec![
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("grid-3x4", topology::grid(3, 4)),
        ("gnp-12-.3", random::connected_gnp(12, 0.3, 7)),
    ]
}

fn main() {
    banner(
        "E1",
        "Theorem 1 — ◇WX: finitely many mistakes, none after ◇P₁ converges",
    );
    let converge_at = Time(3_000);
    let mut table = Table::new(&[
        "topology",
        "crashes",
        "seeds",
        "mistakes(total)",
        "mistakes(after conv)",
        "wait-free",
        "verdict",
    ]);
    let mut all_ok = true;
    for (name, graph) in topologies() {
        let n = graph.len();
        for crashes in [0usize, 1, n / 3] {
            let mut total = 0usize;
            let mut after = 0usize;
            let mut wait_free = true;
            let seeds = 5;
            for seed in 0..seeds {
                let mut s = Scenario::new(graph.clone())
                    .seed(seed)
                    .adversarial_oracle(converge_at, 40)
                    .workload(Workload {
                        // ~60 sessions x ~90 ticks ≈ 5400 ticks of activity:
                        // spans the crash schedule and the convergence time.
                        sessions: 60,
                        think: (1, 150),
                        eat: (1, 15),
                    })
                    .horizon(Time(150_000));
                for c in 0..crashes {
                    // Spread crashes across the run, including pre-convergence.
                    s = s.crash(ProcessId::from((c * 2 + 1) % n), Time(500 + 900 * c as u64));
                }
                let report = s.run_algorithm1();
                let ex = report.exclusion();
                total += ex.total();
                after += ex.after(converge_at);
                wait_free &= report.progress().wait_free();
            }
            let ok = after == 0 && wait_free;
            all_ok &= ok;
            table.row([
                name.to_string(),
                crashes.to_string(),
                seeds.to_string(),
                total.to_string(),
                after.to_string(),
                wait_free.to_string(),
                verdict(ok),
            ]);
        }
    }
    table.print();
    println!(
        "\nNote: pre-convergence mistakes are legal under ◇WX (finitely many);\n\
         the theorem requires only the suffix to be clean."
    );
    conclude("E1", all_ok);
}
