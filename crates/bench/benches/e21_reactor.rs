//! E21 — the readiness reactor at scale: a thousand multiplexed
//! sessions on a handful of threads.
//!
//! E20 established that the networked daemon maps connection churn onto
//! the paper's crash-recovery model. E21 measures the rewrite that makes
//! that mapping *cheap*: a readiness-based reactor (vendored epoll, slab
//! of nonblocking connections, no thread-per-connection) plus the
//! `Bind`/`Unbind` sub-channel that multiplexes many dining processes
//! over one socket. Three phases:
//!
//! * **Capacity** — 64 connections × 16 processes = 1024 concurrent
//!   sessions on a 1024-ring, fronting the bit-packed scale kernel
//!   (`BackendSpec::Scale`). Every planned cycle must complete and the
//!   kernel must report **zero** exclusion mistakes: the reactor carries
//!   four-figure session counts on two threads without touching the
//!   guarantees.
//! * **Churn** — a multiplexed fleet over the full threaded runtime with
//!   a journal; 25 % of the *connections* are hard-killed, which crashes
//!   every process bound to them at once. One reconnect per connection
//!   must readmit the whole block (`resumed`/`rejoined`, never fresh),
//!   all cycles must still complete, and the server-side trace must show
//!   zero exclusion mistakes after the last disturbance — the E20 gates,
//!   now with blast-radius > 1 per socket.
//! * **Overload** — a fleet at 2× the admission cap. Surplus is shed
//!   with `Busy` (never queued) while every accepted session completes
//!   with p99 under the bound: shedding protects the admitted.
//!
//! Results go to stdout **and** `BENCH_e21.json` (override via
//! `E21_JSON`). Set `E21_QUICK=1` for the CI smoke run (smaller fleet;
//! every gate still enforced, with the session floor scaled down).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::topology;
use ekbd_metrics::{ExclusionReport, Summary};
use ekbd_net::{
    run_load, AdmitPath, BackendSpec, ClientConfig, DaemonServer, LoadPlan, LoadReport,
    ServerAddr, ServerConfig,
};
use ekbd_runtime::RuntimeConfig;
use ekbd_sim::Time;
use std::fmt::Write as _;

struct Phase {
    name: &'static str,
    conns: usize,
    multiplex: usize,
    cap: usize,
    report: LoadReport,
    latency: Summary,
    shed_busy: u64,
    admitted: u64,
    wall_s: f64,
    pass: bool,
}

fn loopback() -> ServerAddr {
    ServerAddr::Tcp("127.0.0.1:0".into())
}

fn main() {
    let quick = std::env::var("E21_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    banner(
        "E21",
        "readiness reactor — 1024 multiplexed sessions, kills with per-socket blast radius",
    );
    if quick {
        println!("(E21_QUICK smoke mode: smaller fleet; all gates enforced at scaled floors)\n");
    }

    // ---- Phase 1: capacity — the reactor fronting the packed kernel. ----
    let (cap_conns, cap_mux) = if quick { (16, 4) } else { (64, 16) };
    let cap_sessions_floor = if quick { 64 } else { 1_000 };
    let cap_n = cap_conns * cap_mux;
    let capacity_cfg = ServerConfig {
        backend: BackendSpec::Scale { seed: 0xE21 },
        max_sessions: cap_n,
        send_queue: 256,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(cap_n), &loopback(), capacity_cfg)
        .expect("start capacity server");
    let addr = server.local_addr().clone();
    let capacity_plan = LoadPlan {
        clients: cap_conns,
        sessions_per_client: 2,
        think_ms: 0,
        kill_fraction: 0.0,
        seed: 0xE21,
        grant_timeout_ms: 10_000,
        multiplex: cap_mux,
        ..LoadPlan::default()
    };
    let start = std::time::Instant::now();
    let capacity_report = run_load(&addr, &capacity_plan);
    let capacity_wall_s = start.elapsed().as_secs_f64();
    let capacity_run = server.shutdown();
    let scale = capacity_run.scale.expect("scale backend report");

    let g_concurrent =
        capacity_run.stats.fresh == cap_n as u64 && cap_n >= cap_sessions_floor;
    let g_cap_waitfree = capacity_report.errors.is_empty()
        && capacity_report.completed_sessions == capacity_report.planned_sessions;
    let g_cap_exclusion = scale.mistakes == 0;
    let capacity_pass = g_concurrent && g_cap_waitfree && g_cap_exclusion;
    let capacity = Phase {
        name: "capacity",
        conns: cap_conns,
        multiplex: cap_mux,
        cap: cap_n,
        latency: Summary::of(capacity_report.latencies_ms.iter().copied()),
        shed_busy: capacity_run.stats.shed_busy,
        admitted: capacity_run.stats.fresh,
        report: capacity_report,
        wall_s: capacity_wall_s,
        pass: capacity_pass,
    };

    // ---- Phase 2: churn — kills with per-socket blast radius. ----
    let (churn_conns, churn_mux, churn_cycles) = if quick { (4, 2, 4) } else { (8, 4, 6) };
    let churn_n = churn_conns * churn_mux;
    let journal_dir = std::env::temp_dir().join(format!("ekbd-e21-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("create journal dir");
    let churn_cfg = ServerConfig {
        runtime: RuntimeConfig {
            journal_dir: Some(journal_dir.clone()),
            ..RuntimeConfig::default()
        },
        max_sessions: churn_n,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(churn_n), &loopback(), churn_cfg)
        .expect("start churn server");
    let addr = server.local_addr().clone();
    let churn_plan = LoadPlan {
        clients: churn_conns,
        sessions_per_client: churn_cycles,
        think_ms: 2,
        kill_fraction: 0.25,
        seed: 0xE21 + 1,
        grant_timeout_ms: 8_000,
        multiplex: churn_mux,
        ..LoadPlan::default()
    };
    let start = std::time::Instant::now();
    let churn_report = run_load(&addr, &churn_plan);
    let churn_wall_s = start.elapsed().as_secs_f64();
    let churn_run = server.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);

    let horizon = churn_run.events.last().map_or(Time(0), |e| e.time);
    let exclusion =
        ExclusionReport::analyze(&topology::ring(churn_n), &churn_run.events, &|_| None, horizon);
    let last_disturbance_ms = churn_run.restarts.iter().map(|r| r.at_ms).max().unwrap_or(0);
    let mistakes_after = exclusion.after(Time(last_disturbance_ms));

    let min_kills = churn_conns.div_ceil(4);
    let g_errors = churn_report.errors.is_empty();
    let g_kills = churn_report.killed >= min_kills;
    // One kill takes down a whole block: each killed connection must be
    // readmitted in full — primary plus every secondary, never fresh.
    let g_readmit = churn_report.reconnected == churn_report.killed
        && churn_report.readmissions.len() == churn_report.killed * churn_mux
        && churn_report
            .readmissions
            .iter()
            .all(|r| r.path != AdmitPath::Fresh)
        && churn_run.stats.resumed + churn_run.stats.rejoined
            == (churn_report.killed * churn_mux) as u64;
    let g_waitfree = churn_report.completed_sessions == churn_report.planned_sessions;
    let g_exclusion = mistakes_after == 0;
    let churn_pass = g_errors && g_kills && g_readmit && g_waitfree && g_exclusion;
    let churn = Phase {
        name: "churn",
        conns: churn_conns,
        multiplex: churn_mux,
        cap: churn_n,
        latency: Summary::of(churn_report.latencies_ms.iter().copied()),
        shed_busy: churn_run.stats.shed_busy,
        admitted: churn_run.stats.fresh,
        report: churn_report,
        wall_s: churn_wall_s,
        pass: churn_pass,
    };

    // ---- Phase 3: overload — 2× the admission cap, shed not queued. ----
    let over_clients = if quick { 6 } else { 12 };
    let over_cap = over_clients / 2;
    let over_cycles = if quick { 4 } else { 8 };
    let overload_cfg = ServerConfig {
        max_sessions: over_cap,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(over_clients), &loopback(), overload_cfg)
        .expect("start overload server");
    let addr = server.local_addr().clone();
    let overload_plan = LoadPlan {
        clients: over_clients,
        sessions_per_client: over_cycles,
        think_ms: 2,
        kill_fraction: 0.0,
        seed: 0xE21 + 2,
        grant_timeout_ms: 5_000,
        client: ClientConfig {
            max_attempts: 3,
            ..ClientConfig::default()
        },
        ..LoadPlan::default()
    };
    let start = std::time::Instant::now();
    let overload_report = run_load(&addr, &overload_plan);
    let overload_wall_s = start.elapsed().as_secs_f64();
    let overload_run = server.shutdown();

    const P99_BOUND_MS: u64 = 1_000;
    let admitted = overload_run.stats.fresh;
    let overload_latency = Summary::of(overload_report.latencies_ms.iter().copied());
    let g_over_cap = admitted == over_cap as u64;
    let g_shed = overload_run.stats.shed_busy > 0
        && overload_report.errors.len() == over_clients - admitted as usize;
    let g_accepted_complete =
        overload_report.completed_sessions == admitted as usize * over_cycles;
    let g_bounded = overload_latency.p99 <= P99_BOUND_MS;
    let overload_pass = g_over_cap && g_shed && g_accepted_complete && g_bounded;
    let overload = Phase {
        name: "overload",
        conns: over_clients,
        multiplex: 1,
        cap: over_cap,
        latency: overload_latency,
        shed_busy: overload_run.stats.shed_busy,
        admitted,
        report: overload_report,
        wall_s: overload_wall_s,
        pass: overload_pass,
    };

    // ---- Tables. ----
    let mut table = Table::new(&[
        "phase",
        "conns",
        "mux",
        "sessions",
        "admitted",
        "planned",
        "done",
        "killed",
        "readmit",
        "shed busy",
        "p50 ms",
        "p99 ms",
        "wall s",
        "verdict",
    ]);
    for p in [&capacity, &churn, &overload] {
        table.row([
            p.name.to_string(),
            p.conns.to_string(),
            p.multiplex.to_string(),
            (p.conns * p.multiplex).to_string(),
            p.admitted.to_string(),
            p.report.planned_sessions.to_string(),
            p.report.completed_sessions.to_string(),
            p.report.killed.to_string(),
            p.report.readmissions.len().to_string(),
            p.shed_busy.to_string(),
            p.latency.p50.to_string(),
            p.latency.p99.to_string(),
            format!("{:.3}", p.wall_s),
            verdict(p.pass),
        ]);
    }
    table.print();

    println!(
        "\nconcurrent sessions ......... {} ({} on {} reactor threads, floor {})",
        verdict(g_concurrent),
        capacity.admitted,
        ServerConfig::default().reactor_threads,
        cap_sessions_floor
    );
    println!(
        "capacity wait-free .......... {} ({}/{} cycles, kernel mistakes {})",
        verdict(g_cap_waitfree && g_cap_exclusion),
        capacity.report.completed_sessions,
        capacity.report.planned_sessions,
        scale.mistakes
    );
    println!(
        "kill quota (≥25% conns) ..... {} ({}/{} connections, {} required)",
        verdict(g_kills),
        churn.report.killed,
        churn.conns,
        min_kills
    );
    println!(
        "block readmit, never fresh .. {} ({} kills × {} processes → {} readmissions; \
         server: {} resumed / {} rejoined)",
        verdict(g_readmit),
        churn.report.killed,
        churn.multiplex,
        churn.report.readmissions.len(),
        churn_run.stats.resumed,
        churn_run.stats.rejoined
    );
    println!(
        "churn wait-free ............. {} ({}/{} cycles)",
        verdict(g_waitfree),
        churn.report.completed_sessions,
        churn.report.planned_sessions
    );
    println!(
        "post-disturbance exclusion .. {} ({} total, {} after t={} ms)",
        verdict(g_exclusion),
        exclusion.total(),
        mistakes_after,
        last_disturbance_ms
    );
    println!(
        "overload shed, not queued ... {} ({} Busy sheds, {} clients refused)",
        verdict(g_shed),
        overload.shed_busy,
        overload.report.errors.len()
    );
    println!(
        "accepted p99 bounded ........ {} ({} ms ≤ {} ms)",
        verdict(g_bounded),
        overload.latency.p99,
        P99_BOUND_MS
    );

    // ---- JSON artifact. ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E21\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"reactor_threads\": {},",
        ServerConfig::default().reactor_threads
    );
    json.push_str("  \"phases\": [");
    for (i, p) in [&capacity, &churn, &overload].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"phase\": \"{}\", \"connections\": {}, \"multiplex\": {}, \
             \"sessions\": {}, \"cap\": {}, \"admitted\": {}, \"planned_cycles\": {}, \
             \"completed_cycles\": {}, \"killed\": {}, \"readmissions\": {}, \
             \"shed_busy\": {}, \"busy_retries\": {}, \
             \"latency_ms\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}}, \"wall_s\": {:.6}, \"pass\": {}}}",
            p.name,
            p.conns,
            p.multiplex,
            p.conns * p.multiplex,
            p.cap,
            p.admitted,
            p.report.planned_sessions,
            p.report.completed_sessions,
            p.report.killed,
            p.report.readmissions.len(),
            p.shed_busy,
            p.report.busy_retries,
            p.latency.count,
            p.latency.p50,
            p.latency.p99,
            p.latency.p999,
            p.latency.max,
            p.wall_s,
            p.pass
        );
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"scale_kernel\": {{\"n\": {}, \"eats\": {}, \"mistakes\": {}, \"final_tick\": {}}},",
        scale.n,
        scale.eats.iter().map(|&e| u64::from(e)).sum::<u64>(),
        scale.mistakes,
        scale.final_tick
    );
    let readmit = Summary::of(churn.report.readmissions.iter().map(|r| r.ms));
    let _ = writeln!(
        json,
        "  \"readmission_ms\": {{\"count\": {}, \"p50\": {}, \"max\": {}}},",
        readmit.count, readmit.p50, readmit.max
    );
    let _ = writeln!(
        json,
        "  \"exclusion\": {{\"total\": {}, \"after_last_disturbance\": {}, \
         \"last_disturbance_ms\": {last_disturbance_ms}}},",
        exclusion.total(),
        mistakes_after
    );
    let _ = writeln!(
        json,
        "  \"churn_server\": {{\"accepted\": {}, \"fresh\": {}, \"resumed\": {}, \
         \"rejoined\": {}, \"shed_slow\": {}, \"heartbeat_drops\": {}, \
         \"protocol_errors\": {}, \"handshake_timeouts\": {}, \"reaped\": {}}}",
        churn_run.stats.accepted,
        churn_run.stats.fresh,
        churn_run.stats.resumed,
        churn_run.stats.rejoined,
        churn_run.stats.shed_slow,
        churn_run.stats.heartbeat_drops,
        churn_run.stats.protocol_errors,
        churn_run.stats.handshake_timeouts,
        churn_run.stats.reaped
    );
    json.push('}');
    json.push('\n');
    let json_path = std::env::var("E21_JSON").unwrap_or_else(|_| "BENCH_e21.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nJSON artifact ............... {json_path}"),
        Err(e) => println!("\nJSON artifact ............... FAILED to write {json_path}: {e}"),
    }

    conclude("E21", capacity.pass && churn.pass && overload.pass);
}
