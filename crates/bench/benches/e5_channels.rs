//! E5 — §7 bounded-capacity channels.
//!
//! Claims: (a) at most four messages are ever simultaneously in transit
//! between any pair of neighbors (1 fork + 1 token/request + 2 ping/ack);
//! (b) each message carries O(log₂ n) bits of payload.
//!
//! Setup: long, contended runs with scripted oracles (which send no
//! detector traffic, so the channel high-water mark counts exactly the
//! dining messages the claim is about). Crashes and adversarial suspicion
//! included — the bound is unconditional.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::DiningMsg;
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::{DelayModel, Time};

fn main() {
    banner(
        "E5",
        "§7 — ≤ 4 in-transit messages per edge; O(log n)-bit messages",
    );
    let mut table = Table::new(&[
        "topology",
        "seeds",
        "crashes",
        "max in-transit/edge",
        "bound",
        "total msgs",
        "verdict",
    ]);
    let mut all_ok = true;
    let cases: Vec<(&str, ConflictGraph, usize)> = vec![
        ("ring-8", topology::ring(8), 0),
        ("ring-8", topology::ring(8), 2),
        ("clique-5", topology::clique(5), 0),
        ("clique-5", topology::clique(5), 1),
        ("grid-4x4", topology::grid(4, 4), 3),
        ("gnp-14-.25", random::connected_gnp(14, 0.25, 3), 2),
    ];
    for (name, graph, crashes) in cases {
        let n = graph.len();
        let mut high = 0usize;
        let mut total = 0u64;
        let seeds = 5;
        for seed in 0..seeds {
            let mut s = Scenario::new(graph.clone())
                .seed(seed)
                .adversarial_oracle(Time(2_500), 35)
                .delay(DelayModel::Uniform { min: 1, max: 40 })
                .workload(Workload {
                    sessions: 20,
                    think: (1, 10),
                    eat: (1, 10),
                })
                .horizon(Time(300_000));
            for c in 0..crashes {
                s = s.crash(ProcessId::from((3 * c + 1) % n), Time(400 + 700 * c as u64));
            }
            let report = s.run_algorithm1();
            high = high.max(report.max_channel_high_water);
            total += report.total_messages;
        }
        let ok = high <= 4;
        all_ok &= ok;
        table.row([
            name.to_string(),
            seeds.to_string(),
            crashes.to_string(),
            high.to_string(),
            "4".to_string(),
            total.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // Message-size claim: only Request carries a payload, of ⌈log₂ n⌉ bits.
    let mut size_table = Table::new(&["n", "request payload bits", "⌈log₂ n⌉", "verdict"]);
    let mut size_ok = true;
    for n in [4usize, 16, 64, 1024] {
        let bits = DiningMsg::Request { color: 1 }.payload_bits(n);
        let expect = (usize::BITS - (n - 1).leading_zeros()) as usize;
        let ok = bits == expect;
        size_ok &= ok;
        size_table.row([
            n.to_string(),
            bits.to_string(),
            expect.to_string(),
            verdict(ok),
        ]);
    }
    println!();
    size_table.print();
    conclude("E5", all_ok && size_ok);
}
