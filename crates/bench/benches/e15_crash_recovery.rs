//! E15 — beyond the paper: crash-recovery processes and self-stabilizing
//! daemon state.
//!
//! The paper's fault model (§2) is crash-stop: a crashed process never
//! returns and ◇P₁ eventually suspects it forever. This experiment extends
//! the model to crash-recovery with state corruption: processes restart
//! with blank or adversarially scrambled dining state under a fresh
//! incarnation number, and live processes have fork/token/request bits
//! flipped mid-run. The recovery layer (incarnation-stamped messages,
//! rejoin handshake, periodic audit-and-repair) must re-establish the
//! paper's guarantees. Checks, per topology (ring-8, clique-6, grid-3x4,
//! Gnp-12-0.3), each run carrying 2 restarts (one corrupted) and 2 live
//! corruptions:
//!
//! * **Readmission:** every recovered process eats again (wait-freedom is
//!   re-established for it), and the whole run is wait-free.
//! * **◇WX re-established:** zero exclusion mistakes after the last fault
//!   plus a stabilization window of audit periods.
//! * **Lemma 1 restored:** after the run drains, every edge has exactly
//!   one fork and one token *held* — duplicates forged by corruption were
//!   audited away, lost bits were recreated.
//! * **Determinism:** a faulty run is a pure function of its seed.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::RecoverableDining;
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_harness::{LiveRun, Scenario, Workload, AUDIT_PERIOD};
use ekbd_sim::Time;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

/// Two restarts (p0 corrupted, p1 blank) and two live corruptions (p2,
/// p3) on any topology with ≥ 6 processes.
fn scenario(graph: ConflictGraph, seed: u64) -> Scenario {
    Scenario::new(graph)
        .seed(seed)
        .perfect_oracle()
        .workload(Workload {
            sessions: 10,
            think: (1, 30),
            eat: (1, 8),
        })
        .crash(p(0), Time(500))
        .recover_corrupted(p(0), Time(2_200))
        .crash(p(1), Time(900))
        .recover(p(1), Time(1_900))
        .corrupt_state(p(2), Time(2_600))
        .corrupt_state(p(3), Time(3_400))
        .horizon(Time(150_000))
}

fn main() {
    banner(
        "E15",
        "beyond the paper — ◇WX, wait-freedom, and the fork/token invariant re-established after crash-recovery restarts and state corruption",
    );

    println!(
        "Each run: p0 crashes at 500 and restarts *corrupted* at 2200, p1\n\
         crashes at 900 and restarts blank at 1900, live state corruption\n\
         hits p2 at 2600 and p3 at 3400. Perfect oracle, 10 sessions per\n\
         process. The stabilization window is the last fault plus 20 audit\n\
         periods.\n"
    );

    let topologies: Vec<(&str, ConflictGraph)> = vec![
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("grid-3x4", topology::grid(3, 4)),
        ("gnp-12-0.3", random::connected_gnp(12, 0.3, 9)),
    ];

    let mut table = Table::new(&[
        "topology",
        "eat sessions",
        "readmit p0/p1 (ticks)",
        "mistakes after stab",
        "edge audit",
        "resyncs",
        "repairs (edge+local)",
        "stale dropped",
        "deterministic",
        "verdict",
    ]);
    let mut all_ok = true;

    for (name, graph) in topologies {
        let seed = 42;
        let s = scenario(graph.clone(), seed);
        let last_fault = s
            .recoveries()
            .iter()
            .chain(s.corruptions().iter())
            .map(|&(_, t)| t)
            .max()
            .expect("faults scheduled");
        let stable_from = Time(last_fault.0 + 20 * AUDIT_PERIOD);

        // Primary run through LiveRun so the final daemon state is
        // inspectable for the Lemma 1 edge audit.
        let mut live = LiveRun::new(s, |sc, q| {
            RecoverableDining::from_graph(&sc.graph, &sc.colors, q)
        });
        while live.step() {}
        let mut edge_audit = true;
        for e in graph.edges() {
            let a = live.algorithm(e.lo);
            let b = live.algorithm(e.hi);
            edge_audit &= a.holds_fork(e.hi) as u32 + b.holds_fork(e.lo) as u32 == 1;
            edge_audit &= a.holds_token(e.hi) as u32 + b.holds_token(e.lo) as u32 == 1;
        }
        let report = live.finish();

        // Determinism: the same scenario re-run twice from scratch yields
        // byte-identical traces.
        let x = scenario(graph.clone(), seed).run_recoverable();
        let y = scenario(graph.clone(), seed).run_recoverable();
        let deterministic =
            x.events == y.events && x.events == report.events && x.recovery == y.recovery;

        let progress = report.progress();
        let readmissions = report.readmissions();
        let readmitted = readmissions.iter().all(|r| r.first_eat.is_some());
        let mistakes = report.exclusion().after(stable_from);
        let stats = report.recovery.expect("recovery layer active");
        let ok = progress.wait_free() && readmitted && mistakes == 0 && edge_audit && deterministic;
        all_ok &= ok;

        let ticks = |i: usize| {
            readmissions
                .iter()
                .find(|r| r.process == p(i))
                .and_then(|r| r.time_to_readmission().map(|t| t.to_string()))
                .unwrap_or_else(|| "never".into())
        };
        table.row([
            name.to_string(),
            report.total_eat_sessions().to_string(),
            format!("{}/{}", ticks(0), ticks(1)),
            mistakes.to_string(),
            if edge_audit {
                "1 fork, 1 token".into()
            } else {
                "VIOLATED".to_string()
            },
            stats.resyncs.to_string(),
            format!("{}+{}", stats.repairs, stats.local_repairs),
            stats.stale_dropped.to_string(),
            deterministic.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // ---- Sub-table: the audit-period × strike-count trade-off ------------
    println!(
        "\nAudit knobs (ring-8, same fault schedule): a tighter period buys\n\
         repair latency with message overhead; more strikes buy in-flight\n\
         tolerance with repair delay. Every cell must stay safe — the knobs\n\
         trade speed for traffic, never correctness.\n"
    );
    let mut table = Table::new(&[
        "audit period",
        "strikes",
        "readmit p0/p1 (ticks)",
        "repairs (edge+local)",
        "total messages",
        "mistakes after stab",
        "verdict",
    ]);
    let mut messages_by_period: Vec<(u64, u64)> = Vec::new();
    for period in [
        AUDIT_PERIOD / 2,
        AUDIT_PERIOD,
        2 * AUDIT_PERIOD,
        4 * AUDIT_PERIOD,
    ] {
        for strikes in [1u8, 2, 3] {
            let s = scenario(topology::ring(8), 42)
                .audit_period(period)
                .audit_strikes(strikes);
            let last_fault = s
                .recoveries()
                .iter()
                .chain(s.corruptions().iter())
                .map(|&(_, t)| t)
                .max()
                .expect("faults scheduled");
            let stable_from = Time(last_fault.0 + 20 * period);
            let report = s.run_recoverable();
            let progress = report.progress();
            let readmissions = report.readmissions();
            let readmitted = readmissions.iter().all(|r| r.first_eat.is_some());
            let mistakes = report.exclusion().after(stable_from);
            let stats = report.recovery.expect("recovery layer active");
            let ok = progress.wait_free() && readmitted && mistakes == 0;
            all_ok &= ok;
            if strikes == 2 {
                messages_by_period.push((period, report.total_messages));
            }
            let ticks = |i: usize| {
                readmissions
                    .iter()
                    .find(|r| r.process == p(i))
                    .and_then(|r| r.time_to_readmission().map(|t| t.to_string()))
                    .unwrap_or_else(|| "never".into())
            };
            table.row([
                period.to_string(),
                strikes.to_string(),
                format!("{}/{}", ticks(0), ticks(1)),
                format!("{}+{}", stats.repairs, stats.local_repairs),
                report.total_messages.to_string(),
                mistakes.to_string(),
                verdict(ok),
            ]);
        }
    }
    table.print();
    // The overhead half of the trade-off must actually show: at the default
    // strike count, the tightest audit sends strictly more messages than
    // the sluggishest.
    let overhead_visible =
        messages_by_period.first().map(|&(_, m)| m) > messages_by_period.last().map(|&(_, m)| m);
    all_ok &= overhead_visible;
    println!(
        "\naudit overhead visible (messages at period {} > period {}): {}",
        messages_by_period.first().expect("swept").0,
        messages_by_period.last().expect("swept").0,
        overhead_visible
    );

    println!(
        "\nIncarnation-stamped messages quarantine each process's previous\n\
         lives, the rejoin handshake re-negotiates per-edge fork/token\n\
         ownership on restart, and the periodic audit repairs what\n\
         corruption forges or destroys — so the daemon's guarantees are\n\
         re-established after every restart and corruption batch, not\n\
         just under crash-stop."
    );
    conclude("E15", all_ok);
}
