//! E2 — Theorem 2 (wait-free progress).
//!
//! Claim: every correct hungry process eventually eats, for *any* number of
//! crash faults. Contrast: the crash-oblivious Choy–Singh doorway (the
//! algorithm Algorithm 1 refines) starves hungry neighbors of crashed
//! processes.
//!
//! Setup: ring and clique topologies with `f` crashes spread through the
//! run (hitting fork-holders and doorway insiders by construction of the
//! workload), adversarial oracle for Algorithm 1, none for the baseline
//! (it ignores oracles). Reported: starving processes at the horizon and
//! hungry-session latency of the survivors.

use ekbd_baselines::ChoySinghProcess;
use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{topology, ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

fn scenario(graph: &ConflictGraph, f: usize, seed: u64) -> Scenario {
    let n = graph.len();
    let mut s = Scenario::new(graph.clone())
        .seed(seed)
        .adversarial_oracle(Time(2_000), 50)
        .workload(Workload {
            // ~30 sessions x ~75 ticks ≈ 2300 ticks: the crash schedule
            // (300 + 500·c) lands mid-activity, hitting fork holders and
            // doorway insiders.
            sessions: 30,
            think: (1, 120),
            eat: (1, 15),
        })
        .horizon(Time(200_000));
    for c in 0..f {
        s = s.crash(ProcessId::from((2 * c) % n), Time(300 + 500 * c as u64));
    }
    s
}

fn main() {
    banner(
        "E2",
        "Theorem 2 — wait-freedom under crashes (Algorithm 1 vs Choy–Singh)",
    );
    let mut table = Table::new(&[
        "topology",
        "f",
        "algorithm",
        "starved",
        "sessions",
        "latency p50",
        "latency max",
        "verdict",
    ]);
    let mut all_ok = true;
    for (name, graph) in [
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("star-9", topology::star(9)),
    ] {
        let n = graph.len();
        for f in [0usize, 1, n / 2] {
            for alg in ["algorithm-1", "choy-singh"] {
                let mut starved = 0usize;
                let mut sessions = 0usize;
                let mut p50 = 0u64;
                let mut max = 0u64;
                let seeds = 4;
                for seed in 0..seeds {
                    let s = scenario(&graph, f, seed);
                    let report = if alg == "algorithm-1" {
                        s.run_algorithm1()
                    } else {
                        s.run_with(|sc, p| ChoySinghProcess::from_graph(&sc.graph, &sc.colors, p))
                    };
                    let progress = report.progress();
                    starved += progress.starving().len();
                    sessions += progress.total_sessions();
                    let lat = progress.latency_summary();
                    p50 = p50.max(lat.p50);
                    max = max.max(lat.max);
                }
                // Algorithm 1 must never starve anyone; the baseline must
                // starve someone whenever there are crashes (f ≥ 1 on these
                // connected topologies always blocks someone).
                let ok = if alg == "algorithm-1" {
                    starved == 0
                } else {
                    f == 0 || starved > 0
                };
                all_ok &= ok;
                table.row([
                    name.to_string(),
                    f.to_string(),
                    alg.to_string(),
                    starved.to_string(),
                    sessions.to_string(),
                    p50.to_string(),
                    max.to_string(),
                    verdict(ok),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\nNote: 'starved' counts correct processes still hungry at the horizon,\n\
         summed over seeds. Choy–Singh rows with f ≥ 1 demonstrate the\n\
         impossibility that motivates ◇P₁; its f = 0 rows are healthy."
    );
    conclude("E2", all_ok);
}
