//! E13 — §8: ◇P₁ and the daemon survive crash partitions.
//!
//! The paper's conclusion highlights that the *locally scope-restricted*
//! ◇P₁ "can be implemented in sparse networks which are partitionable by
//! crash faults" — a global ◇P cannot, because disconnected components
//! cannot monitor each other. The daemon only ever consults neighbors, so
//! crashing a cut vertex must leave every component fully operational.
//!
//! Setup: a path (every interior vertex is a cut vertex) and a two-star
//! "dumbbell"; crash the articulation point mid-run under the heartbeat
//! detector (real monitoring, strictly neighbor-scoped). Check: every
//! correct process in both components keeps completing sessions,
//! exclusion and fairness hold per component, and quiescence toward the
//! dead cut vertex is reached.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_detector::HeartbeatConfig;
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::{DelayModel, Time};

/// A dumbbell: two stars joined through a middle cut vertex.
fn dumbbell(side: usize) -> (ConflictGraph, ProcessId) {
    // Vertices: 0..side = left star (hub 0), `side` = bridge,
    // side+1..=2side = right star (hub side+1).
    let bridge = side;
    let mut edges = Vec::new();
    for i in 1..side {
        edges.push((0, i));
    }
    for i in (side + 2)..(2 * side + 1) {
        edges.push((side + 1, i));
    }
    edges.push((0, bridge));
    edges.push((bridge, side + 1));
    (
        ConflictGraph::new(
            2 * side + 1,
            edges
                .into_iter()
                .map(|(a, b)| (ProcessId::from(a), ProcessId::from(b))),
        )
        .expect("dumbbell is valid"),
        ProcessId::from(bridge),
    )
}

fn main() {
    banner(
        "E13",
        "§8 — crash-partitionable networks: components keep dining after the cut",
    );
    let hb = HeartbeatConfig {
        period: 10,
        initial_timeout: 60,
        timeout_increment: 30,
    };
    let mut table = Table::new(&[
        "topology",
        "cut vertex",
        "starved",
        "sessions before cut",
        "sessions after cut",
        "mistakes after conv",
        "quiescent",
        "verdict",
    ]);
    let mut all_ok = true;
    let path7 = ekbd_graph::topology::path(7);
    let (db, db_cut) = dumbbell(4);
    let cut_at = Time(3_000);
    for (name, graph, cut) in [("path-7", path7, ProcessId(3)), ("dumbbell-9", db, db_cut)] {
        let report = Scenario::new(graph)
            .seed(5)
            .heartbeat_oracle(hb)
            .delay(DelayModel::Gst {
                gst: Time(800),
                pre_max: 80,
                delta: 5,
            })
            .crash(cut, cut_at)
            .workload(Workload {
                sessions: 60,
                think: (1, 120),
                eat: (1, 12),
            })
            .horizon(Time(400_000))
            .run_algorithm1();
        let progress = report.progress();
        let before = report
            .events
            .iter()
            .filter(|e| e.obs == ekbd_dining::DiningObs::StartedEating && e.time < cut_at)
            .count();
        let after = report.total_eat_sessions() - before;
        let conv = report.detector_convergence();
        let mistakes_after = report.exclusion().after(conv);
        let quiescent = report.quiescence().quiescent_by(report.horizon);
        let ok = progress.wait_free() && after > before / 2 && mistakes_after == 0 && quiescent;
        all_ok &= ok;
        table.row([
            name.to_string(),
            format!("{cut}"),
            format!("{:?}", progress.starving()),
            before.to_string(),
            after.to_string(),
            mistakes_after.to_string(),
            quiescent.to_string(),
            verdict(ok),
        ]);
    }
    table.print();
    println!(
        "\nThe components disconnected by the cut keep completing sessions at\n\
         full rate: the daemon and its strictly neighbor-scoped ◇P₁ never\n\
         needed cross-component connectivity — the paper's §8 scalability\n\
         argument."
    );
    conclude("E13", all_ok);
}
