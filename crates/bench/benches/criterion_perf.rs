//! Statistical micro-benchmarks (Criterion).
//!
//! Complements `e9_perf`: per-operation costs of the building blocks —
//! the dining state machine's event handler, the simulator kernel, the
//! coloring algorithms, and an end-to-end contended scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ekbd_dining::{DiningAlgorithm, DiningInput, DiningMsg, DiningProcess};
use ekbd_graph::{coloring, topology, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;
use std::collections::BTreeSet;
use std::hint::black_box;

/// Cost of one dining-process event (ping round-trip on a δ=8 star hub).
fn bench_handle(c: &mut Criterion) {
    let g = topology::star(9);
    let colors = coloring::greedy(&g);
    let nobody: BTreeSet<ProcessId> = BTreeSet::new();
    c.bench_function("dining_handle_ping", |b| {
        let mut proc_ = DiningProcess::from_graph(&g, &colors, ProcessId(0));
        let mut sends = Vec::with_capacity(16);
        b.iter(|| {
            sends.clear();
            proc_.handle(
                DiningInput::Message {
                    from: ProcessId(3),
                    msg: DiningMsg::Ping,
                },
                &nobody,
                &mut sends,
            );
            black_box(&sends);
        });
    });
}

/// Cost of a full contended scenario end to end, by ring size.
fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_ring");
    group.sample_size(10);
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let report = Scenario::new(topology::ring(n))
                    .seed(7)
                    .workload(Workload {
                        sessions: 5,
                        think: (1, 10),
                        eat: (1, 10),
                    })
                    .horizon(Time(100_000))
                    .run_algorithm1();
                black_box(report.total_eat_sessions())
            });
        });
    }
    group.finish();
}

/// Coloring algorithms on a mid-size random graph.
fn bench_coloring(c: &mut Criterion) {
    let g = ekbd_graph::random::connected_gnp(200, 0.05, 11);
    c.bench_function("coloring_greedy_200", |b| {
        b.iter(|| black_box(coloring::greedy(&g)))
    });
    c.bench_function("coloring_dsatur_200", |b| {
        b.iter(|| black_box(coloring::dsatur(&g)))
    });
}

/// The doorway algorithms handling the same hot-path event — a ping from a
/// genuine neighbor arriving at the thinking δ=8 hub — for a like-for-like
/// cost comparison. (Each iteration sends one ack and leaves the state
/// unchanged, so the measurement is steady.)
fn bench_algorithms(c: &mut Criterion) {
    use ekbd_baselines::ChoySinghProcess;
    use ekbd_dining::BudgetedDiningProcess;
    let g = topology::star(9);
    let colors = coloring::greedy(&g);
    let nobody: BTreeSet<ProcessId> = BTreeSet::new();
    let mut group = c.benchmark_group("handle_ping_at_hub");
    let input = || DiningInput::Message {
        from: ProcessId(3),
        msg: DiningMsg::Ping,
    };
    group.bench_function("algorithm1", |b| {
        let mut proc_ = DiningProcess::from_graph(&g, &colors, ProcessId(0));
        let mut sends = Vec::with_capacity(4);
        b.iter(|| {
            sends.clear();
            proc_.handle(input(), &nobody, &mut sends);
            black_box(&sends);
        });
    });
    group.bench_function("budgeted_m3", |b| {
        let mut proc_ = BudgetedDiningProcess::from_graph(&g, &colors, ProcessId(0), 3);
        let mut sends = Vec::with_capacity(4);
        b.iter(|| {
            sends.clear();
            proc_.handle(input(), &nobody, &mut sends);
            black_box(&sends);
        });
    });
    group.bench_function("choy_singh", |b| {
        let mut proc_ = ChoySinghProcess::from_graph(&g, &colors, ProcessId(0));
        let mut sends = Vec::with_capacity(4);
        b.iter(|| {
            sends.clear();
            proc_.handle(input(), &nobody, &mut sends);
            black_box(&sends);
        });
    });
    group.finish();
}

/// Heartbeat detector hot paths: timer tick (send + check) and heartbeat
/// receipt, at fan-out 8.
fn bench_detector(c: &mut Criterion) {
    use ekbd_detector::{
        DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, HeartbeatConfig,
        HeartbeatDetector,
    };
    use ekbd_sim::Time;
    let neighbors: Vec<ProcessId> = (1..9).map(ProcessId::from).collect();
    c.bench_function("heartbeat_timer_tick", |b| {
        let mut d = HeartbeatDetector::new(HeartbeatConfig::default(), neighbors.clone());
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            let mut out = DetectorOutput::new();
            d.handle(
                DetectorEvent::Timer {
                    now: Time(now),
                    tag: 1,
                },
                &mut out,
            );
            black_box(out.sends.len())
        });
    });
    c.bench_function("heartbeat_receive", |b| {
        let mut d = HeartbeatDetector::new(HeartbeatConfig::default(), neighbors.clone());
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let mut out = DetectorOutput::new();
            d.handle(
                DetectorEvent::Message {
                    now: Time(now),
                    from: ProcessId(3),
                    msg: DetectorMsg::Heartbeat,
                },
                &mut out,
            );
            black_box(out.changed)
        });
    });
}

criterion_group!(
    benches,
    bench_handle,
    bench_scenario,
    bench_coloring,
    bench_algorithms,
    bench_detector
);
criterion_main!(benches);
