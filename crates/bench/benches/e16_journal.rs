//! E16 — beyond the paper: crash-consistent state journals and the
//! readmission-time savings of resuming from stable storage.
//!
//! PR 2's crash-recovery layer restarts *blank*: every edge runs the
//! rejoin handshake and receives the canonical initial placement (fork at
//! the higher color, token at the lower), so a low-color restarter comes
//! back fork-less and pays extra round trips to eat again. The journal
//! (`ekbd-journal`) commits the per-edge fork/token/deferred state and
//! doorway phase on every transition; on restart the process replays it
//! and runs the cheap `JournalResume`/`ResumeAck` confirmation instead,
//! keeping the forks it held when it crashed. Checks:
//!
//! * **Readmission savings** (per topology, ring-8 / clique-6 / grid-3x4 /
//!   Gnp-12-0.3): across seeded runs with two crash+restart pairs each,
//!   the *median time-to-readmission* of journaled clean restarts is
//!   strictly below the blank-restart baseline, with every run wait-free
//!   and mistake-free.
//! * **Storage-fault resilience** (ring-8): under every corruption mode —
//!   torn write, single-bit rot, stale snapshot, dropped sync — the
//!   restart degrades safely (undecodable journals are detected and
//!   routed to the blank path) with zero ◇WX mistakes and no starvation.
//! * **Partition-tolerant rejoin** (ring-8): a restart whose
//!   `JournalResume` is cut off by a partition keeps the edges suppressed
//!   (no algorithm traffic) until the heal, then still fast-resumes.
//!
//! Set `E16_QUICK=1` for a reduced seed sweep (CI).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::{BlankReason, RestartPath};
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_harness::{RunReport, Scenario, Workload};
use ekbd_journal::{StorageFault, StorageFaultPlan};
use ekbd_metrics::ReadmissionBreakdown;
use ekbd_sim::Time;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

/// Two crash+restart pairs. The victims (p0 and p2) are *low-color*
/// processes on every Part A topology: the canonical placement a blank
/// rejoin imposes (fork at the higher color) sends them back fork-less,
/// so their restarts are exactly where journaled truth and canonical
/// amnesia differ. (A high-color victim is gifted its forks by fiat — the
/// rewrite robs its neighbors, but that cost is invisible to the victim's
/// own readmission time.)
fn scenario(graph: ConflictGraph, seed: u64) -> Scenario {
    base(graph, seed)
        .crash(p(0), Time(700))
        .recover(p(0), Time(2_400))
        .crash(p(2), Time(1_100))
        .recover(p(2), Time(3_000))
}

fn base(graph: ConflictGraph, seed: u64) -> Scenario {
    Scenario::new(graph)
        .seed(seed)
        .perfect_oracle()
        .workload(Workload {
            sessions: 10,
            think: (1, 30),
            eat: (1, 8),
        })
        .horizon(Time(150_000))
}

/// Samples `(journaled, time_to_readmission)` for one run, gating on the
/// run's own health and on each restart taking the expected path.
fn sample(report: &RunReport, journaled: bool, ok: &mut bool) -> Vec<(bool, Option<u64>)> {
    *ok &= report.progress().wait_free();
    *ok &= report.exclusion().total() == 0;
    report
        .readmissions()
        .iter()
        .map(|r| {
            match r.path {
                Some(RestartPath::Journal { resumed, .. }) => {
                    *ok &= journaled && resumed > 0;
                }
                Some(RestartPath::Blank {
                    reason: BlankReason::Disabled,
                }) => *ok &= !journaled,
                _ => *ok = false,
            }
            (journaled, r.time_to_readmission())
        })
        .collect()
}

fn main() {
    banner(
        "E16",
        "journaled clean restarts readmit strictly faster than blank restarts, and every storage corruption mode degrades safely",
    );
    let quick = std::env::var("E16_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let seeds: Vec<u64> = if quick {
        (42..=45).collect()
    } else {
        (42..=49).collect()
    };
    println!(
        "Each run: p0 crashes at 700 and restarts at 2400, p2 crashes at\n\
         1100 and restarts at 3000. Both victims are low-color, so a blank\n\
         restart's canonical placement returns them fork-less; the journal\n\
         instead returns the state they actually held. Perfect oracle, 10\n\
         sessions per process, {} seeds per topology.{}\n",
        seeds.len(),
        if quick { " (E16_QUICK)" } else { "" }
    );

    let topologies: Vec<(&str, ConflictGraph)> = vec![
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("grid-3x4", topology::grid(3, 4)),
        ("gnp-12-0.3", random::connected_gnp(12, 0.3, 9)),
    ];
    let mut all_ok = true;

    // ---- Part A: readmission-time savings --------------------------------
    let mut table = Table::new(&[
        "topology",
        "restarts",
        "median blank (ticks)",
        "median journal (ticks)",
        "saved",
        "fast resumes",
        "verdict",
    ]);
    for (name, graph) in &topologies {
        let mut ok = true;
        let mut samples: Vec<(bool, Option<u64>)> = Vec::new();
        let mut fast_resumes = 0;
        for &seed in &seeds {
            let blank = scenario(graph.clone(), seed).run_recoverable();
            let journaled = scenario(graph.clone(), seed)
                .journal(true)
                .run_recoverable();
            samples.extend(sample(&blank, false, &mut ok));
            samples.extend(sample(&journaled, true, &mut ok));
            fast_resumes += journaled
                .recovery
                .map(|s| s.fast_resumes)
                .unwrap_or_default();
        }
        let breakdown = ReadmissionBreakdown::of(samples);
        ok &= breakdown.unreadmitted == 0;
        ok &= breakdown.journal_faster() == Some(true);
        all_ok &= ok;
        table.row([
            name.to_string(),
            format!("{}+{}", breakdown.blank.count, breakdown.journal.count),
            breakdown.blank.p50.to_string(),
            breakdown.journal.p50.to_string(),
            format!(
                "{}",
                breakdown.blank.p50 as i64 - breakdown.journal.p50 as i64
            ),
            fast_resumes.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // ---- Part B: storage-fault resilience --------------------------------
    println!(
        "\nStorage faults (ring-8, fault on p0's journal): every corruption\n\
         mode must end readmitted with zero ◇WX mistakes; undecodable\n\
         journals (torn, rot) must be detected and rebooted blank.\n"
    );
    let modes: [(&str, StorageFault); 4] = [
        ("torn-write", StorageFault::TornWrite),
        ("bit-rot", StorageFault::BitRot),
        ("stale-snapshot", StorageFault::StaleSnapshot),
        ("dropped-sync", StorageFault::DroppedSync),
    ];
    let mut table = Table::new(&[
        "fault",
        "p0 restart path",
        "readmitted",
        "mistakes",
        "stale-refuted",
        "verdict",
    ]);
    for (label, mode) in modes {
        let mut ok = true;
        let mut path_str = String::new();
        let mut stale_refuted = 0u32;
        for &seed in &seeds {
            let report = scenario(topology::ring(8), seed)
                .storage_faults(StorageFaultPlan::new().seed(seed).fault(p(0), mode))
                .run_recoverable();
            ok &= report.progress().wait_free();
            ok &= report.exclusion().total() == 0;
            let ra = report.readmissions();
            ok &= ra.iter().all(|r| r.first_eat.is_some());
            let p0 = ra
                .iter()
                .find(|r| r.process == p(0))
                .and_then(|r| r.path)
                .expect("p0 restart logged");
            if matches!(mode, StorageFault::TornWrite | StorageFault::BitRot) {
                ok &= p0
                    == RestartPath::Blank {
                        reason: BlankReason::Corrupt,
                    };
            }
            if let RestartPath::Journal { stale, .. } = p0 {
                stale_refuted += stale;
            }
            if seed == seeds[0] {
                path_str = format!("{p0:?}");
            }
        }
        // A stale snapshot decodes, so it reaches JournalResume — and the
        // sequence comparison must refute it on at least one edge across
        // the sweep (whether a given edge is refutable depends on whether
        // the suppressed final commit's sends were ever observed; the
        // per-edge fork/token check catches the rest either way).
        if matches!(mode, StorageFault::StaleSnapshot) {
            ok &= stale_refuted > 0;
        }
        all_ok &= ok;
        table.row([
            label.to_string(),
            path_str,
            "all".into(),
            "0".into(),
            stale_refuted.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // ---- Part C: partition-tolerant rejoin -------------------------------
    println!(
        "\nPartition-tolerant rejoin (ring-8): p0 restarts at 2400 inside a\n\
         partition (2000..=9000) cutting it from every neighbor; its resume\n\
         probes die, the unsynced edges carry no algorithm traffic, and the\n\
         audit's retry completes the fast resume after the heal.\n"
    );
    let mut table = Table::new(&[
        "seed",
        "suppressed",
        "first eat",
        "path",
        "mistakes",
        "verdict",
    ]);
    for &seed in &seeds {
        let base = scenario(topology::ring(8), seed).journal(true);
        let plan = base
            .faults
            .clone()
            .partition(vec![p(0)], Time(2_000), Time(9_000));
        let report = base.faults(plan).run_recoverable();
        let stats = report.recovery.expect("recovery layer active");
        let ra = report.readmissions();
        let p0 = ra.iter().find(|r| r.process == p(0)).expect("p0 recovery");
        let first_eat = p0.first_eat;
        let mistakes = report.exclusion().total();
        let ok = report.progress().wait_free()
            && mistakes == 0
            && stats.suppressed > 0
            && first_eat.is_some_and(|t| t >= Time(9_000))
            && matches!(p0.path, Some(RestartPath::Journal { resumed, .. }) if resumed > 0);
        all_ok &= ok;
        table.row([
            seed.to_string(),
            stats.suppressed.to_string(),
            first_eat.map_or("never".into(), |t| t.0.to_string()),
            format!("{:?}", p0.path.expect("logged")),
            mistakes.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // ---- Part D: post-mortem replay matches the live restart log ---------
    println!(
        "\nPost-mortem replay (ring-8, clique-6): reconstructing each run's\n\
         restart narrative from the retained journal records alone must\n\
         reproduce every restart's path — boot source and per-edge\n\
         resumed/rejoined/stale-refuted split — exactly as the live\n\
         restart log recorded it.\n"
    );
    let mut table = Table::new(&["topology", "restarts", "replay-matched", "verdict"]);
    for (name, graph) in [
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
    ] {
        let mut ok = true;
        let mut matched = 0u32;
        let mut restarts = 0u32;
        for &seed in &seeds {
            let report = scenario(graph.clone(), seed)
                .journal(true)
                .run_recoverable();
            let replays = report.replay();
            let mut nth_restart: std::collections::HashMap<usize, u64> =
                std::collections::HashMap::new();
            for r in report.readmissions() {
                restarts += 1;
                let idx = r.process.index();
                // The k-th restart of a process is its incarnation k.
                let k = nth_restart.entry(idx).and_modify(|n| *n += 1).or_insert(1);
                let Some(RestartPath::Journal {
                    resumed,
                    rejoined,
                    stale,
                }) = r.path
                else {
                    ok = false;
                    continue;
                };
                let replayed = replays[idx]
                    .incarnations
                    .iter()
                    .find(|i| i.incarnation == *k);
                match replayed {
                    Some(i)
                        if i.boot == ekbd_journal::BootPath::Journal
                            && i.resync_counts() == (resumed, rejoined, stale) =>
                    {
                        matched += 1;
                    }
                    _ => ok = false,
                }
            }
        }
        ok &= restarts > 0 && matched == restarts;
        all_ok &= ok;
        table.row([
            name.to_string(),
            restarts.to_string(),
            matched.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // With E16_DUMP_DIR set, leave one representative journal directory
    // behind for `ekbd replay --dir` (CI smokes the CLI against it).
    if let Ok(dir) = std::env::var("E16_DUMP_DIR") {
        if !dir.is_empty() {
            let report = scenario(topology::ring(8), seeds[0])
                .journal(true)
                .run_recoverable();
            let dir = std::path::PathBuf::from(dir);
            report.dump_journals(&dir).expect("dump journal dir");
            println!("\njournals dumped to {}", dir.display());
        }
    }

    println!(
        "\nThe journal turns a restart from a renegotiation into a\n\
         confirmation: surviving forks are kept instead of re-earned, so\n\
         readmission is strictly faster — while every way the storage can\n\
         lie (torn, rotted, stale, unsynced) is either detected by the\n\
         CRC/structure checks or caught per edge by the exactly-one\n\
         consistency check, falling back to the blank path that PR 2\n\
         already proved safe."
    );
    conclude("E16", all_ok);
}
