//! E18 — beyond the paper: the unified chaos engine.
//!
//! Every earlier robustness gate (E13 partitions, E14 lossy channels,
//! E15 crash recovery, E16 storage damage, E17 churn) probes one fault
//! axis at a time. E18 composes them: a seeded generator draws
//! [`FaultSchedule`]s mixing channel noise, partitions, crash/recover
//! (with state corruption and storage damage), and membership churn, and
//! the invariant watchdog classifies every run. Checks:
//!
//! * **Composite sweep** (ring-8 / clique-6 / grid-3x4 / Gnp-12-0.3,
//!   16 seeds each at the default intensity): every schedule exercises at
//!   least two fault axes, every run classifies wait-free with zero
//!   post-stabilization exclusion mistakes, and every rerun is
//!   byte-identical. The axis-coverage summary shows which combinations
//!   the campaign actually composed.
//! * **Shrinker** (planted failure): a 16-event schedule hiding one
//!   never-healing partition must shrink deterministically — two
//!   independent shrinks produce byte-identical artifacts — to at most
//!   25% of the original event count, and the shrunk schedule must
//!   replay to the same failure class.
//! * **Regression replay**: every committed artifact under
//!   `tests/chaos-regressions/` must reproduce exactly the class recorded
//!   in its `expect` line (failing schedules stay failing; fixed bugs
//!   stay fixed).
//!
//! Set `E18_QUICK=1` for a reduced sweep (CI).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_chaos::{codec, ChannelNoise, ChaosEvent, Coverage, FaultSchedule, Intensity, RunClass};
use ekbd_graph::ProcessId;
use ekbd_harness::{run_chaos, shrink_failing};
use ekbd_journal::StorageFault;
use ekbd_sim::Time;

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// The planted known-bad schedule: fifteen events of survivable chaos
/// hiding one fatal never-healing partition of p3. The shrinker's job is
/// to find the needle.
fn planted_bad() -> FaultSchedule {
    FaultSchedule::new("ring-8", 77, Time(60_000))
        .event(ChaosEvent::Noise(ChannelNoise {
            loss: 0.02,
            dup: 0.01,
            reorder: 0.02,
            reorder_window: 8,
        }))
        .event(ChaosEvent::Partition {
            side: vec![p(3)],
            start: Time(50),
            heal: Time(60_000),
        })
        .event(ChaosEvent::Crash {
            process: p(1),
            at: Time(300),
        })
        .event(ChaosEvent::Recover {
            process: p(1),
            at: Time(1_500),
            corrupt: false,
        })
        .event(ChaosEvent::Storage {
            process: p(1),
            mode: StorageFault::TornWrite,
        })
        .event(ChaosEvent::Crash {
            process: p(5),
            at: Time(400),
        })
        .event(ChaosEvent::Recover {
            process: p(5),
            at: Time(1_600),
            corrupt: true,
        })
        .event(ChaosEvent::Storage {
            process: p(5),
            mode: StorageFault::BitRot,
        })
        .event(ChaosEvent::Crash {
            process: p(2),
            at: Time(600),
        })
        .event(ChaosEvent::Recover {
            process: p(2),
            at: Time(1_800),
            corrupt: false,
        })
        .event(ChaosEvent::Storage {
            process: p(2),
            mode: StorageFault::StaleSnapshot,
        })
        .event(ChaosEvent::Corrupt {
            process: p(4),
            at: Time(900),
        })
        .event(ChaosEvent::Corrupt {
            process: p(0),
            at: Time(1_000),
        })
        .event(ChaosEvent::Corrupt {
            process: p(2),
            at: Time(2_000),
        })
        .event(ChaosEvent::Join {
            process: p(7),
            at: Time(250),
        })
        .event(ChaosEvent::Leave {
            process: p(6),
            at: Time(1_200),
            graceful: true,
        })
}

fn main() {
    banner(
        "E18",
        "composite fault schedules stay wait-free; failing schedules shrink to minimal replayable artifacts",
    );
    let quick = std::env::var("E18_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let seeds: u64 = if quick { 4 } else { 16 };
    let topologies = ["ring-8", "clique-6", "grid-3x4", "gnp-12-0.3"];
    let intensity = Intensity::default_mix();
    println!(
        "Seeded composite schedules at the `{}` intensity: every schedule\n\
         mixes at least two fault axes packed into the live-hunger window,\n\
         and every run is executed twice — the byte-identical rerun is\n\
         itself an invariant. {} seeds per topology.{}\n",
        intensity.name,
        seeds,
        if quick { " (E18_QUICK)" } else { "" }
    );
    let mut all_ok = true;

    // ---- Part A: composite sweep -----------------------------------------
    let mut coverage = Coverage::new();
    let mut table = Table::new(&[
        "topology",
        "schedules",
        "wait-free",
        "mistakes after stab.",
        "deterministic",
        "verdict",
    ]);
    for topo in topologies {
        let mut wait_free = 0usize;
        let mut mistakes_after = 0usize;
        let mut deterministic = true;
        let mut ok = true;
        for seed in 0..seeds {
            let schedule = FaultSchedule::generate(topo, seed, &intensity)
                .unwrap_or_else(|e| panic!("{topo}/{seed}: {e}"));
            ok &= schedule.axes().len() >= 2;
            coverage.record(&schedule);
            let outcome = run_chaos(&schedule).unwrap_or_else(|e| panic!("{topo}/{seed}: {e}"));
            if outcome.class == RunClass::WaitFree {
                wait_free += 1;
            } else {
                println!(
                    "  FAILING: {topo}/{seed} -> {} (axes {:?})",
                    outcome.class,
                    schedule.axes()
                );
            }
            mistakes_after += outcome.mistakes_after;
            deterministic &= outcome.deterministic;
        }
        ok &= wait_free == seeds as usize && mistakes_after == 0 && deterministic;
        all_ok &= ok;
        table.row([
            topo.to_string(),
            seeds.to_string(),
            format!("{wait_free}/{seeds}"),
            mistakes_after.to_string(),
            deterministic.to_string(),
            verdict(ok),
        ]);
    }
    table.print();
    println!("\n{}", coverage.summary());

    // ---- Part B: the shrinker finds the needle ---------------------------
    println!(
        "\nShrinker: a {}-event schedule hides one never-healing partition\n\
         among crashes, corruption, storage damage, and churn. ddmin must\n\
         isolate it: deterministically, to at most 25% of the events, and\n\
         the shrunk schedule must reproduce the same class.\n",
        planted_bad().events.len()
    );
    let planted = planted_bad();
    let outcome = run_chaos(&planted).expect("planted schedule is valid");
    let planted_fails = outcome.class == RunClass::Stalled;
    all_ok &= planted_fails;
    let (small_a, stats) = shrink_failing(&planted, outcome.class);
    let (small_b, _) = shrink_failing(&planted, outcome.class);
    let shrink_deterministic = codec::encode(&small_a) == codec::encode(&small_b);
    let small_enough = stats.shrunk * 4 <= stats.original;
    let replays = run_chaos(&small_a).is_ok_and(|o| o.class == outcome.class);
    all_ok &= shrink_deterministic && small_enough && replays;
    let mut table = Table::new(&[
        "planted class",
        "events",
        "shrunk",
        "oracle runs",
        "deterministic",
        "replays",
        "verdict",
    ]);
    table.row([
        outcome.class.to_string(),
        stats.original.to_string(),
        stats.shrunk.to_string(),
        stats.tests.to_string(),
        shrink_deterministic.to_string(),
        replays.to_string(),
        verdict(planted_fails && shrink_deterministic && small_enough && replays),
    ]);
    table.print();
    for ev in &small_a.events {
        println!("  kept: {ev:?}");
    }

    // ---- Part C: committed regression artifacts --------------------------
    println!(
        "\nRegression replay: every committed .chaos artifact must reproduce\n\
         exactly the class its `expect` line records.\n"
    );
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos-regressions");
    let mut table = Table::new(&["artifact", "expect", "ran", "verdict"]);
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "chaos"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no committed artifacts under {}",
        dir.display()
    );
    for path in entries {
        let schedule = codec::read_artifact(&path).expect("artifact parses");
        let expected = schedule.expect.expect("artifact carries an expect line");
        let ran = run_chaos(&schedule).expect("artifact is valid").class;
        let ok = ran == expected;
        all_ok &= ok;
        table.row([
            path.file_name().unwrap().to_string_lossy().into_owned(),
            expected.to_string(),
            ran.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    println!(
        "\nThe single-axis gates each hold one theorem's ground; the chaos\n\
         engine patrols the space between them. Its first campaign caught a\n\
         real composite bug — membership notices sent to a crashed neighbor\n\
         were silently lost, wedging the recovered process on a departed\n\
         peer — and the shrinker reduced the repro to three events before\n\
         the fix (now pinned as a wait-free regression artifact)."
    );
    conclude("E18", all_ok);
}
