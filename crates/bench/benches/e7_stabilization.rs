//! E7 — §1 motivation: wait-free daemons enable self-stabilization under
//! crash faults.
//!
//! Claim: a self-stabilizing protocol scheduled by a wait-free daemon
//! converges despite crashes and transient faults (every correct process
//! keeps executing steps); under a crash-oblivious daemon, diners blocked
//! by a crashed neighbor starve, so convergence fails.
//!
//! Setup: graph coloring and maximal independent set under transient-fault
//! barrages, with and without a crash, scheduled by Algorithm 1
//! (adversarial ◇P₁) and by the Choy–Singh baseline. Dijkstra's K-state
//! token ring runs crash-free (a severed ring cannot circulate a token —
//! a limitation of the *protocol*, not the daemon).

use ekbd_baselines::ChoySinghProcess;
use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::DiningProcess;
use ekbd_graph::{topology, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;
use ekbd_stabilize::{
    ColoringProtocol, MisProtocol, Protocol, ScheduledRun, StabilizationConfig, TokenRingProtocol,
};

fn run_case<P: Protocol>(
    protocol: &P,
    daemon: &str,
    crash: bool,
    seed: u64,
) -> (bool, Option<Time>, u64, usize) {
    let graph = topology::grid(3, 3);
    let mut scenario = Scenario::new(graph)
        .seed(seed)
        .adversarial_oracle(Time(2_000), 50)
        .workload(Workload {
            sessions: 0,
            think: (1, 5),
            eat: (1, 8),
        })
        .horizon(Time(600_000));
    if crash {
        scenario = scenario.crash(ProcessId(4), Time(1_000));
    }
    let cfg = StabilizationConfig {
        seed: seed + 100,
        think: (1, 8),
        transient_faults: (0..12)
            .map(|k| (Time(4_000 + 400 * k), ProcessId::from((k as usize * 5) % 9)))
            .collect(),
    };
    let report = match daemon {
        "algorithm-1" => ScheduledRun::execute(protocol, scenario, &cfg, |s, p| {
            DiningProcess::from_graph(&s.graph, &s.colors, p)
        }),
        _ => ScheduledRun::execute(protocol, scenario, &cfg, |s, p| {
            ChoySinghProcess::from_graph(&s.graph, &s.colors, p)
        }),
    };
    (
        report.legitimate_at_end,
        report.converged_at,
        report.steps_executed,
        report.dining.progress().starving().len(),
    )
}

fn main() {
    banner(
        "E7",
        "§1 — daemon-scheduled self-stabilization: wait-free vs crash-oblivious",
    );
    let mut table = Table::new(&[
        "protocol",
        "daemon",
        "crash",
        "converged",
        "conv. time",
        "steps",
        "starved",
        "verdict",
    ]);
    let mut all_ok = true;
    type CaseFn = Box<dyn Fn(&str, bool, u64) -> (bool, Option<Time>, u64, usize)>;
    let cases: Vec<(&str, CaseFn)> = vec![
        (
            "coloring",
            Box::new(|d: &str, c: bool, s: u64| run_case(&ColoringProtocol::default(), d, c, s)),
        ),
        (
            "mis",
            Box::new(|d: &str, c: bool, s: u64| run_case(&MisProtocol, d, c, s)),
        ),
    ];
    for (pname, run) in cases {
        for daemon in ["algorithm-1", "choy-singh"] {
            for crash in [false, true] {
                let (legit, conv, steps, starved) = run(daemon, crash, 5);
                // Wait-free daemon must always converge; the crash-oblivious
                // one must fail to keep everyone scheduled under a crash
                // (starved > 0). (Its convergence may still happen by luck
                // if the starved processes' states were already fine.)
                let ok = match (daemon, crash) {
                    ("algorithm-1", _) => legit && starved == 0,
                    (_, false) => legit,
                    (_, true) => starved > 0,
                };
                all_ok &= ok;
                table.row([
                    pname.to_string(),
                    daemon.to_string(),
                    crash.to_string(),
                    legit.to_string(),
                    conv.map_or("—".into(), |t| t.to_string()),
                    steps.to_string(),
                    starved.to_string(),
                    verdict(ok),
                ]);
            }
        }
    }
    // Token ring, crash-free, scheduled by Algorithm 1 on the ring itself.
    let scenario = Scenario::new(topology::ring(5))
        .seed(3)
        .adversarial_oracle(Time(1_500), 40)
        .horizon(Time(600_000));
    let cfg = StabilizationConfig {
        seed: 9,
        think: (1, 6),
        transient_faults: vec![(Time(3_000), ProcessId(2)), (Time(3_500), ProcessId(4))],
    };
    let ring = ScheduledRun::execute(&TokenRingProtocol::new(7), scenario, &cfg, |s, p| {
        DiningProcess::from_graph(&s.graph, &s.colors, p)
    });
    let ok = ring.legitimate_at_end;
    all_ok &= ok;
    table.row([
        "token-ring".into(),
        "algorithm-1".into(),
        "false".into(),
        ring.legitimate_at_end.to_string(),
        ring.converged_at.map_or("—".into(), |t| t.to_string()),
        ring.steps_executed.to_string(),
        ring.dining.progress().starving().len().to_string(),
        verdict(ok),
    ]);
    table.print();
    conclude("E7", all_ok);
}
