//! E14 — beyond the paper: the theorems survive adversarial channels
//! behind a self-healing link layer.
//!
//! The paper's system model (§2) assumes reliable FIFO channels. This
//! experiment injects message loss, duplication, bounded reordering, and a
//! healing partition, and routes dining traffic through the `ekbd-link`
//! recovery layer (sequence numbers, cumulative acks, retransmission with
//! exponential backoff, duplicate suppression). Checks:
//!
//! * **Theorem 2 (wait-freedom)** and **Theorem 1 (◇WX)** hold across a
//!   loss sweep of 0–20% per edge, with no post-convergence mistakes.
//! * **Theorem 3 (◇2-BW)** holds in the convergence suffix.
//! * **§7 S2 restated:** over lossy channels the in-transit bound is per
//!   *distinct payloads* — the per-edge unacked high-water stays small
//!   even though retransmission copies are unbounded in principle.
//! * **§7 S3 (quiescence):** retransmission toward a crashed neighbor
//!   ceases once ◇P₁ suspects it — finitely many sends to the crashed.
//! * **Determinism:** a faulty run is a pure function of its seed.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_harness::{Scenario, Workload};
use ekbd_link::LinkConfig;
use ekbd_sim::{FaultPlan, ProcessId, Time};

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

fn lossy_scenario(loss: f64, seed: u64) -> Scenario {
    let mut faults = FaultPlan::new().duplication(0.02).reorder(0.05, 10);
    if loss > 0.0 {
        faults = faults.loss(loss);
    }
    Scenario::new(ekbd_graph::topology::ring(6))
        .seed(seed)
        .adversarial_oracle(Time(2_000), 40)
        .workload(Workload {
            sessions: 8,
            think: (1, 40),
            eat: (1, 10),
        })
        .faults(faults)
        .reliable_link(LinkConfig::default())
        .horizon(Time(200_000))
}

fn main() {
    banner(
        "E14",
        "beyond the paper — ◇WX, wait-freedom, ◇2-BW survive lossy/duplicating/reordering channels behind the link layer",
    );

    // Part 1: loss sweep. Every row also carries 2% duplication and 5%
    // reordering, so the link layer is exercised on all three fault axes.
    println!("loss sweep (ring-6, adversarial oracle converging at t=2000, 8 sessions/process):\n");
    let mut table = Table::new(&[
        "loss",
        "dropped",
        "retransmit ratio",
        "eat sessions",
        "starved",
        "mistakes after conv",
        "max overtakes",
        "max unacked/edge",
        "verdict",
    ]);
    let mut all_ok = true;
    for loss in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let report = lossy_scenario(loss, 42).run_algorithm1();
        let progress = report.progress();
        let link = report.link.expect("link layer enabled");
        let mistakes_after = report.exclusion().after(Time(2_000));
        let overtakes = report.fairness().max_overtakes_after(Time(2_000));
        let ok = progress.wait_free()
            && mistakes_after == 0
            && overtakes <= 2
            && link.delivered == link.payloads_sent;
        all_ok &= ok;
        table.row([
            format!("{:.0}%", loss * 100.0),
            report.messages_dropped.to_string(),
            format!("{:.3}", link.retransmit_ratio()),
            report.total_eat_sessions().to_string(),
            format!("{:?}", progress.starving()),
            mistakes_after.to_string(),
            overtakes.to_string(),
            link.max_unacked.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // Part 2: 10% loss plus a partition isolating {p0, p1} from t=500 to
    // t=3000, which then heals. The link layer retransmits across the heal.
    println!("\nhealed partition ({{p0,p1}} cut off 500..3000, 10% loss everywhere):\n");
    let partition_scenario = |seed: u64| {
        Scenario::new(ekbd_graph::topology::ring(6))
            .seed(seed)
            .adversarial_oracle(Time(2_000), 40)
            .workload(Workload {
                sessions: 6,
                think: (1, 30),
                eat: (1, 10),
            })
            .faults(
                FaultPlan::new()
                    .loss(0.10)
                    .partition(vec![p(0), p(1)], Time(500), Time(3_000)),
            )
            .reliable_link(LinkConfig::default())
            .horizon(Time(120_000))
    };
    let a = partition_scenario(7).run_algorithm1();
    let b = partition_scenario(7).run_algorithm1();
    let deterministic = a.events == b.events && a.link == b.link;
    let healed_ok = a.progress().wait_free()
        && a.exclusion().after(Time(2_000)) == 0
        && a.link.expect("link").delivered == a.link.expect("link").payloads_sent;
    all_ok &= deterministic && healed_ok;
    println!(
        "  wait-free: {}   mistakes after conv: {}   dropped: {}   retransmissions: {}",
        a.progress().wait_free(),
        a.exclusion().after(Time(2_000)),
        a.messages_dropped,
        a.link.expect("link").retransmissions,
    );
    println!(
        "  identical trace on re-run (same seed): {}   [{}]",
        deterministic,
        verdict(deterministic && healed_ok)
    );

    // Part 3: quiescence toward a crashed neighbor under 10% loss — the
    // retransmitter must not babble at the dead (§7 S3).
    println!("\nquiescence under loss (ring-5, p2 crashes at t=400, perfect oracle):\n");
    let report = Scenario::new(ekbd_graph::topology::ring(5))
        .seed(17)
        .perfect_oracle()
        .crash(p(2), Time(400))
        .workload(Workload {
            sessions: 8,
            think: (1, 30),
            eat: (1, 10),
        })
        .faults(FaultPlan::new().loss(0.10))
        .reliable_link(LinkConfig::default())
        .horizon(Time(120_000))
        .run_algorithm1();
    let q = report.quiescence();
    let quiescent = q.quiescent_by(report.horizon);
    let ok = report.progress().wait_free() && quiescent;
    all_ok &= ok;
    println!(
        "  sends to crashed: {}   last at: {:?}   quiescent: {}   [{}]",
        q.total(),
        q.last_send(),
        quiescent,
        verdict(ok)
    );

    println!(
        "\nWith sequence numbers, cumulative acks, and suspicion-gated\n\
         retransmission, the daemon's guarantees are insensitive to channel\n\
         loss up to 20% per edge: exactly-once FIFO delivery is restored\n\
         between correct processes, and the §7 in-transit bound reappears\n\
         as a bound on *distinct unacked payloads* per edge."
    );
    conclude("E14", all_ok);
}
