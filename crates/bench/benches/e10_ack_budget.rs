//! E10 — ablation: the doorway ack budget is the "k" in eventually
//! k-bounded waiting.
//!
//! Algorithm 1 grants one ack per neighbor per hungry session and achieves
//! ◇2-BW. Generalizing the `replied` bit to a budget of `m` acks predicts
//! ◇(m+1)-BW: `m` in-session grants plus at most one ack already in flight
//! when the session began. This experiment measures the worst suffix
//! overtaking for m ∈ {1, 2, 3, 4} and checks the `k = m + 1` staircase —
//! an ablation of the design choice behind the paper's title.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_dining::BudgetedDiningProcess;
use ekbd_graph::topology;
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

fn main() {
    banner(
        "E10",
        "ablation — ack budget m ⇒ eventual (m+1)-bounded waiting",
    );
    let mut table = Table::new(&[
        "ack budget m",
        "bound m+1",
        "max overtakes (suffix)",
        "tight?",
        "verdict",
    ]);
    // Lowest-priority hub star under heavy contention: the worst case for
    // overtaking, and the shape where the bound is reached.
    let g = topology::star(6);
    let mut colors = vec![1; 6];
    colors[0] = 0;
    let mut all_ok = true;
    for m in 1u32..=4 {
        let mut worst = 0usize;
        let seeds = 6;
        for seed in 0..seeds {
            let report = Scenario::new(g.clone())
                .colors(colors.clone())
                .seed(seed)
                .workload(Workload {
                    sessions: 120,
                    think: (1, 4),
                    eat: (6, 14),
                })
                .horizon(Time(500_000))
                .run_with(|s, p| BudgetedDiningProcess::from_graph(&s.graph, &s.colors, p, m));
            assert!(report.progress().wait_free());
            // Silent oracle, no crashes: the suffix is the whole run.
            worst = worst.max(report.fairness().max_overtakes());
        }
        let bound = (m + 1) as usize;
        let ok = worst <= bound;
        all_ok &= ok;
        table.row([
            m.to_string(),
            bound.to_string(),
            worst.to_string(),
            (worst == bound).to_string(),
            verdict(ok),
        ]);
    }
    table.print();
    println!(
        "\nShape: the measured worst overtaking tracks the predicted k = m + 1\n\
         staircase; m = 1 is Algorithm 1 (the paper's ◇2-BW)."
    );
    conclude("E10", all_ok);
}
