//! E8 — oracle quality and the ◇WX / perpetual-WX boundary.
//!
//! Claims (§1): ◇P suffices for wait-free dining under *eventual* weak
//! exclusion, but wait-free dining under *perpetual* weak exclusion is
//! impossible with ◇P [20] — mistakes before convergence are unavoidable
//! when the oracle misbehaves. With the perfect detector `P` (convergence
//! time 0) the run is mistake-free end to end.
//!
//! Setup: clique with one crash, scripted oracles of decreasing quality
//! (convergence time 0 = perfect, then 500 … 8000 with symmetric false
//! suspicions). Reported: total mistakes (grows with convergence time),
//! mistakes after convergence (always 0), wait-freedom (always true).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{topology, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

fn main() {
    banner(
        "E8",
        "◇P quality sweep — mistakes are pre-convergence only; P gives perpetual WX",
    );
    let mut table = Table::new(&[
        "oracle conv. time",
        "seeds",
        "mistakes(total)",
        "mistakes(after conv)",
        "wait-free",
        "verdict",
    ]);
    let graph = topology::clique(5);
    let mut all_ok = true;
    let mut totals = Vec::new();
    for conv in [0u64, 500, 2_000, 8_000] {
        let mut total = 0usize;
        let mut after = 0usize;
        let mut wait_free = true;
        let seeds = 6;
        for seed in 0..seeds {
            let base = Scenario::new(graph.clone())
                .seed(seed)
                .crash(ProcessId(1), Time(300))
                .workload(Workload {
                    // ~60 sessions x ~150 ticks ≈ 9000 ticks of activity:
                    // longer than the slowest oracle's convergence (8000),
                    // so later convergence exposes more mistake windows.
                    sessions: 60,
                    think: (1, 250),
                    eat: (5, 20),
                })
                .horizon(Time(250_000));
            let s = if conv == 0 {
                base.perfect_oracle()
            } else {
                base.adversarial_oracle(Time(conv), 25)
            };
            let report = s.run_algorithm1();
            let ex = report.exclusion();
            total += ex.total();
            after += ex.after(Time(conv));
            wait_free &= report.progress().wait_free();
        }
        totals.push(total);
        let ok = after == 0 && wait_free && (conv != 0 || total == 0);
        all_ok &= ok;
        table.row([
            if conv == 0 {
                "0 (perfect P)".into()
            } else {
                conv.to_string()
            },
            seeds.to_string(),
            total.to_string(),
            after.to_string(),
            wait_free.to_string(),
            verdict(ok),
        ]);
    }
    table.print();
    // Shape check: later convergence ⇒ at least as many opportunities for
    // mistakes; require the sweep to be non-trivial (some mistakes appear
    // once the oracle misbehaves long enough).
    let shape_ok = totals[0] == 0 && totals.last().copied().unwrap_or(0) > 0;
    println!(
        "\nShape: mistakes {:?} across convergence times [0, 500, 2000, 8000] —\n\
         zero under P, strictly positive once ◇P misbehaves long enough\n\
         (the impossibility of perpetual WX with ◇P, made quantitative).",
        totals
    );
    conclude("E8", all_ok && shape_ok);
}
