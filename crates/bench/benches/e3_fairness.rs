//! E3 — Theorem 3 (eventual 2-bounded waiting, ◇2-BW).
//!
//! Claim: every run has a suffix in which no live process starts eating
//! more than twice while a live neighbor stays continuously hungry.
//! Contrast: naive priority dining (no doorway) has no such bound — a
//! high-color neighbor can overtake a hungry low-color diner as often as
//! its appetite allows, and the overtaking grows with the run length.
//!
//! Setup: a star whose hub has the LOWEST color (worst case for priority
//! schemes) plus a clique, under heavy contention. Reported: the maximum
//! overtaking count in the convergence suffix for Algorithm 1 (bound: 2)
//! and overall for the baseline, at increasing session counts.

use ekbd_baselines::NaivePriorityProcess;
use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{topology, ConflictGraph};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

/// Star with hub colored 0 and leaves colored 1 (proper: leaves are not
/// adjacent to each other).
fn low_hub_star(n: usize) -> (ConflictGraph, Vec<u32>) {
    let g = topology::star(n);
    let mut colors = vec![1; n];
    colors[0] = 0;
    (g, colors)
}

fn main() {
    banner(
        "E3",
        "Theorem 3 — ◇2-BW: ≤2 overtakes in the suffix (vs naive priority dining)",
    );
    let converge = Time(800);
    let mut table = Table::new(&[
        "topology",
        "sessions",
        "algorithm",
        "max overtakes (suffix)",
        "bound",
        "verdict",
    ]);
    let mut all_ok = true;
    for sessions in [20u32, 60, 120] {
        for (name, graph, colors) in [
            {
                let (g, c) = low_hub_star(6);
                ("star-6 (low hub)", g, c)
            },
            {
                let g = topology::clique(5);
                let c = ekbd_graph::coloring::greedy(&g);
                ("clique-5", g, c)
            },
        ] {
            for alg in ["algorithm-1", "naive-priority"] {
                let mut worst = 0usize;
                let seeds = 4;
                for seed in 0..seeds {
                    let s = Scenario::new(graph.clone())
                        .colors(colors.clone())
                        .seed(seed)
                        .adversarial_oracle(converge, 30)
                        .workload(Workload {
                            sessions,
                            think: (1, 5),
                            eat: (5, 15),
                        })
                        .horizon(Time(400_000));
                    let report = if alg == "algorithm-1" {
                        s.run_algorithm1()
                    } else {
                        s.run_with(|sc, p| {
                            NaivePriorityProcess::from_graph(&sc.graph, &sc.colors, p)
                        })
                    };
                    worst = worst.max(report.fairness().max_overtakes_after(converge));
                }
                let (bound, ok) = if alg == "algorithm-1" {
                    ("2".to_string(), worst <= 2)
                } else {
                    ("none".to_string(), true) // characterization only
                };
                all_ok &= ok;
                table.row([
                    name.to_string(),
                    sessions.to_string(),
                    alg.to_string(),
                    worst.to_string(),
                    bound,
                    verdict(ok),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\nExpected shape: Algorithm 1 stays ≤ 2 regardless of session count;\n\
         naive-priority overtaking grows with the appetite of higher-priority\n\
         neighbors (no doorway, no bound)."
    );
    conclude("E3", all_ok);
}
