//! E11 — heartbeat ◇P₁ tuning under partial synchrony.
//!
//! The paper assumes a ◇P₁ module and cites its implementability under
//! partial synchrony [7, 13, 14]. This experiment characterizes the
//! implementation trade-off on the GST delay model: an aggressive initial
//! timeout detects crashes fast but pays false positives (and therefore
//! scheduling mistakes) before adapting; a conservative timeout is
//! mistake-free but slow to detect. In every configuration the dining
//! layer's eventual properties hold relative to the *measured*
//! convergence time — that is the robustness the paper buys by tolerating
//! unreliable detectors.

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_detector::{HeartbeatConfig, ProbeConfig};
use ekbd_graph::{topology, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_metrics::DetectorQualityReport;
use ekbd_sim::{DelayModel, Time};

fn main() {
    banner(
        "E11",
        "heartbeat ◇P₁ tuning — detection latency vs false positives vs mistakes",
    );
    let mut table = Table::new(&[
        "detector",
        "initial timeout",
        "false positives",
        "max detect latency",
        "complete",
        "mistakes(total)",
        "mistakes(after conv)",
        "wait-free",
        "verdict",
    ]);
    let mut all_ok = true;
    let mut fp_series = Vec::new();
    for (kind, initial_timeout) in [
        ("heartbeat", 15u64),
        ("heartbeat", 40),
        ("heartbeat", 120),
        ("heartbeat", 400),
        ("probe", 40),
        ("probe", 120),
        ("probe", 400),
    ] {
        let mut fps = 0u64;
        let mut latency = 0u64;
        let mut complete = true;
        let mut mistakes = 0usize;
        let mut after = 0usize;
        let mut wait_free = true;
        let seeds = 4;
        for seed in 0..seeds {
            let base = Scenario::new(topology::ring(6)).seed(seed);
            let base = if kind == "heartbeat" {
                base.heartbeat_oracle(HeartbeatConfig {
                    period: 10,
                    initial_timeout,
                    timeout_increment: 30,
                })
            } else {
                base.probe_oracle(ProbeConfig {
                    period: 10,
                    initial_timeout,
                    timeout_increment: 30,
                })
            };
            let report = base
                .delay(DelayModel::Gst {
                    gst: Time(1_200),
                    pre_max: 100,
                    delta: 6,
                })
                .crash(ProcessId(2), Time(2_500))
                .workload(Workload {
                    sessions: 50,
                    think: (1, 120),
                    eat: (1, 12),
                })
                .horizon(Time(400_000))
                .run_algorithm1();
            let quality = DetectorQualityReport::analyze(
                &report.graph,
                &report.suspicions,
                &report.crashes,
                report.horizon,
            );
            fps += quality.false_positives;
            complete &= quality.complete();
            latency = latency.max(quality.max_detection_latency().unwrap_or(0));
            let conv = report.detector_convergence();
            mistakes += report.exclusion().total();
            after += report.exclusion().after(conv);
            wait_free &= report.progress().wait_free();
        }
        if kind == "heartbeat" {
            fp_series.push(fps);
        }
        let ok = complete && after == 0 && wait_free;
        all_ok &= ok;
        table.row([
            kind.to_string(),
            initial_timeout.to_string(),
            fps.to_string(),
            latency.to_string(),
            complete.to_string(),
            mistakes.to_string(),
            after.to_string(),
            wait_free.to_string(),
            verdict(ok),
        ]);
    }
    table.print();
    let shape_ok = fp_series.first() >= fp_series.last();
    println!(
        "\nShape: false positives fall as the initial timeout grows ({:?});\n\
         regardless of tuning, completeness holds, post-convergence mistakes\n\
         are zero, and nobody starves — ◇P₁'s unreliability is fully absorbed.",
        fp_series
    );
    conclude("E11", all_ok && shape_ok);
}
