//! E17 — beyond the paper: dynamic membership under churn.
//!
//! The membership layer admits and retires processes at runtime: a joiner
//! is colored online ((δ+1) greedy over its present neighborhood, no
//! survivor ever recolors) and greets every conflict edge with the rejoin
//! handshake it shares with crash recovery; a graceful leaver drains its
//! edges, while a crash-stop departure leaves its forks to the audit's
//! departed-edge reclaim. Checks:
//!
//! * **Churn sweep** (ring-8 / clique-6 / grid-3x4 / Gnp-12-0.3, seeded
//!   churn at one event per ~400/100/50 ticks): every run stays wait-free
//!   with zero ◇WX mistakes for everyone present — in particular zero
//!   post-convergence mistakes for the continuously-present core — and
//!   every joiner reaches its first critical section (the join → first
//!   eat latency is reported per cell).
//! * **Scripted lifecycle** (ring-8): an explicit join / graceful leave /
//!   crash-stop leave / leave-then-rejoin-as-new-id plan lands every
//!   transition: joiners eat only after joining, leavers never eat after
//!   leaving, and the continuously-present survivors keep eating after
//!   the last change.
//! * **Determinism** (every sweep cell): re-running the same seed yields
//!   a byte-identical event trace.
//! * **Golden traces** (churn-free configs): attaching an *inert*
//!   membership plan changes nothing — the trace is byte-identical to a
//!   run with no membership configured at all.
//!
//! Set `E17_QUICK=1` for a reduced sweep (CI).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_harness::{RunReport, Scenario, Workload};
use ekbd_sim::{MembershipPlan, Time};

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

fn base(graph: ConflictGraph, seed: u64) -> Scenario {
    Scenario::new(graph)
        .seed(seed)
        .perfect_oracle()
        .workload(Workload {
            sessions: 8,
            think: (1, 30),
            eat: (1, 8),
        })
        .horizon(Time(120_000))
}

/// The core churn gate: wait-freedom and zero exclusion mistakes for
/// everyone not excused by a departure, total and post-convergence.
fn healthy(report: &RunReport) -> bool {
    let conv = report.detector_convergence();
    report.progress().wait_free()
        && report.exclusion().total() == 0
        && report.exclusion().after(conv) == 0
}

/// Byte-comparable rendering of the full scheduled-event trace.
fn trace(report: &RunReport) -> String {
    format!("{:?}", report.events)
}

fn main() {
    banner(
        "E17",
        "every-step exclusion, wait-freedom, and joiner admission hold through dynamic membership churn",
    );
    let quick = std::env::var("E17_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let seeds: Vec<u64> = if quick {
        (42..=43).collect()
    } else {
        (42..=47).collect()
    };
    let periods: &[u64] = if quick { &[400, 50] } else { &[400, 100, 50] };
    println!(
        "Seeded churn: about a quarter of each population joins and another\n\
         quarter leaves (mixed graceful/crash-stop), paced at one event per\n\
         ~period ticks. Perfect oracle, 8 sessions per process, {} seeds\n\
         per cell.{}\n",
        seeds.len(),
        if quick { " (E17_QUICK)" } else { "" }
    );

    let topologies: Vec<(&str, ConflictGraph)> = vec![
        ("ring-8", topology::ring(8)),
        ("clique-6", topology::clique(6)),
        ("grid-3x4", topology::grid(3, 4)),
        ("gnp-12-0.3", random::connected_gnp(12, 0.3, 9)),
    ];
    let mut all_ok = true;

    // ---- Part A: churn sweep ---------------------------------------------
    let mut table = Table::new(&[
        "topology",
        "period",
        "joins",
        "leaves",
        "median join→eat (ticks)",
        "mistakes",
        "deterministic",
        "verdict",
    ]);
    for (name, graph) in &topologies {
        for &period in periods {
            let mut ok = true;
            let mut joins = 0usize;
            let mut leaves = 0usize;
            let mut mistakes = 0usize;
            let mut admit: Vec<u64> = Vec::new();
            let mut deterministic = true;
            for &seed in &seeds {
                let scenario = base(graph.clone(), seed).churn(period);
                let report = scenario.run_recoverable();
                ok &= healthy(&report);
                mistakes += report.exclusion().total();
                joins += report.joins.len();
                leaves += report.departures.len();
                for a in report.admissions() {
                    // Every joiner must actually be admitted; the latency
                    // is the E17 headline number.
                    match a.time_to_first_eat() {
                        Some(lat) => admit.push(lat),
                        None => ok = false,
                    }
                }
                if seed == seeds[0] {
                    let again = base(graph.clone(), seed).churn(period).run_recoverable();
                    deterministic &= trace(&report) == trace(&again);
                }
            }
            ok &= deterministic;
            // Seeded churn is non-inert for every sweep population (n >= 6).
            ok &= joins > 0 && leaves > 0;
            admit.sort_unstable();
            all_ok &= ok;
            table.row([
                name.to_string(),
                period.to_string(),
                joins.to_string(),
                leaves.to_string(),
                admit
                    .get(admit.len() / 2)
                    .map_or("-".into(), |m| m.to_string()),
                mistakes.to_string(),
                deterministic.to_string(),
                verdict(ok),
            ]);
        }
    }
    table.print();

    // ---- Part B: scripted lifecycle --------------------------------------
    println!(
        "\nScripted lifecycle (ring-8): p2 joins at 3000, p4 leaves\n\
         gracefully at 30000, p6 crash-stops at 45000, and p5 is replaced\n\
         by the fresh id p3 at 60000. Joiners must eat only after joining,\n\
         leavers never after leaving, and the continuously-present p0, p1,\n\
         p7 — made hungry again at 70000, after the workload has long\n\
         drained — must still eat in the post-churn system.\n"
    );
    let mut table = Table::new(&[
        "seed",
        "p2 join→eat",
        "p3 join→eat",
        "leavers silent",
        "core eats after",
        "verdict",
    ]);
    for &seed in &seeds {
        let plan = MembershipPlan::new()
            .join(p(2), Time(3_000))
            .leave(p(4), Time(30_000))
            .crash_leave(p(6), Time(45_000))
            .replace(p(5), p(3), Time(60_000));
        let report = base(topology::ring(8), seed)
            .membership(plan)
            .hunger(p(0), Time(70_000))
            .hunger(p(1), Time(70_000))
            .hunger(p(7), Time(70_000))
            .run_recoverable();
        let mut ok = healthy(&report);
        let adm = report.admissions();
        let lat = |q: ProcessId| {
            adm.iter()
                .find(|a| a.process == q)
                .and_then(|a| a.time_to_first_eat())
        };
        ok &= lat(p(2)).is_some() && lat(p(3)).is_some();
        // No one may eat before joining or after leaving.
        let eats = |q: ProcessId| {
            report
                .events
                .iter()
                .filter(|e| e.process == q && e.obs == ekbd_dining::DiningObs::StartedEating)
                .map(|e| e.time)
                .collect::<Vec<_>>()
        };
        ok &= eats(p(2)).iter().all(|&t| t >= Time(3_000));
        ok &= eats(p(3)).iter().all(|&t| t >= Time(60_000));
        let leavers_silent = eats(p(4)).iter().all(|&t| t < Time(30_000))
            && eats(p(6)).iter().all(|&t| t < Time(45_000))
            && eats(p(5)).iter().all(|&t| t < Time(60_000));
        ok &= leavers_silent;
        let core_after = [0, 1, 7]
            .iter()
            .all(|&i| eats(p(i)).iter().any(|&t| t >= Time(70_000)));
        ok &= core_after;
        all_ok &= ok;
        table.row([
            seed.to_string(),
            lat(p(2)).map_or("never".into(), |l| l.to_string()),
            lat(p(3)).map_or("never".into(), |l| l.to_string()),
            leavers_silent.to_string(),
            core_after.to_string(),
            verdict(ok),
        ]);
    }
    table.print();

    // ---- Part C: golden traces on churn-free configs ---------------------
    println!(
        "\nGolden traces: a run with an inert membership plan attached must\n\
         be byte-identical to one with no membership configured — the\n\
         membership layer is pay-for-what-you-use.\n"
    );
    let mut table = Table::new(&["topology", "byte-identical", "verdict"]);
    for (name, graph) in &topologies {
        let plain = base(graph.clone(), seeds[0]).run_recoverable();
        let inert = base(graph.clone(), seeds[0])
            .membership(MembershipPlan::new())
            .run_recoverable();
        let ok = trace(&plain) == trace(&inert);
        all_ok &= ok;
        table.row([name.to_string(), ok.to_string(), verdict(ok)]);
    }
    table.print();

    println!(
        "\nMembership reuses the machinery recovery already proved out: a\n\
         join is a rejoin under a fresh identity, a graceful leave is a\n\
         drained teardown, and a crash-stop leave is one more thing the\n\
         audit reclaims — so churn never costs a continuously-present\n\
         process its safety or its next meal."
    );
    conclude("E17", all_ok);
}
