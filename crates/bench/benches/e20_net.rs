//! E20 — networked daemon-as-a-service: fault-tolerant sessions under
//! connection churn.
//!
//! The `ekbd-net` runtime maps network failures onto the paper's
//! crash-recovery fault model: a dead socket is `crash(p)`, a reconnect
//! with valid session credentials is `recover(p)` riding the journal
//! fast-resume path (falling back to the blank rejoin handshake). This
//! experiment exercises that mapping end to end over real loopback TCP:
//!
//! * **Churn phase** — a client fleet drives hungry/eat cycles against a
//!   `DaemonServer`; ≥ 25 % of the connections are hard-killed
//!   mid-session (no `Bye`). Every killed client must be readmitted with
//!   its session intact (`resumed`/`rejoined`, never `fresh`), every
//!   planned cycle must still complete (wait-freedom survives the
//!   transport), and the server-side scheduling trace must show **zero**
//!   exclusion mistakes after the last disturbance (Theorem 1 through a
//!   socket). Reported: p50/p99/p999 hungry→eat latency and per-kill
//!   readmission wall time.
//! * **Overload phase** — a fleet twice the admission cap connects at
//!   once. The server must shed the surplus with `Busy` (never queue it)
//!   while every *accepted* session completes all cycles with bounded
//!   p99 latency: shedding protects the admitted.
//!
//! Results go to stdout **and** `BENCH_e20.json` (override the path via
//! `E20_JSON`). Set `E20_QUICK=1` for the CI smoke run (smaller fleet,
//! fewer cycles; every gate still enforced).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::topology;
use ekbd_metrics::{ExclusionReport, Summary};
use ekbd_net::{
    run_load, AdmitPath, ClientConfig, DaemonServer, LoadPlan, LoadReport, ServerAddr, ServerConfig,
};
use ekbd_runtime::RuntimeConfig;
use ekbd_sim::Time;
use std::fmt::Write as _;

/// One phase's measurements, ready for the table and the JSON artifact.
struct Phase {
    name: &'static str,
    clients: usize,
    cap: usize,
    report: LoadReport,
    latency: Summary,
    shed_busy: u64,
    admitted: u64,
    wall_s: f64,
    pass: bool,
}

fn loopback() -> ServerAddr {
    ServerAddr::Tcp("127.0.0.1:0".into())
}

fn main() {
    let quick = std::env::var("E20_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    banner(
        "E20",
        "networked sessions — kill ≥25% of connections mid-run, sessions survive",
    );
    if quick {
        println!("(E20_QUICK smoke mode: smaller fleet and fewer cycles; all gates enforced)\n");
    }

    let (clients, sessions, kill_fraction) = if quick { (5, 4, 0.4) } else { (8, 12, 0.375) };
    let journal_dir = std::env::temp_dir().join(format!("ekbd-e20-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("create journal dir");

    // ---- Churn phase: kills + journal-backed readmission. ----
    let server_cfg = ServerConfig {
        runtime: RuntimeConfig {
            journal_dir: Some(journal_dir.clone()),
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    };
    let max_sessions = server_cfg.max_sessions;
    let server = DaemonServer::start(topology::ring(clients), &loopback(), server_cfg)
        .expect("start churn server");
    let addr = server.local_addr().clone();
    let plan = LoadPlan {
        clients,
        sessions_per_client: sessions,
        think_ms: 2,
        kill_fraction,
        seed: 0xE20,
        grant_timeout_ms: 5_000,
        ..LoadPlan::default()
    };
    let start = std::time::Instant::now();
    let churn_report = run_load(&addr, &plan);
    let churn_wall_s = start.elapsed().as_secs_f64();
    let run = server.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);

    // Safety through the socket: exclusion mistakes in the server-side
    // trace, split at the end of the last disturbance (the final restart
    // the runtime performed). Theorem 1 allows mistakes only before the
    // detector reconverges; after the last readmission there must be none.
    let horizon = run.events.last().map_or(Time(0), |e| e.time);
    let exclusion =
        ExclusionReport::analyze(&topology::ring(clients), &run.events, &|_| None, horizon);
    let last_disturbance_ms = run.restarts.iter().map(|r| r.at_ms).max().unwrap_or(0);
    let mistakes_after = exclusion.after(Time(last_disturbance_ms));

    let min_kills = clients.div_ceil(4); // the ≥ 25 % connection-kill quota
    let g_errors = churn_report.errors.is_empty();
    let g_kills = churn_report.killed >= min_kills;
    let g_readmit = churn_report.reconnected == churn_report.killed
        && churn_report
            .readmissions
            .iter()
            .all(|r| r.path != AdmitPath::Fresh)
        && run.stats.resumed + run.stats.rejoined == churn_report.killed as u64;
    let g_waitfree = churn_report.completed_sessions == churn_report.planned_sessions;
    let g_exclusion = mistakes_after == 0;
    let churn_pass = g_errors && g_kills && g_readmit && g_waitfree && g_exclusion;

    let churn = Phase {
        name: "churn",
        clients,
        cap: max_sessions,
        latency: Summary::of(churn_report.latencies_ms.iter().copied()),
        shed_busy: run.stats.shed_busy,
        admitted: run.stats.fresh,
        report: churn_report,
        wall_s: churn_wall_s,
        pass: churn_pass,
    };

    // ---- Overload phase: fleet at 2× the admission cap, no kills. ----
    // Surplus clients must be shed with `Busy` after their retry budget;
    // the accepted half must complete every cycle with bounded latency.
    let cap = (clients / 2).max(2);
    let overload_server_cfg = ServerConfig {
        max_sessions: cap,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(clients), &loopback(), overload_server_cfg)
        .expect("start overload server");
    let addr = server.local_addr().clone();
    let overload_plan = LoadPlan {
        clients,
        sessions_per_client: sessions,
        think_ms: 2,
        kill_fraction: 0.0,
        seed: 0xE20 + 1,
        grant_timeout_ms: 5_000,
        client: ClientConfig {
            max_attempts: 3,
            ..ClientConfig::default()
        },
        multiplex: 1,
    };
    let start = std::time::Instant::now();
    let overload_report = run_load(&addr, &overload_plan);
    let overload_wall_s = start.elapsed().as_secs_f64();
    let overload_run = server.shutdown();

    const P99_BOUND_MS: u64 = 1_000;
    let admitted = overload_run.stats.fresh;
    let overload_latency = Summary::of(overload_report.latencies_ms.iter().copied());
    let g_cap = admitted == cap as u64;
    let g_shed = overload_run.stats.shed_busy > 0
        && overload_report.errors.len() == clients - admitted as usize;
    let g_accepted_complete = overload_report.completed_sessions == admitted as usize * sessions;
    let g_bounded = overload_latency.p99 <= P99_BOUND_MS;
    let overload_pass = g_cap && g_shed && g_accepted_complete && g_bounded;

    let overload = Phase {
        name: "overload",
        clients,
        cap,
        latency: overload_latency,
        shed_busy: overload_run.stats.shed_busy,
        admitted,
        report: overload_report,
        wall_s: overload_wall_s,
        pass: overload_pass,
    };

    // ---- Tables. ----
    let mut table = Table::new(&[
        "phase",
        "clients",
        "cap",
        "admitted",
        "planned",
        "done",
        "killed",
        "readmit",
        "shed busy",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "wall s",
        "verdict",
    ]);
    for p in [&churn, &overload] {
        table.row([
            p.name.to_string(),
            p.clients.to_string(),
            p.cap.to_string(),
            p.admitted.to_string(),
            p.report.planned_sessions.to_string(),
            p.report.completed_sessions.to_string(),
            p.report.killed.to_string(),
            p.report.reconnected.to_string(),
            p.shed_busy.to_string(),
            p.latency.p50.to_string(),
            p.latency.p99.to_string(),
            p.latency.p999.to_string(),
            format!("{:.3}", p.wall_s),
            verdict(p.pass),
        ]);
    }
    table.print();

    println!("\nReadmissions (kill → Welcome):\n");
    let mut readmit_table = Table::new(&["process", "path", "ms"]);
    for r in &churn.report.readmissions {
        readmit_table.row([
            format!("p{}", r.process),
            r.path.to_string(),
            r.ms.to_string(),
        ]);
    }
    readmit_table.print();
    let readmit = Summary::of(churn.report.readmissions.iter().map(|r| r.ms));

    println!(
        "\nkill quota (≥25%) .......... {} ({}/{} killed, {} required)",
        verdict(g_kills),
        churn.report.killed,
        clients,
        min_kills
    );
    println!(
        "readmission, never fresh .... {} (server: {} resumed / {} rejoined)",
        verdict(g_readmit),
        run.stats.resumed,
        run.stats.rejoined
    );
    println!(
        "wait-freedom end to end ..... {} ({}/{} cycles)",
        verdict(g_waitfree),
        churn.report.completed_sessions,
        churn.report.planned_sessions
    );
    println!(
        "post-disturbance exclusion .. {} ({} total, {} after t={} ms)",
        verdict(g_exclusion),
        exclusion.total(),
        mistakes_after,
        last_disturbance_ms
    );
    println!(
        "overload shed, not queued ... {} ({} Busy sheds, {} clients refused)",
        verdict(g_shed),
        overload.shed_busy,
        overload.report.errors.len()
    );
    println!(
        "accepted p99 bounded ........ {} ({} ms ≤ {} ms)",
        verdict(g_bounded),
        overload.latency.p99,
        P99_BOUND_MS
    );

    // ---- JSON artifact. ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E20\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"phases\": [");
    for (i, p) in [&churn, &overload].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"phase\": \"{}\", \"clients\": {}, \"cap\": {}, \"admitted\": {}, \
             \"planned_sessions\": {}, \"completed_sessions\": {}, \"killed\": {}, \
             \"reconnected\": {}, \"shed_busy\": {}, \"busy_retries\": {}, \
             \"latency_ms\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}}, \"wall_s\": {:.6}, \"pass\": {}}}",
            p.name,
            p.clients,
            p.cap,
            p.admitted,
            p.report.planned_sessions,
            p.report.completed_sessions,
            p.report.killed,
            p.report.reconnected,
            p.shed_busy,
            p.report.busy_retries,
            p.latency.count,
            p.latency.p50,
            p.latency.p99,
            p.latency.p999,
            p.latency.max,
            p.wall_s,
            p.pass
        );
    }
    json.push_str("\n  ],\n  \"readmissions\": [");
    for (i, r) in churn.report.readmissions.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"process\": {}, \"path\": \"{}\", \"ms\": {}}}",
            r.process, r.path, r.ms
        );
    }
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"readmission_ms\": {{\"count\": {}, \"p50\": {}, \"max\": {}}},",
        readmit.count, readmit.p50, readmit.max
    );
    let _ = writeln!(
        json,
        "  \"exclusion\": {{\"total\": {}, \"after_last_disturbance\": {}, \
         \"last_disturbance_ms\": {last_disturbance_ms}}},",
        exclusion.total(),
        mistakes_after
    );
    let _ = writeln!(
        json,
        "  \"server\": {{\"accepted\": {}, \"fresh\": {}, \"resumed\": {}, \"rejoined\": {}, \
         \"shed_slow\": {}, \"heartbeat_drops\": {}, \"protocol_errors\": {}}}",
        run.stats.accepted,
        run.stats.fresh,
        run.stats.resumed,
        run.stats.rejoined,
        run.stats.shed_slow,
        run.stats.heartbeat_drops,
        run.stats.protocol_errors
    );
    json.push('}');
    json.push('\n');
    let json_path = std::env::var("E20_JSON").unwrap_or_else(|_| "BENCH_e20.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nJSON artifact ............... {json_path}"),
        Err(e) => println!("\nJSON artifact ............... FAILED to write {json_path}: {e}"),
    }

    conclude("E20", churn.pass && overload.pass);
}
