//! E6 — §7 quiescence with respect to crashed processes.
//!
//! Claim: correct processes eventually stop sending messages to crashed
//! neighbors — at most one final ping and one final fork request per
//! neighbor can remain pending forever.
//!
//! Setup: crash one process mid-run and keep its neighbors busy for a long
//! time afterwards. Reported: a time series of messages addressed to the
//! crashed process per bucket (must decay to zero and stay), the total,
//! and the paper's per-neighbor bound check (≤ 2 messages per live
//! neighbor after the crash: one ping + one token).

use ekbd_bench::{banner, conclude, verdict, Table};
use ekbd_graph::{topology, ProcessId};
use ekbd_harness::{Scenario, Workload};
use ekbd_sim::Time;

fn main() {
    banner("E6", "§7 — communication with crashed processes ceases");
    let crash_at = Time(2_000);
    let horizon = Time(400_000);
    let victim = ProcessId(2);
    let mut all_ok = true;

    let mut table = Table::new(&[
        "topology",
        "oracle",
        "msgs to crashed",
        "bound (4·deg)",
        "last send",
        "quiet for",
        "verdict",
    ]);
    let mut series: Vec<(String, Vec<usize>)> = Vec::new();

    for (name, graph) in [
        ("ring-6", topology::ring(6)),
        ("clique-5", topology::clique(5)),
    ] {
        for oracle in ["perfect", "adversarial"] {
            let mut s = Scenario::new(graph.clone())
                .seed(13)
                .crash(victim, crash_at)
                .workload(Workload {
                    // ~60 sessions x ~90 ticks ≈ 5400 ticks: the neighbors
                    // keep dining long after the victim crashes at t=2000.
                    sessions: 60,
                    think: (1, 150),
                    eat: (1, 10),
                })
                .horizon(horizon);
            s = if oracle == "perfect" {
                s.perfect_oracle()
            } else {
                s.adversarial_oracle(Time(5_000), 60)
            };
            let report = s.run_algorithm1();
            let q = report.quiescence();
            let deg = graph.degree(victim);
            // After the crash, each live neighbor can send at most one new
            // ping and one fork request (both pend forever), plus one ack
            // and one fork answering requests the victim made before dying.
            let bound = 4 * deg as u64;
            let last = q.last_send().unwrap_or(Time::ZERO);
            let quiet_for = horizon.since(last);
            let ok = q.total() <= bound && q.quiescent_by(horizon);
            all_ok &= ok;
            table.row([
                name.to_string(),
                oracle.to_string(),
                q.total().to_string(),
                bound.to_string(),
                format!("{last}"),
                quiet_for.to_string(),
                verdict(ok),
            ]);

            // Bucketized decay series ("figure"): sends to the victim per
            // 2000-tick bucket for the first 10 buckets after the crash.
            let mut buckets = vec![0usize; 10];
            for &(t, _, to) in &report.sends_to_crashed {
                if to == victim {
                    let b = t.since(crash_at) / 2_000;
                    if (b as usize) < buckets.len() {
                        buckets[b as usize] += 1;
                    }
                }
            }
            series.push((format!("{name}/{oracle}"), buckets));
        }
    }
    table.print();

    println!("\nDecay series — sends to the crashed process per 2000-tick bucket after the crash:");
    let mut fig = Table::new(&[
        "run", "b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9",
    ]);
    for (run, buckets) in &series {
        let mut row = vec![run.clone()];
        row.extend(buckets.iter().map(|c| c.to_string()));
        fig.row_vec(row);
        // The tail must be silent.
        all_ok &= buckets[3..].iter().all(|&c| c == 0);
    }
    fig.print();
    conclude("E6", all_ok);
}
