//! Journal backends and the shareable handle.

use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How many committed records [`MemJournal`] retains; the storage fault
/// layer reaches back into this window to serve stale snapshots and to
/// model dropped syncs.
pub const MEM_HISTORY: usize = 16;

/// A stable-storage backend for write-ahead journal records.
///
/// Backends store opaque bytes — encoding, checksums, and validation live
/// in [`crate::codec`] — so a byte-level fault injector can sit between
/// the algorithm and the store without understanding the format.
pub trait JournalStore: Send {
    /// Durably replaces the journal contents with `record` (one commit
    /// per state transition; only the latest committed record matters
    /// for recovery).
    fn commit(&mut self, record: &[u8]);

    /// Reads back the journal, `None` when nothing has ever been
    /// committed (first boot) or the backing storage is gone.
    fn load(&mut self) -> Option<Vec<u8>>;
}

/// In-memory backend for the deterministic simulator.
///
/// Keeps a bounded history of recent commits (most recent last) so the
/// fault layer can serve older records.
#[derive(Clone, Debug, Default)]
pub struct MemJournal {
    history: VecDeque<Vec<u8>>,
    writes: u64,
}

impl MemJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Total commits ever issued (not capped by the retained window).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The record committed `k` commits before the latest (`0` = latest);
    /// `None` when the window does not reach that far back.
    pub fn nth_back(&self, k: usize) -> Option<Vec<u8>> {
        let len = self.history.len();
        if k >= len {
            return None;
        }
        self.history.get(len - 1 - k).cloned()
    }
}

impl JournalStore for MemJournal {
    fn commit(&mut self, record: &[u8]) {
        if self.history.len() == MEM_HISTORY {
            self.history.pop_front();
        }
        self.history.push_back(record.to_vec());
        self.writes += 1;
    }

    fn load(&mut self) -> Option<Vec<u8>> {
        self.history.back().cloned()
    }
}

/// File-backed journal for the threaded runtime.
///
/// Commits write a sibling temporary file and atomically rename it over
/// the journal path, so a crash mid-commit leaves either the old record
/// or the new one — never a mix. I/O errors are swallowed: a journal
/// that fails to persist simply looks *missing* at the next restart,
/// which recovery handles by falling back to the blank rejoin path.
#[derive(Clone, Debug)]
pub struct FileJournal {
    path: PathBuf,
    tmp: PathBuf,
}

impl FileJournal {
    /// Journals to `path`; the parent directory must exist.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        FileJournal {
            path,
            tmp: PathBuf::from(tmp),
        }
    }

    /// The journal file location.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl JournalStore for FileJournal {
    fn commit(&mut self, record: &[u8]) {
        if std::fs::write(&self.tmp, record).is_ok() {
            let _ = std::fs::rename(&self.tmp, &self.path);
        }
    }

    fn load(&mut self) -> Option<Vec<u8>> {
        std::fs::read(&self.path).ok()
    }
}

/// Cloneable handle to a shared [`JournalStore`].
///
/// The recovery layer keeps one of these per process; clones share the
/// same underlying store, so a restarted incarnation constructed from
/// the same handle reads what the previous life committed.
#[derive(Clone)]
pub struct JournalHandle {
    store: Arc<Mutex<dyn JournalStore>>,
}

impl JournalHandle {
    /// Wraps any backend in a shareable handle.
    pub fn new(store: impl JournalStore + 'static) -> Self {
        JournalHandle {
            store: Arc::new(Mutex::new(store)),
        }
    }

    /// Convenience: a fresh in-memory journal.
    pub fn in_memory() -> Self {
        JournalHandle::new(MemJournal::new())
    }

    /// Commits `record` as the current journal contents.
    pub fn commit(&self, record: &[u8]) {
        self.store
            .lock()
            .expect("journal store poisoned")
            .commit(record);
    }

    /// Loads the current journal contents.
    pub fn load(&self) -> Option<Vec<u8>> {
        self.store.lock().expect("journal store poisoned").load()
    }
}

impl fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JournalHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_journal_serves_latest_and_history() {
        let mut j = MemJournal::new();
        assert_eq!(j.load(), None);
        for i in 0u8..20 {
            j.commit(&[i]);
        }
        assert_eq!(j.writes(), 20);
        assert_eq!(j.load(), Some(vec![19]));
        assert_eq!(j.nth_back(0), Some(vec![19]));
        assert_eq!(j.nth_back(3), Some(vec![16]));
        assert_eq!(j.nth_back(MEM_HISTORY - 1), Some(vec![4]));
        assert_eq!(j.nth_back(MEM_HISTORY), None);
    }

    #[test]
    fn handle_clones_share_the_store() {
        let h = JournalHandle::in_memory();
        let h2 = h.clone();
        h.commit(b"abc");
        assert_eq!(h2.load(), Some(b"abc".to_vec()));
    }

    #[test]
    fn file_journal_commit_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ekbd-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut j = FileJournal::new(dir.join("p0.journal"));
        assert_eq!(j.load(), None);
        j.commit(b"first");
        assert_eq!(j.load(), Some(b"first".to_vec()));
        j.commit(b"second");
        assert_eq!(j.load(), Some(b"second".to_vec()));
        // No stray temp file survives a completed commit.
        assert!(!j.tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
