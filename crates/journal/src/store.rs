//! Journal backends and the shareable handle.

use crate::history::HistoryWindow;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Dense-window size of [`MemJournal`]; the storage fault layer reaches
/// back into this window to serve stale snapshots and to model dropped
/// syncs.
pub const MEM_HISTORY: usize = 16;

/// Active-segment capacity of [`FileJournal`]: when the segment holds
/// this many records, the next commit first rotates it into the
/// compacted predecessor segment.
pub const FILE_SEGMENT_CAP: usize = 16;

/// A stable-storage backend for write-ahead journal records.
///
/// Backends store opaque bytes — encoding, checksums, and validation live
/// in [`crate::codec`] — so a byte-level fault injector can sit between
/// the algorithm and the store without understanding the format. Every
/// backend retains a bounded, compacting history of past commits (see
/// [`crate::history`]) on top of the latest record recovery replays.
pub trait JournalStore: Send {
    /// Durably appends `record` as the latest journal contents (one
    /// commit per state transition).
    fn commit(&mut self, record: &[u8]);

    /// Reads back the latest record, `None` when nothing has ever been
    /// committed (first boot) or the backing storage is gone.
    fn load(&mut self) -> Option<Vec<u8>>;

    /// Total commits ever issued to this store (not capped by
    /// retention). The next committed record is number `commit_seq + 1`.
    fn commit_seq(&self) -> u64;

    /// The `k`-th most recently *retained* record (`0` = latest, i.e.
    /// what [`JournalStore::load`] serves); `None` past the retained
    /// history.
    fn history(&mut self, k: usize) -> Option<Vec<u8>>;
}

/// In-memory backend for the deterministic simulator.
///
/// Keeps a bounded, compacting history of commits (dense recent window
/// plus per-incarnation milestones) so the fault layer can serve older
/// records and post-mortem replay can reconstruct restarts.
#[derive(Clone, Debug)]
pub struct MemJournal {
    window: HistoryWindow,
}

impl Default for MemJournal {
    fn default() -> Self {
        MemJournal::new()
    }
}

impl MemJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        MemJournal {
            window: HistoryWindow::new(MEM_HISTORY),
        }
    }

    /// Total commits ever issued (not capped by the retained window).
    pub fn writes(&self) -> u64 {
        self.window.writes()
    }

    /// The record committed `k` retained records before the latest
    /// (`0` = latest); `None` when the history does not reach that far
    /// back. Within the dense window this is exactly "`k` commits ago";
    /// past it, the compacted milestones answer.
    pub fn nth_back(&self, k: usize) -> Option<Vec<u8>> {
        self.window.nth_back(k).cloned()
    }

    /// All retained records, oldest first.
    pub fn dump(&self) -> Vec<Vec<u8>> {
        self.window.iter_oldest_first().cloned().collect()
    }
}

impl JournalStore for MemJournal {
    fn commit(&mut self, record: &[u8]) {
        self.window.push(record.to_vec());
    }

    fn load(&mut self) -> Option<Vec<u8>> {
        self.window.latest().cloned()
    }

    fn commit_seq(&self) -> u64 {
        self.window.writes()
    }

    fn history(&mut self, k: usize) -> Option<Vec<u8>> {
        self.window.nth_back(k).cloned()
    }
}

/// File-backed journal for the threaded runtime.
///
/// On-disk layout: two *segment* files, each a sequence of
/// length-prefixed records (`u32` LE length, then the record bytes):
///
/// * `<path>` — the active segment, rewritten on every commit,
/// * `<path>.old` — the compacted predecessor, rewritten on rotation
///   with the per-incarnation milestones of everything evicted so far.
///
/// Every segment write goes through a sibling `<path>.tmp`:
/// write → `File::sync_all` → atomic rename over the target → fsync of
/// the parent directory, in that order, so a committed record survives
/// power loss and a crash mid-commit leaves either the old segment or
/// the new one — never a mix. I/O errors are swallowed: a journal that
/// fails to persist simply looks *missing* at the next restart, which
/// recovery handles by falling back to the blank rejoin path. A stray
/// `<path>.tmp` left by a crash between write and rename is swept (never
/// loaded) when the journal is reopened.
#[derive(Clone, Debug)]
pub struct FileJournal {
    path: PathBuf,
    old: PathBuf,
    tmp: PathBuf,
    window: HistoryWindow,
}

/// Appends `suffix` to a path's file name (not its extension).
pub(crate) fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.to_path_buf().into_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Parses a segment file: length-prefixed records until EOF. A torn tail
/// (short frame) ends the parse; the records before it survive.
pub(crate) fn parse_segment(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at + 4 <= bytes.len() {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let Some(end) = at.checked_add(4).and_then(|s| s.checked_add(len)) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        records.push(bytes[at + 4..end].to_vec());
        at = end;
    }
    records
}

pub(crate) fn read_segment(path: &Path) -> Vec<Vec<u8>> {
    std::fs::read(path)
        .map(|b| parse_segment(&b))
        .unwrap_or_default()
}

/// Writes `records` (oldest first) as one framed segment at `path` — the
/// `FileJournal` on-disk format, readable by [`crate::replay::load_dir`].
/// Post-mortem dumps use this instead of re-committing through a
/// `FileJournal` so the retained set round-trips verbatim: re-running
/// compaction on an already-compacted history would shrink it further.
pub fn write_snapshot(path: &Path, records: &[Vec<u8>]) -> std::io::Result<()> {
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&(r.len() as u32).to_le_bytes());
        buf.extend_from_slice(r);
    }
    std::fs::write(path, buf)
}

impl FileJournal {
    /// Journals to `path` (plus siblings `<path>.old` and `<path>.tmp`);
    /// the parent directory must exist. Reopening an existing journal
    /// loads both persisted segments and sweeps any stray temp file a
    /// crash mid-commit left behind.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let old = sibling(&path, ".old");
        let tmp = sibling(&path, ".tmp");
        // Satellite fix: a crash between temp write and rename must not
        // leave `<path>.tmp` around forever — and it must never be
        // mistaken for a committed record.
        let _ = std::fs::remove_file(&tmp);
        let window =
            HistoryWindow::from_segments(read_segment(&old), read_segment(&path), FILE_SEGMENT_CAP);
        FileJournal {
            path,
            old,
            tmp,
            window,
        }
    }

    /// The active-segment file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All retained records, oldest first.
    pub fn dump(&self) -> Vec<Vec<u8>> {
        self.window.iter_oldest_first().cloned().collect()
    }

    /// Durably replaces `target` with the framed `records`, in the
    /// pinned order: write temp → sync file → rename → sync parent dir.
    /// Any failure abandons the attempt (the record is simply missing at
    /// the next boot).
    fn write_segment(
        &self,
        target: &Path,
        records: impl Iterator<Item = impl AsRef<[u8]>>,
    ) -> bool {
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&self.tmp)?;
            for r in records {
                let r = r.as_ref();
                f.write_all(&(r.len() as u32).to_le_bytes())?;
                f.write_all(r)?;
            }
            // Flush the data before the rename publishes it: a rename
            // that lands without its contents is exactly the torn commit
            // the journal exists to rule out.
            f.sync_all()?;
            std::fs::rename(&self.tmp, target)?;
            // The rename itself lives in the directory: sync it too, or
            // power loss can forget the publish.
            if let Some(dir) = target.parent() {
                File::open(dir)?.sync_all()?;
            }
            Ok(())
        };
        write().is_ok()
    }
}

impl JournalStore for FileJournal {
    fn commit(&mut self, record: &[u8]) {
        let rotated = self.window.push(record.to_vec());
        if rotated {
            // The dense window just folded into the milestones: persist
            // the new predecessor segment first, so the active segment
            // never shrinks before its evictees are durable.
            self.write_segment(&self.old, self.window.milestones());
        }
        self.write_segment(&self.path, self.window.dense());
    }

    fn load(&mut self) -> Option<Vec<u8>> {
        // Serve what is actually on disk, not the in-memory mirror: a
        // failed sync means the record is missing at the next boot.
        read_segment(&self.path)
            .pop()
            .or_else(|| read_segment(&self.old).pop())
    }

    fn commit_seq(&self) -> u64 {
        self.window.writes()
    }

    fn history(&mut self, k: usize) -> Option<Vec<u8>> {
        self.window.nth_back(k).cloned()
    }
}

/// Cloneable handle to a shared [`JournalStore`].
///
/// The recovery layer keeps one of these per process; clones share the
/// same underlying store, so a restarted incarnation constructed from
/// the same handle reads what the previous life committed.
#[derive(Clone)]
pub struct JournalHandle {
    store: Arc<Mutex<dyn JournalStore>>,
}

impl JournalHandle {
    /// Wraps any backend in a shareable handle.
    pub fn new(store: impl JournalStore + 'static) -> Self {
        JournalHandle {
            store: Arc::new(Mutex::new(store)),
        }
    }

    /// Convenience: a fresh in-memory journal.
    pub fn in_memory() -> Self {
        JournalHandle::new(MemJournal::new())
    }

    /// Commits `record` as the current journal contents.
    pub fn commit(&self, record: &[u8]) {
        self.store
            .lock()
            .expect("journal store poisoned")
            .commit(record);
    }

    /// Loads the current journal contents.
    pub fn load(&self) -> Option<Vec<u8>> {
        self.store.lock().expect("journal store poisoned").load()
    }

    /// Total commits ever issued through this store.
    pub fn commit_seq(&self) -> u64 {
        self.store
            .lock()
            .expect("journal store poisoned")
            .commit_seq()
    }

    /// The `k`-th most recently retained record (`0` = latest).
    pub fn history(&self, k: usize) -> Option<Vec<u8>> {
        self.store
            .lock()
            .expect("journal store poisoned")
            .history(k)
    }

    /// All retained records, oldest first (walks `history` down from the
    /// deepest retained record).
    pub fn dump(&self) -> Vec<Vec<u8>> {
        let mut store = self.store.lock().expect("journal store poisoned");
        let mut out = Vec::new();
        let mut k = 0usize;
        while let Some(r) = store.history(k) {
            out.push(r);
            k += 1;
        }
        out.reverse();
        out
    }
}

impl fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JournalHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BootPath, JournalRecord};

    fn rec(seq: u64, inc: u64) -> Vec<u8> {
        JournalRecord {
            seq,
            tick: seq,
            incarnation: inc,
            phase: 0,
            doorway: false,
            boot: BootPath::Genesis,
            edges: vec![],
        }
        .encode()
    }

    #[test]
    fn mem_journal_serves_latest_and_history() {
        let mut j = MemJournal::new();
        assert_eq!(j.load(), None);
        for s in 1..=20u64 {
            j.commit(&rec(s, 0));
        }
        assert_eq!(j.writes(), 20);
        assert_eq!(j.commit_seq(), 20);
        assert_eq!(j.load(), Some(rec(20, 0)));
        assert_eq!(j.nth_back(0), Some(rec(20, 0)));
        assert_eq!(j.nth_back(3), Some(rec(17, 0)));
        // The 20 commits rotated once at commit 17: dense = 17..=20,
        // compacted milestones of inc 0 = {first=1, last-evicted=16}.
        assert_eq!(j.nth_back(3), j.history(3));
        assert_eq!(j.nth_back(4), Some(rec(16, 0)));
        assert_eq!(j.nth_back(5), Some(rec(1, 0)));
        assert_eq!(j.nth_back(6), None);
        let dump = j.dump();
        assert_eq!(dump.first(), Some(&rec(1, 0)));
        assert_eq!(dump.last(), Some(&rec(20, 0)));
    }

    /// Satellite: `nth_back` exactly at the wrap-around boundary, where
    /// the dense window hands over to the compacted milestones.
    #[test]
    fn mem_journal_nth_back_at_wrap_around_boundary() {
        let mut j = MemJournal::new();
        // Exactly fill the dense window: no rotation yet.
        for s in 1..=MEM_HISTORY as u64 {
            j.commit(&rec(s, 0));
        }
        assert_eq!(j.nth_back(MEM_HISTORY - 1), Some(rec(1, 0)));
        assert_eq!(j.nth_back(MEM_HISTORY), None);
        // One more commit rotates: dense = [17], milestones = {1, 16}.
        j.commit(&rec(MEM_HISTORY as u64 + 1, 0));
        assert_eq!(j.nth_back(0), Some(rec(17, 0)));
        assert_eq!(j.nth_back(1), Some(rec(16, 0)), "boundary: last evicted");
        assert_eq!(j.nth_back(2), Some(rec(1, 0)), "boundary: first milestone");
        assert_eq!(j.nth_back(3), None);
    }

    #[test]
    fn handle_clones_share_the_store() {
        let h = JournalHandle::in_memory();
        let h2 = h.clone();
        h.commit(b"abc");
        assert_eq!(h2.load(), Some(b"abc".to_vec()));
        assert_eq!(h2.commit_seq(), 1);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ekbd-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_journal_commit_load_round_trip() {
        let dir = temp_dir("round-trip");
        let mut j = FileJournal::new(dir.join("p0.journal"));
        assert_eq!(j.load(), None);
        j.commit(&rec(1, 0));
        assert_eq!(j.load(), Some(rec(1, 0)));
        j.commit(&rec(2, 0));
        assert_eq!(j.load(), Some(rec(2, 0)));
        assert_eq!(j.commit_seq(), 2);
        assert_eq!(j.history(1), Some(rec(1, 0)));
        // No stray temp file survives a completed commit.
        assert!(!j.tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a stray `<path>.tmp` left by a crash between
    /// temp write and rename is swept on reopen and never loaded.
    #[test]
    fn stray_tmp_is_swept_and_never_loaded() {
        let dir = temp_dir("stray-tmp");
        let path = dir.join("p0.journal");
        let tmp = sibling(&path, ".tmp");
        std::fs::write(&tmp, b"half-a-commit").unwrap();
        let mut j = FileJournal::new(&path);
        assert!(!tmp.exists(), "stray tmp must be swept on open");
        assert_eq!(j.load(), None, "stray tmp must never serve as a record");
        j.commit(&rec(1, 0));
        assert_eq!(j.load(), Some(rec(1, 0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: the durable-commit sequence (write temp → sync → rename
    /// → sync dir) is pinned by its observable contract: the active
    /// segment on disk is whole and parseable after every commit, the
    /// temp never lingers, and a journal whose directory vanished
    /// swallows the error — the record is simply missing at reboot.
    #[test]
    fn commit_sequence_is_atomic_and_error_swallowing() {
        let dir = temp_dir("atomic");
        let path = dir.join("p0.journal");
        let mut j = FileJournal::new(&path);
        for s in 1..=(FILE_SEGMENT_CAP as u64 + 3) {
            j.commit(&rec(s, 0));
            // After every commit the published segment parses whole and
            // ends with the record just committed: the rename only ever
            // publishes fully-synced contents.
            let on_disk = read_segment(&path);
            assert_eq!(on_disk.last(), Some(&rec(s, 0)), "commit {s}");
            assert!(!sibling(&path, ".tmp").exists(), "commit {s}: stray tmp");
        }
        // The rotation persisted the predecessor segment too.
        assert!(sibling(&path, ".old").exists(), "rotation wrote .old");
        // Rip the directory away: commits must not panic, and the record
        // is treated as missing at the next boot.
        std::fs::remove_dir_all(&dir).unwrap();
        j.commit(&rec(99, 0));
        let mut reopened = FileJournal::new(&path);
        assert_eq!(reopened.load(), None, "failed sync ⇒ missing next boot");
    }

    #[test]
    fn file_journal_rotation_survives_reopen() {
        let dir = temp_dir("rotate");
        let path = dir.join("p0.journal");
        let mut j = FileJournal::new(&path);
        let total = FILE_SEGMENT_CAP as u64 * 2 + 5;
        for s in 1..=total {
            j.commit(&rec(s, if s <= 20 { 0 } else { 1 }));
        }
        let before = j.dump();
        drop(j);
        let mut j = FileJournal::new(&path);
        assert_eq!(j.dump(), before, "both segments reload byte-identically");
        assert_eq!(j.load(), Some(rec(total, 1)));
        // Milestones bound retention: far fewer than `total` records.
        assert!(j.dump().len() < total as usize);
        assert!(j.commit_seq() >= j.dump().len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_parser_survives_torn_tail() {
        let mut bytes = Vec::new();
        for r in [rec(1, 0), rec(2, 0)] {
            bytes.extend_from_slice(&(r.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&r);
        }
        bytes.extend_from_slice(&[7, 0, 0, 0, 1, 2]); // torn frame
        assert_eq!(parse_segment(&bytes), vec![rec(1, 0), rec(2, 0)]);
        assert_eq!(parse_segment(&[255u8; 3]), Vec::<Vec<u8>>::new());
    }
}
