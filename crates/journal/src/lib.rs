//! Crash-consistent stable storage for recoverable diners.
//!
//! Song & Pike's bounded-space claim (§7: `log₂(δ) + 6δ + c` bits per
//! process) means the entire safety-critical state of one diner — the
//! per-edge fork/token/deferred bits, the doorway phase, and the
//! incarnation number — fits in a tiny record. This crate turns that
//! observation into a stable-storage layer:
//!
//! * [`JournalRecord`] / [`EdgeRecord`] — the incarnation-stamped,
//!   CRC-32-checksummed write-ahead record a recoverable diner commits on
//!   every state transition ([`codec`]),
//! * [`JournalStore`] — the backend trait, with [`MemJournal`] for the
//!   deterministic simulator and [`FileJournal`] (atomic
//!   write-tmp-then-rename) for the threaded runtime,
//! * [`JournalHandle`] — the cloneable, shareable handle an algorithm
//!   keeps; cloning shares the underlying store,
//! * [`StorageFaultPlan`] — seeded, deterministic corruption of the
//!   stable storage itself (torn writes, single-bit rot, stale snapshots,
//!   dropped syncs), mirroring the network `FaultPlan` idiom.
//!
//! The decoder is paranoid by design: any single-bit flip and any
//! truncation of a valid record is *detected* (structural framing plus
//! CRC), never silently accepted, so a corrupt journal can always be
//! routed to the blank-restart path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod store;

pub use codec::{DecodeError, EdgeRecord, JournalRecord};
pub use fault::{FaultyJournal, StorageFault, StorageFaultPlan};
pub use store::{FileJournal, JournalHandle, JournalStore, MemJournal};
