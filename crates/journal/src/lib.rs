//! Crash-consistent stable storage for recoverable diners.
//!
//! Song & Pike's bounded-space claim (§7: `log₂(δ) + 6δ + c` bits per
//! process) means the entire safety-critical state of one diner — the
//! per-edge fork/token/deferred bits, the doorway phase, and the
//! incarnation number — fits in a tiny record. This crate turns that
//! observation into a stable-storage layer:
//!
//! * [`JournalRecord`] / [`EdgeRecord`] — the seq/tick/incarnation-
//!   stamped, CRC-32-checksummed write-ahead record a recoverable diner
//!   commits on every state transition ([`codec`]),
//! * [`JournalStore`] — the backend trait (commit/load plus the bounded
//!   `commit_seq`/`history` view), with [`MemJournal`] for the
//!   deterministic simulator and the segment-rotating, fsyncing
//!   [`FileJournal`] for the threaded runtime,
//! * [`history`] — the shared bounded-window-with-milestones retention
//!   both backends implement,
//! * [`JournalHandle`] — the cloneable, shareable handle an algorithm
//!   keeps; cloning shares the underlying store,
//! * [`StorageFaultPlan`] — seeded, deterministic corruption of the
//!   stable storage itself (torn writes, single-bit rot, stale snapshots,
//!   dropped syncs), mirroring the network `FaultPlan` idiom,
//! * [`replay`] — post-mortem reconstruction of the restart narrative
//!   (incarnations, boot paths, per-edge resync fates) from retained
//!   records or a journal directory.
//!
//! The decoder is paranoid by design: any single-bit flip and any
//! truncation of a valid record is *detected* (structural framing plus
//! CRC), never silently accepted, so a corrupt journal can always be
//! routed to the blank-restart path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod history;
pub mod replay;
pub mod store;

pub use codec::{BootPath, DecodeError, EdgeRecord, JournalRecord, RecordMeta, ResyncPath};
pub use fault::{FaultyJournal, StorageFault, StorageFaultPlan, STALE_EPOCH};
pub use history::HistoryWindow;
pub use replay::{IncarnationReplay, ProcessReplay};
pub use store::{write_snapshot, FileJournal, JournalHandle, JournalStore, MemJournal};
