//! The journal record and its paranoid byte codec.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "EKJ2"
//! 4       8     seq (u64): monotone commit sequence number
//! 12      8     tick (u64): commit-time tick (sim time / runtime ms)
//! 20      8     incarnation (u64)
//! 28      1     phase/doorway byte: bits 0-1 phase, bit 2 doorway
//! 29      1     boot byte: how this incarnation booted (BootPath)
//! 30      2     edge count n (u16)
//! 32      14*n  edge records: peer u32 | peer_inc u64 | flags u8 | sync u8
//! 32+14n  4     CRC-32 (ISO-HDLC) over bytes [0, 32+14n)
//! ```
//!
//! The per-edge sync byte packs bit 0 = synced, bit 1 = resume pending,
//! bits 2-3 = the resync path this edge took after the incarnation's
//! restart ([`ResyncPath`]); the high nibble must be zero.
//!
//! [`JournalRecord::decode`] rejects, with a typed error, every framing
//! violation: wrong magic, any length that does not exactly match the
//! declared edge count, a checksum mismatch, and out-of-range phase,
//! boot, flag, or sync bytes. Because the CRC covers every byte before it
//! and the length is fully determined by the edge-count field, *every*
//! single-bit flip and *every* proper truncation of a valid encoding is
//! detected — the property the codec proptests pin down.

/// The four magic bytes opening every record.
pub const MAGIC: [u8; 4] = *b"EKJ2";

/// Per-edge flag bits carried by an [`EdgeRecord`]; matches the dining
/// layer's bit-packed per-neighbor variables (6 bits used).
pub const FLAG_MASK: u8 = 0x3F;

const HEADER_LEN: usize = 32;
const EDGE_LEN: usize = 14;
const CRC_LEN: usize = 4;

/// How an incarnation came up: replayed from the journal, or blank (and
/// why). Journaled in the header so a post-mortem replay can tell the
/// restart paths apart without the live restart log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootPath {
    /// First boot of the process — nothing to replay.
    Genesis,
    /// The journal decoded and was replayed.
    Journal,
    /// Journaling enabled but no record existed on stable storage.
    BlankMissing,
    /// A record existed but failed validation; rebooted blank.
    BlankCorrupt,
    /// Journaling disabled; every restart is blank by construction.
    BlankDisabled,
}

impl BootPath {
    fn as_u8(self) -> u8 {
        match self {
            BootPath::Genesis => 0,
            BootPath::Journal => 1,
            BootPath::BlankMissing => 2,
            BootPath::BlankCorrupt => 3,
            BootPath::BlankDisabled => 4,
        }
    }

    fn from_u8(b: u8) -> Option<BootPath> {
        Some(match b {
            0 => BootPath::Genesis,
            1 => BootPath::Journal,
            2 => BootPath::BlankMissing,
            3 => BootPath::BlankCorrupt,
            4 => BootPath::BlankDisabled,
            _ => return None,
        })
    }
}

impl core::fmt::Display for BootPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            BootPath::Genesis => "genesis",
            BootPath::Journal => "journal",
            BootPath::BlankMissing => "blank (missing)",
            BootPath::BlankCorrupt => "blank (corrupt)",
            BootPath::BlankDisabled => "blank (disabled)",
        })
    }
}

/// How one edge regained synchronization after this incarnation's
/// restart, as journaled in the per-edge sync byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResyncPath {
    /// No resync this incarnation (genesis, or still unsynced).
    #[default]
    None,
    /// Fast-resumed: the peer confirmed the replayed journal state.
    Resumed,
    /// Renegotiated from scratch via the rejoin handshake.
    Rejoined,
    /// The resume was refuted by sequence comparison (stale snapshot
    /// detected), then renegotiated.
    StaleRefuted,
}

impl ResyncPath {
    fn as_u8(self) -> u8 {
        match self {
            ResyncPath::None => 0,
            ResyncPath::Resumed => 1,
            ResyncPath::Rejoined => 2,
            ResyncPath::StaleRefuted => 3,
        }
    }

    fn from_u8(b: u8) -> ResyncPath {
        match b & 0x03 {
            1 => ResyncPath::Resumed,
            2 => ResyncPath::Rejoined,
            3 => ResyncPath::StaleRefuted,
            _ => ResyncPath::None,
        }
    }
}

impl core::fmt::Display for ResyncPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ResyncPath::None => "none",
            ResyncPath::Resumed => "resumed",
            ResyncPath::Rejoined => "rejoined",
            ResyncPath::StaleRefuted => "stale-refuted",
        })
    }
}

/// Journaled state of one conflict edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Index of the neighbor on this edge.
    pub peer: u32,
    /// Last incarnation of the neighbor this process had synchronized
    /// with when the record was committed.
    pub peer_inc: u64,
    /// The bit-packed per-edge dining variables (fork, token, deferred,
    /// ping/ack/replied session bits); only the low 6 bits are valid.
    pub flags: u8,
    /// Whether the edge was synchronized (not suppressed) at commit time.
    pub synced: bool,
    /// Whether a `JournalResume` answer was still outstanding.
    pub resume_pending: bool,
    /// How the edge resynced after this incarnation's restart.
    pub resync: ResyncPath,
}

/// One committed write-ahead record: the full recoverable state of a
/// diner at the instant a state transition completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotone commit sequence number (1 for the first commit; survives
    /// restarts — a replayed incarnation continues where the record left
    /// off, so a stale snapshot is exposed by a seq the peers have
    /// already seen surpassed).
    pub seq: u64,
    /// Tick at commit time (virtual sim time, or runtime milliseconds).
    pub tick: u64,
    /// The incarnation that committed this record.
    pub incarnation: u64,
    /// Dining phase at commit time: 0 thinking, 1 hungry, 2 eating.
    pub phase: u8,
    /// Whether the process was inside the doorway at commit time.
    pub doorway: bool,
    /// How this incarnation booted.
    pub boot: BootPath,
    /// Per-edge state, one entry per conflict neighbor.
    pub edges: Vec<EdgeRecord>,
}

/// Header fields readable without full validation; see [`peek`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordMeta {
    /// Commit sequence number.
    pub seq: u64,
    /// Commit-time tick.
    pub tick: u64,
    /// Committing incarnation.
    pub incarnation: u64,
}

/// Reads the seq/tick/incarnation header of a record without validating
/// the CRC — used by stores to classify retained records for milestone
/// compaction. `None` when the buffer is too short or the magic is wrong.
pub fn peek(bytes: &[u8]) -> Option<RecordMeta> {
    if bytes.len() < HEADER_LEN + CRC_LEN || bytes[0..4] != MAGIC {
        return None;
    }
    let u64_at = |at: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(b)
    };
    Some(RecordMeta {
        seq: u64_at(4),
        tick: u64_at(12),
        incarnation: u64_at(20),
    })
}

/// Why a byte buffer was rejected by [`JournalRecord::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header + checksum.
    TooShort,
    /// The magic bytes are wrong.
    BadMagic,
    /// The buffer length does not match the declared edge count (torn
    /// write, truncation, or appended garbage).
    LengthMismatch,
    /// The trailing CRC-32 does not match the payload.
    ChecksumMismatch,
    /// A semantic field is out of range (phase > 2, padding bits set,
    /// an unknown boot byte, flag bits above [`FLAG_MASK`], or sync-byte
    /// bits outside the low nibble).
    BadField,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match self {
            DecodeError::TooShort => "record shorter than header + checksum",
            DecodeError::BadMagic => "bad magic",
            DecodeError::LengthMismatch => "length does not match edge count",
            DecodeError::ChecksumMismatch => "CRC-32 mismatch",
            DecodeError::BadField => "field out of range",
        };
        write!(f, "journal decode failed: {what}")
    }
}

/// CRC-32 (ISO-HDLC / zlib polynomial, reflected), bitwise.
///
/// Records are tens of bytes, so the table-free loop is plenty fast and
/// keeps the crate dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl JournalRecord {
    /// Serializes the record, appending the CRC-32 of everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.edges.len();
        debug_assert!(n <= u16::MAX as usize, "degree exceeds journal format");
        let mut out = Vec::with_capacity(HEADER_LEN + EDGE_LEN * n + CRC_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&self.incarnation.to_le_bytes());
        out.push((self.phase & 0x03) | (u8::from(self.doorway) << 2));
        out.push(self.boot.as_u8());
        out.extend_from_slice(&(n as u16).to_le_bytes());
        for e in &self.edges {
            out.extend_from_slice(&e.peer.to_le_bytes());
            out.extend_from_slice(&e.peer_inc.to_le_bytes());
            out.push(e.flags & FLAG_MASK);
            out.push(
                u8::from(e.synced) | (u8::from(e.resume_pending) << 1) | (e.resync.as_u8() << 2),
            );
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes and fully validates a record.
    ///
    /// Never panics on arbitrary input; every malformed buffer maps to a
    /// [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, DecodeError> {
        if bytes.len() < HEADER_LEN + CRC_LEN {
            return Err(DecodeError::TooShort);
        }
        if bytes[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let n = u16::from_le_bytes([bytes[30], bytes[31]]) as usize;
        let expected = HEADER_LEN + EDGE_LEN * n + CRC_LEN;
        if bytes.len() != expected {
            return Err(DecodeError::LengthMismatch);
        }
        let body = &bytes[..expected - CRC_LEN];
        let stored = u32::from_le_bytes([
            bytes[expected - 4],
            bytes[expected - 3],
            bytes[expected - 2],
            bytes[expected - 1],
        ]);
        if crc32(body) != stored {
            return Err(DecodeError::ChecksumMismatch);
        }
        let u64_at = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let pd = bytes[28];
        if pd & !0x07 != 0 || pd & 0x03 > 2 {
            return Err(DecodeError::BadField);
        }
        let boot = BootPath::from_u8(bytes[29]).ok_or(DecodeError::BadField)?;
        let mut edges = Vec::with_capacity(n);
        for i in 0..n {
            let at = HEADER_LEN + EDGE_LEN * i;
            let peer = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
            let flags = bytes[at + 12];
            let sync = bytes[at + 13];
            if flags & !FLAG_MASK != 0 || sync > 0x0F {
                return Err(DecodeError::BadField);
            }
            edges.push(EdgeRecord {
                peer,
                peer_inc: u64_at(at + 4),
                flags,
                synced: sync & 0x01 != 0,
                resume_pending: sync & 0x02 != 0,
                resync: ResyncPath::from_u8(sync >> 2),
            });
        }
        Ok(JournalRecord {
            seq: u64_at(4),
            tick: u64_at(12),
            incarnation: u64_at(20),
            phase: pd & 0x03,
            doorway: pd & 0x04 != 0,
            boot,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalRecord {
        JournalRecord {
            seq: 57,
            tick: 1_234,
            incarnation: 3,
            phase: 1,
            doorway: true,
            boot: BootPath::Journal,
            edges: vec![
                EdgeRecord {
                    peer: 1,
                    peer_inc: 0,
                    flags: 0x30,
                    synced: true,
                    resume_pending: false,
                    resync: ResyncPath::Resumed,
                },
                EdgeRecord {
                    peer: 7,
                    peer_inc: 2,
                    flags: 0x09,
                    synced: false,
                    resume_pending: true,
                    resync: ResyncPath::None,
                },
                EdgeRecord {
                    peer: 2,
                    peer_inc: 5,
                    flags: 0x02,
                    synced: true,
                    resume_pending: false,
                    resync: ResyncPath::StaleRefuted,
                },
            ],
        }
    }

    #[test]
    fn round_trip_identity() {
        let r = sample();
        assert_eq!(JournalRecord::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn empty_edge_list_round_trips() {
        let r = JournalRecord {
            seq: 1,
            tick: 0,
            incarnation: 0,
            phase: 0,
            doorway: false,
            boot: BootPath::Genesis,
            edges: vec![],
        };
        assert_eq!(JournalRecord::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn every_boot_path_round_trips() {
        for boot in [
            BootPath::Genesis,
            BootPath::Journal,
            BootPath::BlankMissing,
            BootPath::BlankCorrupt,
            BootPath::BlankDisabled,
        ] {
            let r = JournalRecord { boot, ..sample() };
            assert_eq!(JournalRecord::decode(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut rotted = bytes.clone();
                rotted[i] ^= 1 << bit;
                assert!(
                    JournalRecord::decode(&rotted).is_err(),
                    "flip of byte {i} bit {bit} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                JournalRecord::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes was silently accepted"
            );
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            JournalRecord::decode(&bytes),
            Err(DecodeError::LengthMismatch)
        );
    }

    /// Recomputes the trailing CRC so structural checks can be exercised
    /// without tripping the checksum first.
    fn refix(bytes: &mut [u8]) {
        let body_len = bytes.len() - CRC_LEN;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn unknown_boot_byte_is_rejected_structurally() {
        let mut bytes = sample().encode();
        bytes[29] = 5;
        refix(&mut bytes);
        assert_eq!(JournalRecord::decode(&bytes), Err(DecodeError::BadField));
    }

    #[test]
    fn high_sync_nibble_is_rejected_structurally() {
        let mut bytes = sample().encode();
        bytes[HEADER_LEN + 13] |= 0x10;
        refix(&mut bytes);
        assert_eq!(JournalRecord::decode(&bytes), Err(DecodeError::BadField));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_masks_out_of_range_inputs() {
        let r = JournalRecord {
            seq: 1,
            tick: 0,
            incarnation: 1,
            phase: 2,
            doorway: false,
            boot: BootPath::Genesis,
            edges: vec![EdgeRecord {
                peer: 0,
                peer_inc: 0,
                flags: 0xFF, // high bits must not survive the trip
                synced: true,
                resume_pending: false,
                resync: ResyncPath::None,
            }],
        };
        let back = JournalRecord::decode(&r.encode()).unwrap();
        assert_eq!(back.edges[0].flags, 0x3F);
    }

    #[test]
    fn peek_reads_header_without_validation() {
        let r = sample();
        let mut bytes = r.encode();
        let meta = peek(&bytes).unwrap();
        assert_eq!(meta.seq, r.seq);
        assert_eq!(meta.tick, r.tick);
        assert_eq!(meta.incarnation, r.incarnation);
        // peek ignores CRC damage past the header...
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(peek(&bytes), Some(meta));
        // ...but refuses wrong magic and short buffers.
        bytes[0] = b'X';
        assert_eq!(peek(&bytes), None);
        assert_eq!(peek(&[0u8; 8]), None);
    }
}
