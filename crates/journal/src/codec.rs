//! The journal record and its paranoid byte codec.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "EKJ1"
//! 4       8     incarnation (u64)
//! 12      1     phase/doorway byte: bits 0-1 phase, bit 2 doorway
//! 13      2     edge count n (u16)
//! 15      14*n  edge records: peer u32 | peer_inc u64 | flags u8 | synced u8
//! 15+14n  4     CRC-32 (ISO-HDLC) over bytes [0, 15+14n)
//! ```
//!
//! [`JournalRecord::decode`] rejects, with a typed error, every framing
//! violation: wrong magic, any length that does not exactly match the
//! declared edge count, a checksum mismatch, and out-of-range phase,
//! flag, or synced bytes. Because the CRC covers every byte before it and
//! the length is fully determined by the edge-count field, *every*
//! single-bit flip and *every* proper truncation of a valid encoding is
//! detected — the property the codec proptests pin down.

/// The four magic bytes opening every record.
pub const MAGIC: [u8; 4] = *b"EKJ1";

/// Per-edge flag bits carried by an [`EdgeRecord`]; matches the dining
/// layer's bit-packed per-neighbor variables (6 bits used).
pub const FLAG_MASK: u8 = 0x3F;

const HEADER_LEN: usize = 15;
const EDGE_LEN: usize = 14;
const CRC_LEN: usize = 4;

/// Journaled state of one conflict edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Index of the neighbor on this edge.
    pub peer: u32,
    /// Last incarnation of the neighbor this process had synchronized
    /// with when the record was committed.
    pub peer_inc: u64,
    /// The bit-packed per-edge dining variables (fork, token, deferred,
    /// ping/ack/replied session bits); only the low 6 bits are valid.
    pub flags: u8,
    /// Whether the edge was synchronized (not suppressed) at commit time.
    pub synced: bool,
}

/// One committed write-ahead record: the full recoverable state of a
/// diner at the instant a state transition completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// The incarnation that committed this record.
    pub incarnation: u64,
    /// Dining phase at commit time: 0 thinking, 1 hungry, 2 eating.
    pub phase: u8,
    /// Whether the process was inside the doorway at commit time.
    pub doorway: bool,
    /// Per-edge state, one entry per conflict neighbor.
    pub edges: Vec<EdgeRecord>,
}

/// Why a byte buffer was rejected by [`JournalRecord::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header + checksum.
    TooShort,
    /// The magic bytes are wrong.
    BadMagic,
    /// The buffer length does not match the declared edge count (torn
    /// write, truncation, or appended garbage).
    LengthMismatch,
    /// The trailing CRC-32 does not match the payload.
    ChecksumMismatch,
    /// A semantic field is out of range (phase > 2, padding bits set,
    /// flag bits above [`FLAG_MASK`], or a non-boolean synced byte).
    BadField,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match self {
            DecodeError::TooShort => "record shorter than header + checksum",
            DecodeError::BadMagic => "bad magic",
            DecodeError::LengthMismatch => "length does not match edge count",
            DecodeError::ChecksumMismatch => "CRC-32 mismatch",
            DecodeError::BadField => "field out of range",
        };
        write!(f, "journal decode failed: {what}")
    }
}

/// CRC-32 (ISO-HDLC / zlib polynomial, reflected), bitwise.
///
/// Records are tens of bytes, so the table-free loop is plenty fast and
/// keeps the crate dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl JournalRecord {
    /// Serializes the record, appending the CRC-32 of everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.edges.len();
        debug_assert!(n <= u16::MAX as usize, "degree exceeds journal format");
        let mut out = Vec::with_capacity(HEADER_LEN + EDGE_LEN * n + CRC_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.incarnation.to_le_bytes());
        out.push((self.phase & 0x03) | (u8::from(self.doorway) << 2));
        out.extend_from_slice(&(n as u16).to_le_bytes());
        for e in &self.edges {
            out.extend_from_slice(&e.peer.to_le_bytes());
            out.extend_from_slice(&e.peer_inc.to_le_bytes());
            out.push(e.flags & FLAG_MASK);
            out.push(u8::from(e.synced));
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes and fully validates a record.
    ///
    /// Never panics on arbitrary input; every malformed buffer maps to a
    /// [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, DecodeError> {
        if bytes.len() < HEADER_LEN + CRC_LEN {
            return Err(DecodeError::TooShort);
        }
        if bytes[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let n = u16::from_le_bytes([bytes[13], bytes[14]]) as usize;
        let expected = HEADER_LEN + EDGE_LEN * n + CRC_LEN;
        if bytes.len() != expected {
            return Err(DecodeError::LengthMismatch);
        }
        let body = &bytes[..expected - CRC_LEN];
        let stored = u32::from_le_bytes([
            bytes[expected - 4],
            bytes[expected - 3],
            bytes[expected - 2],
            bytes[expected - 1],
        ]);
        if crc32(body) != stored {
            return Err(DecodeError::ChecksumMismatch);
        }
        let pd = bytes[12];
        if pd & !0x07 != 0 || pd & 0x03 > 2 {
            return Err(DecodeError::BadField);
        }
        let mut edges = Vec::with_capacity(n);
        for i in 0..n {
            let at = HEADER_LEN + EDGE_LEN * i;
            let peer = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
            let mut inc = [0u8; 8];
            inc.copy_from_slice(&bytes[at + 4..at + 12]);
            let flags = bytes[at + 12];
            let synced = bytes[at + 13];
            if flags & !FLAG_MASK != 0 || synced > 1 {
                return Err(DecodeError::BadField);
            }
            edges.push(EdgeRecord {
                peer,
                peer_inc: u64::from_le_bytes(inc),
                flags,
                synced: synced == 1,
            });
        }
        Ok(JournalRecord {
            incarnation: u64::from_le_bytes([
                bytes[4], bytes[5], bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
            ]),
            phase: pd & 0x03,
            doorway: pd & 0x04 != 0,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JournalRecord {
        JournalRecord {
            incarnation: 3,
            phase: 1,
            doorway: true,
            edges: vec![
                EdgeRecord {
                    peer: 1,
                    peer_inc: 0,
                    flags: 0x30,
                    synced: true,
                },
                EdgeRecord {
                    peer: 7,
                    peer_inc: 2,
                    flags: 0x09,
                    synced: false,
                },
            ],
        }
    }

    #[test]
    fn round_trip_identity() {
        let r = sample();
        assert_eq!(JournalRecord::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn empty_edge_list_round_trips() {
        let r = JournalRecord {
            incarnation: 0,
            phase: 0,
            doorway: false,
            edges: vec![],
        };
        assert_eq!(JournalRecord::decode(&r.encode()), Ok(r));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut rotted = bytes.clone();
                rotted[i] ^= 1 << bit;
                assert!(
                    JournalRecord::decode(&rotted).is_err(),
                    "flip of byte {i} bit {bit} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                JournalRecord::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes was silently accepted"
            );
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            JournalRecord::decode(&bytes),
            Err(DecodeError::LengthMismatch)
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_masks_out_of_range_inputs() {
        let r = JournalRecord {
            incarnation: 1,
            phase: 2,
            doorway: false,
            edges: vec![EdgeRecord {
                peer: 0,
                peer_inc: 0,
                flags: 0xFF, // high bits must not survive the trip
                synced: true,
            }],
        };
        let back = JournalRecord::decode(&r.encode()).unwrap();
        assert_eq!(back.edges[0].flags, 0x3F);
    }
}
