//! Adversarial faults in the stable storage itself.
//!
//! Mirrors the network `FaultPlan` idiom: a [`StorageFaultPlan`] is a
//! cheap, cloneable description built with chained setters, seeded so
//! every corruption is a deterministic function of `(seed, process,
//! commit count)`. Faults are applied *at load time* by
//! [`FaultyJournal`], which wraps a [`MemJournal`]: commits are recorded
//! faithfully, and the damage a crash would reveal (a torn prefix, a
//! rotted bit, a stale or never-synced snapshot) is materialized only
//! when the restarted process reads the journal back. Applying damage
//! lazily keeps the write path identical to the fault-free one, which is
//! what lets a journaling run with no restarts stay byte-identical to a
//! non-journaling run of the same seed.

use crate::store::{JournalHandle, JournalStore, MemJournal, MEM_HISTORY};
use ekbd_graph::ProcessId;

/// One way the stable storage can betray a process at restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The final commit tore: only a proper prefix of the record made it
    /// to disk. The decoder rejects it; recovery goes blank.
    TornWrite,
    /// A single bit of the record rotted at rest. The CRC rejects it;
    /// recovery goes blank.
    BitRot,
    /// A flush epoch never became durable: the load returns the record
    /// from [`STALE_EPOCH`] commits back (valid, decodable — but provably
    /// behind what peers have observed via commit-stamped messages).
    StaleSnapshot,
    /// A long run of syncs was silently dropped: the load returns the
    /// oldest retained record, or nothing at all if the history window
    /// is too short.
    DroppedSync,
}

/// How far back a [`StorageFault::StaleSnapshot`] rolls the journal:
/// one flush epoch, i.e. half the dense retention window. Rolling back a
/// single commit would be adversarially minimal but *information-
/// theoretically undetectable* whenever the victim's final transitions
/// sent nothing (the usual case right before an arbitrary crash instant);
/// an epoch-deep rollback overlaps commits whose stamped messages peers
/// did observe, which is exactly what the sequence comparison refutes.
pub const STALE_EPOCH: usize = MEM_HISTORY / 2;

/// Deterministic, per-process plan of storage faults.
///
/// At most one fault mode per process (the last setter wins), matching
/// how a single restart observes the storage.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StorageFaultPlan {
    seed: u64,
    faults: Vec<(ProcessId, StorageFault)>,
}

impl StorageFaultPlan {
    /// An inert plan: every journal behaves perfectly.
    pub fn new() -> Self {
        StorageFaultPlan::default()
    }

    /// Sets the seed from which per-process corruption entropy derives.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects `fault` into process `p`'s journal.
    pub fn fault(mut self, p: ProcessId, fault: StorageFault) -> Self {
        self.faults.push((p, fault));
        self
    }

    /// Tears the final commit of `p`'s journal (prefix-only record).
    pub fn torn_write(self, p: ProcessId) -> Self {
        self.fault(p, StorageFault::TornWrite)
    }

    /// Rots one bit of `p`'s journaled record.
    pub fn bit_rot(self, p: ProcessId) -> Self {
        self.fault(p, StorageFault::BitRot)
    }

    /// Serves `p` a valid but epoch-stale record ([`STALE_EPOCH`] commits
    /// behind the truth).
    pub fn stale_snapshot(self, p: ProcessId) -> Self {
        self.fault(p, StorageFault::StaleSnapshot)
    }

    /// Drops `p`'s recent syncs, serving the oldest retained record.
    pub fn dropped_sync(self, p: ProcessId) -> Self {
        self.fault(p, StorageFault::DroppedSync)
    }

    /// The fault mode injected for `p`, if any (last setter wins).
    pub fn fault_for(&self, p: ProcessId) -> Option<StorageFault> {
        self.faults
            .iter()
            .rev()
            .find(|(q, _)| *q == p)
            .map(|&(_, f)| f)
    }

    /// True when the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builds the journal store for process `p` under this plan: a plain
    /// in-memory journal when `p` is unaffected, otherwise one wrapped in
    /// the fault injector.
    pub fn store_for(&self, p: ProcessId) -> JournalHandle {
        match self.fault_for(p) {
            None => JournalHandle::in_memory(),
            Some(mode) => JournalHandle::new(FaultyJournal::new(mode, entropy(self.seed, p))),
        }
    }
}

/// splitmix64-derived corruption entropy for one process.
fn entropy(seed: u64, p: ProcessId) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(p.0 as u64)
        .wrapping_add(0x6a09_e667_f3bc_c909);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`MemJournal`] whose loads pass through one [`StorageFault`].
///
/// Writes are faithful; the fault is a deterministic function of the
/// wrapped journal's commit count and the plan entropy, so the same
/// scenario seed always reveals the same damage.
#[derive(Clone, Debug)]
pub struct FaultyJournal {
    inner: MemJournal,
    mode: StorageFault,
    entropy: u64,
}

impl FaultyJournal {
    /// Wraps a fresh in-memory journal in fault `mode`.
    pub fn new(mode: StorageFault, entropy: u64) -> Self {
        FaultyJournal {
            inner: MemJournal::new(),
            mode,
            entropy,
        }
    }

    fn draw(&self) -> u64 {
        let mut z = self
            .entropy
            .wrapping_add(self.inner.writes().wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl JournalStore for FaultyJournal {
    fn commit(&mut self, record: &[u8]) {
        self.inner.commit(record);
    }

    fn load(&mut self) -> Option<Vec<u8>> {
        match self.mode {
            StorageFault::TornWrite => {
                let bytes = self.inner.load()?;
                if bytes.is_empty() {
                    return Some(bytes);
                }
                // A proper, non-empty prefix of the record.
                let cut = 1 + (self.draw() as usize) % bytes.len().max(2).saturating_sub(1);
                Some(bytes[..cut.min(bytes.len() - 1)].to_vec())
            }
            StorageFault::BitRot => {
                let mut bytes = self.inner.load()?;
                if bytes.is_empty() {
                    return Some(bytes);
                }
                let d = self.draw();
                let byte = (d as usize / 8) % bytes.len();
                bytes[byte] ^= 1 << (d % 8);
                Some(bytes)
            }
            StorageFault::StaleSnapshot => self.inner.nth_back(STALE_EPOCH),
            StorageFault::DroppedSync => self.inner.nth_back(MEM_HISTORY - 1),
        }
    }

    fn commit_seq(&self) -> u64 {
        self.inner.commit_seq()
    }

    fn history(&mut self, k: usize) -> Option<Vec<u8>> {
        // History is shifted by the same lie the latest-record load
        // tells: what reads as "k back" sits k slots behind whatever
        // `load` serves, so recovery's history scan sees a consistent
        // (faulted) past. Undecodable-latest modes serve the truthful
        // at-rest records behind the damaged head.
        match self.mode {
            StorageFault::TornWrite | StorageFault::BitRot => {
                if k == 0 {
                    self.load()
                } else {
                    self.inner.nth_back(k)
                }
            }
            StorageFault::StaleSnapshot => self.inner.nth_back(k + STALE_EPOCH),
            StorageFault::DroppedSync => self.inner.nth_back(MEM_HISTORY - 1 + k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BootPath, EdgeRecord, JournalRecord, ResyncPath};

    fn record(inc: u64) -> Vec<u8> {
        JournalRecord {
            seq: inc + 1,
            tick: inc * 10,
            incarnation: inc,
            phase: 0,
            doorway: false,
            boot: BootPath::Genesis,
            edges: vec![EdgeRecord {
                peer: 1,
                peer_inc: 0,
                flags: 0x30,
                synced: true,
                resume_pending: false,
                resync: ResyncPath::None,
            }],
        }
        .encode()
    }

    #[test]
    fn builder_records_last_fault_per_process() {
        let plan = StorageFaultPlan::new()
            .seed(7)
            .torn_write(ProcessId(0))
            .bit_rot(ProcessId(0))
            .stale_snapshot(ProcessId(2));
        assert!(!plan.is_inert());
        assert_eq!(plan.fault_for(ProcessId(0)), Some(StorageFault::BitRot));
        assert_eq!(
            plan.fault_for(ProcessId(2)),
            Some(StorageFault::StaleSnapshot)
        );
        assert_eq!(plan.fault_for(ProcessId(1)), None);
        assert!(StorageFaultPlan::new().is_inert());
    }

    #[test]
    fn torn_write_yields_undecodable_prefix() {
        let mut j = FaultyJournal::new(StorageFault::TornWrite, 0xDEAD);
        j.commit(&record(1));
        let got = j.load().unwrap();
        assert!(got.len() < record(1).len());
        assert!(JournalRecord::decode(&got).is_err());
    }

    #[test]
    fn bit_rot_yields_undecodable_record() {
        let mut j = FaultyJournal::new(StorageFault::BitRot, 0xBEEF);
        j.commit(&record(1));
        let got = j.load().unwrap();
        assert_eq!(got.len(), record(1).len());
        assert!(JournalRecord::decode(&got).is_err());
    }

    #[test]
    fn stale_snapshot_serves_an_epoch_old_commit() {
        let mut j = FaultyJournal::new(StorageFault::StaleSnapshot, 1);
        for inc in 1..=STALE_EPOCH as u64 {
            j.commit(&record(inc));
        }
        assert_eq!(j.load(), None, "younger than one epoch: nothing durable");
        j.commit(&record(STALE_EPOCH as u64 + 1));
        assert_eq!(j.load(), Some(record(1)), "epoch-deep rollback");
        // The history lens is shifted by the same lie.
        assert_eq!(j.history(0), j.load());
        assert_eq!(j.history(1), None);
    }

    #[test]
    fn dropped_sync_serves_oldest_retained_or_nothing() {
        let mut j = FaultyJournal::new(StorageFault::DroppedSync, 1);
        for inc in 0..5 {
            j.commit(&record(inc));
        }
        assert_eq!(j.load(), None, "short history: nothing became durable");
        for inc in 5..40 {
            j.commit(&record(inc));
        }
        assert_eq!(j.load(), Some(record(40 - MEM_HISTORY as u64)));
    }

    #[test]
    fn faults_are_deterministic() {
        let mk = || {
            let mut j = FaultyJournal::new(StorageFault::BitRot, 42);
            j.commit(&record(9));
            j.load().unwrap()
        };
        assert_eq!(mk(), mk());
    }
}
