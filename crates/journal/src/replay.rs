//! Post-mortem replay: reconstructing the restart narrative from
//! retained journal records.
//!
//! The bounded history ([`crate::history`]) keeps, per process, the dense
//! recent commits plus first/last milestones of every evicted
//! incarnation. That is enough to answer, after the fact and without the
//! live restart log: how many incarnations did this process live, how
//! did each boot (replayed vs blank, and why), which edges fast-resumed,
//! which were renegotiated, and which resumes were refuted as stale by
//! sequence comparison — the per-edge [`ResyncPath`] tags are journaled
//! exactly when the live `RestartPath` counters are bumped, so the two
//! views agree by construction.
//!
//! [`render`] produces a deterministic plain-text narrative: the same
//! journal directory always renders byte-identically.

use crate::codec::{BootPath, JournalRecord, ResyncPath};
use crate::store::{read_segment, sibling};
use std::path::Path;

/// Final state of one edge within an incarnation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSummary {
    /// Neighbor index.
    pub peer: u32,
    /// Whether the edge was synchronized in the last retained record.
    pub synced: bool,
    /// Whether a resume answer was still outstanding at the end.
    pub resume_pending: bool,
    /// How the edge resynced after this incarnation's restart.
    pub resync: ResyncPath,
}

/// One incarnation's reconstructed story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncarnationReplay {
    /// Incarnation number.
    pub incarnation: u64,
    /// How the incarnation booted (from the journaled boot byte).
    pub boot: BootPath,
    /// Commit-seq range covered by the retained records.
    pub first_seq: u64,
    /// Last retained commit seq.
    pub last_seq: u64,
    /// Tick of the first retained commit.
    pub first_tick: u64,
    /// Tick of the last retained commit.
    pub last_tick: u64,
    /// Retained record count (dense + milestones; not total commits).
    pub retained: usize,
    /// Per-edge fate, from the incarnation's last retained record.
    pub edges: Vec<EdgeSummary>,
    /// Human-readable state diffs between consecutive retained records.
    pub diffs: Vec<String>,
}

impl IncarnationReplay {
    /// Edge tallies `(resumed, rejoined, stale_refuted)` — the same
    /// partition the live `RestartPath::Journal` counters record.
    pub fn resync_counts(&self) -> (u32, u32, u32) {
        let count = |p: ResyncPath| self.edges.iter().filter(|e| e.resync == p).count() as u32;
        (
            count(ResyncPath::Resumed),
            count(ResyncPath::Rejoined),
            count(ResyncPath::StaleRefuted),
        )
    }
}

/// One process's reconstructed journal history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessReplay {
    /// Display label (e.g. `p0`).
    pub label: String,
    /// Retained byte-buffers that failed to decode (damaged at rest).
    pub undecodable: usize,
    /// Incarnations in commit order.
    pub incarnations: Vec<IncarnationReplay>,
}

fn phase_name(p: u8) -> &'static str {
    match p {
        0 => "thinking",
        1 => "hungry",
        _ => "eating",
    }
}

/// Differences between two consecutive records, rendered as one line;
/// `None` when nothing observable changed.
fn diff_line(prev: &JournalRecord, next: &JournalRecord) -> Option<String> {
    let mut parts = Vec::new();
    if prev.phase != next.phase {
        parts.push(format!(
            "phase {}→{}",
            phase_name(prev.phase),
            phase_name(next.phase)
        ));
    }
    if prev.doorway != next.doorway {
        parts.push(if next.doorway {
            "enters doorway".into()
        } else {
            "leaves doorway".into()
        });
    }
    for e in &next.edges {
        let Some(pe) = prev.edges.iter().find(|p| p.peer == e.peer) else {
            continue;
        };
        let mut ed = Vec::new();
        if pe.synced != e.synced {
            ed.push(if e.synced { "synced" } else { "unsynced" }.to_string());
        }
        if pe.resume_pending != e.resume_pending {
            ed.push(if e.resume_pending {
                "resume-pending".into()
            } else {
                "resume-settled".into()
            });
        }
        if pe.resync != e.resync {
            ed.push(format!("resync={}", e.resync));
        }
        if pe.flags != e.flags {
            ed.push(format!("flags {:#04x}→{:#04x}", pe.flags, e.flags));
        }
        if pe.peer_inc != e.peer_inc {
            ed.push(format!("peer-inc {}→{}", pe.peer_inc, e.peer_inc));
        }
        if !ed.is_empty() {
            parts.push(format!("p{} {}", e.peer, ed.join(" ")));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(format!(
            "seq {} t{}: {}",
            next.seq,
            next.tick,
            parts.join("; ")
        ))
    }
}

/// Reconstructs one process's narrative from its retained raw records
/// (oldest first — the order `JournalHandle::dump` / the on-disk
/// segments provide). Undecodable buffers are counted, not guessed at.
pub fn replay_process(label: impl Into<String>, raw: &[Vec<u8>]) -> ProcessReplay {
    let mut undecodable = 0usize;
    let mut records: Vec<JournalRecord> = raw
        .iter()
        .filter_map(|b| match JournalRecord::decode(b) {
            Ok(r) => Some(r),
            Err(_) => {
                undecodable += 1;
                None
            }
        })
        .collect();
    records.sort_by_key(|r| r.seq);
    records.dedup_by_key(|r| r.seq);

    let mut incarnations: Vec<OpenIncarnation> = Vec::new();
    for r in records {
        match incarnations.last_mut() {
            Some(inc) if inc.incarnation == r.incarnation => {
                // Extend the running incarnation; diff against the
                // record we summarized last.
                if let Some(prev) = inc.prev.take() {
                    if let Some(line) = diff_line(&prev, &r) {
                        inc.diffs.push(line);
                    }
                }
                inc.last_seq = r.seq;
                inc.last_tick = r.tick;
                inc.retained += 1;
                inc.edges = summarize_edges(&r);
                inc.prev = Some(r);
            }
            _ => incarnations.push(OpenIncarnation::new(r)),
        }
    }
    let incarnations = incarnations.into_iter().map(|i| i.seal()).collect();
    ProcessReplay {
        label: label.into(),
        undecodable,
        incarnations,
    }
}

fn summarize_edges(r: &JournalRecord) -> Vec<EdgeSummary> {
    r.edges
        .iter()
        .map(|e| EdgeSummary {
            peer: e.peer,
            synced: e.synced,
            resume_pending: e.resume_pending,
            resync: e.resync,
        })
        .collect()
}

/// Builder state: an [`IncarnationReplay`] plus the last record seen, so
/// consecutive diffs can be computed streaming.
struct OpenIncarnation {
    incarnation: u64,
    boot: BootPath,
    first_seq: u64,
    last_seq: u64,
    first_tick: u64,
    last_tick: u64,
    retained: usize,
    edges: Vec<EdgeSummary>,
    diffs: Vec<String>,
    prev: Option<JournalRecord>,
}

impl OpenIncarnation {
    fn new(r: JournalRecord) -> OpenIncarnation {
        OpenIncarnation {
            incarnation: r.incarnation,
            boot: r.boot,
            first_seq: r.seq,
            last_seq: r.seq,
            first_tick: r.tick,
            last_tick: r.tick,
            retained: 1,
            edges: summarize_edges(&r),
            diffs: Vec::new(),
            prev: Some(r),
        }
    }
}

impl OpenIncarnation {
    fn seal(self) -> IncarnationReplay {
        IncarnationReplay {
            incarnation: self.incarnation,
            boot: self.boot,
            first_seq: self.first_seq,
            last_seq: self.last_seq,
            first_tick: self.first_tick,
            last_tick: self.last_tick,
            retained: self.retained,
            edges: self.edges,
            diffs: self.diffs,
        }
    }
}

fn edge_fate(e: &EdgeSummary) -> String {
    let mut s = match e.resync {
        ResyncPath::None => {
            if e.synced {
                "synced".to_string()
            } else {
                "unsynced".to_string()
            }
        }
        path => path.to_string(),
    };
    if e.resume_pending {
        s.push_str("+pending");
    }
    s
}

/// Renders the narratives as deterministic plain text: the same inputs
/// always produce byte-identical output.
pub fn render(replays: &[ProcessReplay]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let restarts: usize = replays
        .iter()
        .map(|p| p.incarnations.len().saturating_sub(1))
        .sum();
    let _ = writeln!(
        out,
        "journal replay: {} process(es), {} restart(s)",
        replays.len(),
        restarts
    );
    for p in replays {
        let _ = writeln!(
            out,
            "\n{}: {} incarnation(s){}",
            p.label,
            p.incarnations.len(),
            if p.undecodable > 0 {
                format!(", {} undecodable record(s)", p.undecodable)
            } else {
                String::new()
            }
        );
        for inc in &p.incarnations {
            let (resumed, rejoined, stale) = inc.resync_counts();
            let _ = writeln!(
                out,
                "  inc {} boot={}: seq {}..={}, tick {}..={}, {} retained",
                inc.incarnation,
                inc.boot,
                inc.first_seq,
                inc.last_seq,
                inc.first_tick,
                inc.last_tick,
                inc.retained
            );
            if inc.boot != BootPath::Genesis {
                let _ = writeln!(
                    out,
                    "    resync: {resumed} resumed, {rejoined} rejoined, {stale} stale-refuted"
                );
            }
            if !inc.edges.is_empty() {
                let fates: Vec<String> = inc
                    .edges
                    .iter()
                    .map(|e| format!("p{} {}", e.peer, edge_fate(e)))
                    .collect();
                let _ = writeln!(out, "    edges: {}", fates.join(", "));
            }
            for d in &inc.diffs {
                let _ = writeln!(out, "    {d}");
            }
        }
    }
    out
}

/// Loads every journal in `dir` (active + predecessor segments of each
/// `*.ekj` file, the `FileJournal` on-disk format) and reconstructs the
/// per-process narratives, sorted by file name. Read-only: stray temp
/// files are ignored, not swept.
pub fn load_dir(dir: &Path) -> std::io::Result<Vec<ProcessReplay>> {
    let mut journals: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ekj"))
        .collect();
    journals.sort();
    let mut out = Vec::new();
    for path in journals {
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let label = label.strip_prefix("journal-").unwrap_or(&label).to_string();
        let mut records = read_segment(&sibling(&path, ".old"));
        records.extend(read_segment(&path));
        out.push(replay_process(label, &records));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::EdgeRecord;
    use crate::store::{FileJournal, JournalStore};

    fn rec(seq: u64, inc: u64, boot: BootPath, phase: u8, resync: ResyncPath) -> JournalRecord {
        JournalRecord {
            seq,
            tick: seq * 7,
            incarnation: inc,
            phase,
            doorway: phase == 1,
            boot,
            edges: vec![
                EdgeRecord {
                    peer: 1,
                    peer_inc: inc,
                    flags: 0x30,
                    synced: resync != ResyncPath::None || inc == 0,
                    resume_pending: false,
                    resync,
                },
                EdgeRecord {
                    peer: 3,
                    peer_inc: 0,
                    flags: 0x08,
                    synced: inc == 0,
                    resume_pending: inc != 0 && resync == ResyncPath::None,
                    resync: ResyncPath::None,
                },
            ],
        }
    }

    fn story() -> Vec<Vec<u8>> {
        vec![
            rec(1, 0, BootPath::Genesis, 0, ResyncPath::None).encode(),
            rec(2, 0, BootPath::Genesis, 1, ResyncPath::None).encode(),
            rec(3, 1, BootPath::Journal, 0, ResyncPath::None).encode(),
            rec(4, 1, BootPath::Journal, 0, ResyncPath::Resumed).encode(),
            rec(5, 1, BootPath::Journal, 2, ResyncPath::Resumed).encode(),
        ]
    }

    #[test]
    fn replay_groups_incarnations_and_counts_resyncs() {
        let p = replay_process("p0", &story());
        assert_eq!(p.undecodable, 0);
        assert_eq!(p.incarnations.len(), 2);
        let genesis = &p.incarnations[0];
        assert_eq!(genesis.boot, BootPath::Genesis);
        assert_eq!((genesis.first_seq, genesis.last_seq), (1, 2));
        assert_eq!(genesis.resync_counts(), (0, 0, 0));
        let second = &p.incarnations[1];
        assert_eq!(second.boot, BootPath::Journal);
        assert_eq!(second.retained, 3);
        assert_eq!(second.resync_counts(), (1, 0, 0));
        // The phase transitions show up as diffs.
        assert!(
            genesis.diffs.iter().any(|d| d.contains("thinking→hungry")),
            "{:?}",
            genesis.diffs
        );
        assert!(
            second.diffs.iter().any(|d| d.contains("resync=resumed")),
            "{:?}",
            second.diffs
        );
    }

    #[test]
    fn replay_tolerates_damage_and_disorder() {
        let mut raw = story();
        raw.swap(0, 3); // out of order
        raw.push(b"garbage".to_vec());
        raw.push(raw[1].clone()); // duplicate seq
        let p = replay_process("p0", &raw);
        assert_eq!(p.undecodable, 1);
        assert_eq!(p.incarnations.len(), 2);
        assert_eq!(p.incarnations[1].resync_counts(), (1, 0, 0));
    }

    #[test]
    fn render_is_deterministic_and_readable() {
        let replays = vec![replay_process("p0", &story())];
        let a = render(&replays);
        let b = render(&replays);
        assert_eq!(a, b);
        assert!(a.contains("p0: 2 incarnation(s)"));
        assert!(a.contains("inc 1 boot=journal"));
        assert!(a.contains("1 resumed, 0 rejoined, 0 stale-refuted"));
    }

    #[test]
    fn load_dir_reads_file_journal_segments() {
        let dir = std::env::temp_dir().join(format!("ekbd-replay-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut j = FileJournal::new(dir.join("journal-p0.ekj"));
        for r in &story() {
            j.commit(r);
        }
        // Force a rotation so the predecessor segment exists too.
        for s in 6..30u64 {
            j.commit(&rec(s, 1, BootPath::Journal, 0, ResyncPath::Resumed).encode());
        }
        std::fs::write(dir.join("journal-p0.ekj.tmp"), b"stray").unwrap();
        let replays = load_dir(&dir).unwrap();
        assert_eq!(replays.len(), 1);
        assert_eq!(replays[0].label, "p0");
        assert_eq!(replays[0].incarnations.len(), 2);
        assert_eq!(replays[0].incarnations[0].first_seq, 1);
        assert!(
            dir.join("journal-p0.ekj.tmp").exists(),
            "replay is read-only: stray tmp untouched"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
