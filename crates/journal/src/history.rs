//! Bounded commit history with milestone compaction.
//!
//! Both journal backends retain the same shape of history: a dense window
//! of the most recent commits (every record, in order) plus a compacted
//! tail of *milestones* — for each incarnation that has aged out of the
//! dense window, its first and last evicted records. Milestones keep the
//! restart boundaries alive for post-mortem replay (when did each
//! incarnation start, what state did it end in) while the retained size
//! stays bounded by `cap + 2 × incarnations` instead of growing with the
//! commit count.
//!
//! Records are opaque bytes at this layer; classification for compaction
//! uses [`crate::codec::peek`], which reads only the header. Bytes that
//! do not even carry the magic (nothing a real commit produces) are
//! dropped at eviction rather than guessed about.

use crate::codec::peek;
use std::collections::VecDeque;

/// A bounded, compacting window of committed records.
#[derive(Clone, Debug, Default)]
pub struct HistoryWindow {
    /// Dense window of the most recent commits, oldest first.
    recent: VecDeque<Vec<u8>>,
    /// Milestone records evicted from the dense window, oldest first: at
    /// most the first and last record per evicted incarnation.
    compacted: Vec<Vec<u8>>,
    /// Dense-window capacity.
    cap: usize,
    /// Total commits ever pushed.
    writes: u64,
}

impl HistoryWindow {
    /// An empty window retaining up to `cap` dense records.
    pub fn new(cap: usize) -> Self {
        HistoryWindow {
            recent: VecDeque::with_capacity(cap),
            compacted: Vec::new(),
            cap: cap.max(1),
            writes: 0,
        }
    }

    /// Appends one committed record, rotating the dense window into the
    /// compacted tail when full. Returns `true` when a rotation happened
    /// (file-backed stores rewrite their predecessor segment on rotation).
    pub fn push(&mut self, record: Vec<u8>) -> bool {
        self.writes += 1;
        let rotated = self.recent.len() >= self.cap;
        if rotated {
            let evicted: Vec<Vec<u8>> = self.recent.drain(..).collect();
            for r in evicted {
                absorb_milestone(&mut self.compacted, r);
            }
        }
        self.recent.push_back(record);
        rotated
    }

    /// Total commits ever pushed (not capped by retention).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Retained record count (dense + compacted).
    pub fn retained(&self) -> usize {
        self.recent.len() + self.compacted.len()
    }

    /// The latest record, if any.
    pub fn latest(&self) -> Option<&Vec<u8>> {
        self.recent.back().or_else(|| self.compacted.last())
    }

    /// The `k`-th most recently *retained* record (`0` = latest): walks
    /// the dense window backwards, then the compacted milestones.
    pub fn nth_back(&self, k: usize) -> Option<&Vec<u8>> {
        if k < self.recent.len() {
            return self.recent.get(self.recent.len() - 1 - k);
        }
        let k = k - self.recent.len();
        if k < self.compacted.len() {
            return self.compacted.get(self.compacted.len() - 1 - k);
        }
        None
    }

    /// All retained records, oldest first.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.compacted.iter().chain(self.recent.iter())
    }

    /// The dense window, oldest first (the file store's active segment).
    pub fn dense(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.recent.iter()
    }

    /// The compacted milestones, oldest first (the file store's
    /// predecessor segment).
    pub fn milestones(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.compacted.iter()
    }

    /// Rebuilds a window from already-persisted segments (used by the
    /// file store at boot). `writes` is seeded from the retained count —
    /// the floor of what was ever committed.
    pub fn from_segments(compacted: Vec<Vec<u8>>, recent: Vec<Vec<u8>>, cap: usize) -> Self {
        let writes = (compacted.len() + recent.len()) as u64;
        HistoryWindow {
            recent: recent.into(),
            compacted,
            cap: cap.max(1),
            writes,
        }
    }
}

/// Folds one evicted record into the milestone tail: per incarnation,
/// keep the first evicted record and the most recent one. Evictions
/// arrive oldest-first and incarnations are monotone, so only the tail
/// can share an incarnation with the newcomer.
fn absorb_milestone(compacted: &mut Vec<Vec<u8>>, record: Vec<u8>) {
    let Some(meta) = peek(&record) else {
        // Not a journal record (nothing the commit path produces); there
        // is no incarnation to file it under, so it does not survive
        // compaction.
        return;
    };
    let inc_of = |r: &[u8]| peek(r).map(|m| m.incarnation);
    let n = compacted.len();
    let last_inc = n.checked_sub(1).and_then(|i| inc_of(&compacted[i]));
    let prev_inc = n.checked_sub(2).and_then(|i| inc_of(&compacted[i]));
    if last_inc == Some(meta.incarnation) && prev_inc == Some(meta.incarnation) {
        // First and latest of this incarnation already held: slide the
        // "latest" milestone forward.
        compacted[n - 1] = record;
    } else {
        compacted.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BootPath, JournalRecord};

    fn rec(seq: u64, inc: u64) -> Vec<u8> {
        JournalRecord {
            seq,
            tick: seq * 10,
            incarnation: inc,
            phase: 0,
            doorway: false,
            boot: BootPath::Genesis,
            edges: vec![],
        }
        .encode()
    }

    #[test]
    fn dense_window_serves_exact_history() {
        let mut w = HistoryWindow::new(4);
        for s in 1..=4 {
            assert!(!w.push(rec(s, 0)));
        }
        assert_eq!(w.latest(), Some(&rec(4, 0)));
        assert_eq!(w.nth_back(3), Some(&rec(1, 0)));
        assert_eq!(w.nth_back(4), None);
    }

    #[test]
    fn rotation_compacts_to_incarnation_milestones() {
        let mut w = HistoryWindow::new(4);
        // Incarnation 0: seq 1..=6 — more than one window's worth.
        for s in 1..=6 {
            w.push(rec(s, 0));
        }
        // Incarnation 1: seq 7..=11 — forces another rotation.
        for s in 7..=11 {
            w.push(rec(s, 1));
        }
        assert_eq!(w.writes(), 11);
        // Dense: the records after the last rotation.
        let dense: Vec<_> = w.dense().cloned().collect();
        assert_eq!(dense, vec![rec(9, 1), rec(10, 1), rec(11, 1)]);
        // Compacted: first+last evicted of inc 0, then the evicted of
        // inc 1 so far (only one eviction batch has hit it).
        let miles: Vec<_> = w.milestones().cloned().collect();
        assert_eq!(miles.first(), Some(&rec(1, 0)));
        assert!(miles.contains(&rec(7, 1)));
        // No incarnation holds more than 2 milestones.
        for inc in [0u64, 1] {
            let per = miles
                .iter()
                .filter(|r| peek(r).unwrap().incarnation == inc)
                .count();
            assert!(per <= 2, "inc {inc} kept {per} milestones");
        }
        // nth_back spans dense then compacted seamlessly.
        assert_eq!(w.nth_back(0), Some(&rec(11, 1)));
        assert_eq!(w.nth_back(2), Some(&rec(9, 1)));
        assert_eq!(w.nth_back(3), Some(&miles[miles.len() - 1]));
    }

    #[test]
    fn unparseable_bytes_do_not_survive_compaction() {
        let mut w = HistoryWindow::new(2);
        w.push(b"junk-1".to_vec());
        w.push(b"junk-2".to_vec());
        w.push(rec(1, 0)); // rotation: junk evicted, dropped
        assert_eq!(w.retained(), 1);
        assert_eq!(w.latest(), Some(&rec(1, 0)));
    }

    #[test]
    fn from_segments_restores_order_and_writes_floor() {
        let w = HistoryWindow::from_segments(vec![rec(1, 0)], vec![rec(2, 0), rec(3, 0)], 4);
        assert_eq!(w.writes(), 3);
        assert_eq!(w.latest(), Some(&rec(3, 0)));
        assert_eq!(w.nth_back(2), Some(&rec(1, 0)));
        let all: Vec<_> = w.iter_oldest_first().cloned().collect();
        assert_eq!(all, vec![rec(1, 0), rec(2, 0), rec(3, 0)]);
    }
}
