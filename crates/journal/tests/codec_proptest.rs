//! Property-based tests of the journal codec: encode/decode round-trip
//! identity over arbitrary records, and *detection* (never silent
//! acceptance of different state) for every single-bit flip and every
//! truncation point of every encoding.

use ekbd_journal::{BootPath, EdgeRecord, JournalRecord, ResyncPath};
use proptest::prelude::*;

/// Strategy: an arbitrary journal record. The vendored proptest shim has
/// no `bool` strategy, so boolean fields are drawn as 0/1 integers and
/// enums from small integer ranges.
fn record() -> impl Strategy<Value = JournalRecord> {
    let edge =
        (0u32..64, 0u64..1_000, 0u8..0x40, 0u8..16).prop_map(|(peer, peer_inc, flags, sync)| {
            EdgeRecord {
                peer,
                peer_inc,
                flags,
                synced: sync & 1 != 0,
                resume_pending: sync & 2 != 0,
                resync: match sync >> 2 {
                    1 => ResyncPath::Resumed,
                    2 => ResyncPath::Rejoined,
                    3 => ResyncPath::StaleRefuted,
                    _ => ResyncPath::None,
                },
            }
        });
    (
        (0u64..100_000, 0u64..100_000, 0u64..10_000),
        0u8..3,
        0u8..2,
        0u8..5,
        proptest::collection::vec(edge, 0..12),
    )
        .prop_map(
            |((seq, tick, incarnation), phase, doorway, boot, edges)| JournalRecord {
                seq,
                tick,
                incarnation,
                phase,
                doorway: doorway == 1,
                boot: match boot {
                    1 => BootPath::Journal,
                    2 => BootPath::BlankMissing,
                    3 => BootPath::BlankCorrupt,
                    4 => BootPath::BlankDisabled,
                    _ => BootPath::Genesis,
                },
                edges,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip identity: decode(encode(r)) == r for arbitrary states.
    #[test]
    fn round_trip_identity(r in record()) {
        let bytes = r.encode();
        let back = JournalRecord::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, r);
    }

    /// Single-bit rot anywhere in the encoding is always *detected*: the
    /// decoder either errors or — never — silently accepts different
    /// state. (The CRC makes acceptance of changed bytes impossible.)
    #[test]
    fn every_single_bit_flip_is_detected(r in record()) {
        let bytes = r.encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut rotted = bytes.clone();
                rotted[i] ^= 1 << bit;
                match JournalRecord::decode(&rotted) {
                    Err(_) => {}
                    Ok(decoded) => prop_assert_eq!(
                        &decoded,
                        &r,
                        "flip at byte {} bit {} silently accepted as different state",
                        i,
                        bit
                    ),
                }
            }
        }
    }

    /// A torn write (any proper prefix) is always rejected: the declared
    /// edge count fixes the exact record length, so no truncation point
    /// can decode.
    #[test]
    fn every_truncation_point_is_detected(r in record()) {
        let bytes = r.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                JournalRecord::decode(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes decoded",
                cut,
                bytes.len()
            );
        }
    }

    /// Appended garbage is likewise structurally rejected.
    #[test]
    fn trailing_garbage_is_detected(r in record(), extra in 1usize..16, fill in 0u8..=255) {
        let mut bytes = r.encode();
        bytes.extend(std::iter::repeat_n(fill, extra));
        prop_assert!(JournalRecord::decode(&bytes).is_err());
    }

    /// The cheap header peek agrees with the full decode on every valid
    /// encoding (the store's compaction classifier never disagrees with
    /// recovery's validated view).
    #[test]
    fn peek_agrees_with_decode(r in record()) {
        let bytes = r.encode();
        let meta = ekbd_journal::codec::peek(&bytes).expect("valid record peeks");
        prop_assert_eq!(meta.seq, r.seq);
        prop_assert_eq!(meta.tick, r.tick);
        prop_assert_eq!(meta.incarnation, r.incarnation);
    }
}
