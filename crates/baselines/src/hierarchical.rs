use ekbd_detector::SuspicionView;
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg};
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};

mod flag {
    pub const FORK: u8 = 1 << 0;
    pub const TOKEN: u8 = 1 << 1;
    pub const DEFERRED: u8 = 1 << 2;
}

/// Dijkstra's resource-hierarchy dining: forks are acquired **one at a
/// time in a global order** (here: neighbor id order), and a held fork is
/// never released while hungry.
///
/// Acquiring in a fixed global order makes the wait-for graph acyclic, so
/// the algorithm is deadlock-free *and* starvation-free without any
/// doorway — the textbook alternative to Choy–Singh. Its weaknesses are
/// exactly what the experiments show:
///
/// * **no crash tolerance** (this implementation takes ◇P₁ for the eat
///   guard like Algorithm 1, so it stays wait-free in our runs; drop the
///   oracle and it blocks like Choy–Singh);
/// * **low concurrency**: holding fork `k` while waiting for fork `k+1`
///   serializes long chains, which shows up as higher hungry-session
///   latency and lower throughput in E12.
#[derive(Clone, Debug)]
pub struct HierarchicalProcess {
    id: ProcessId,
    color: Color,
    neighbors: Vec<ProcessId>,
    state: DinerState,
    vars: Vec<u8>,
    /// Index of the next fork to acquire (in sorted-neighbor order).
    cursor: usize,
}

impl HierarchicalProcess {
    /// Creates the process; initial fork placement mirrors Algorithm 1
    /// (fork at the higher color, token at the lower).
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut pairs: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut vars = Vec::with_capacity(pairs.len());
        for (q, qcolor) in pairs {
            assert!(q != id, "a process is not its own neighbor");
            assert!(qcolor != color, "coloring must be proper");
            ids.push(q);
            vars.push(if color > qcolor {
                flag::FORK
            } else {
                flag::TOKEN
            });
        }
        HierarchicalProcess {
            id,
            color,
            neighbors: ids,
            state: DinerState::Thinking,
            vars,
            cursor: 0,
        }
    }

    /// Creates the process from a colored conflict graph.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    fn idx(&self, q: ProcessId) -> usize {
        self.neighbors
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id))
    }

    fn get(&self, j: usize, f: u8) -> bool {
        self.vars[j] & f != 0
    }

    fn set(&mut self, j: usize, f: u8, v: bool) {
        if v {
            self.vars[j] |= f;
        } else {
            self.vars[j] &= !f;
        }
    }

    fn internal_actions(
        &mut self,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        if self.state != DinerState::Hungry {
            return;
        }
        // Advance the cursor over forks already held or owned by suspects,
        // requesting at most ONE outstanding fork at a time (the ordered
        // acquisition that makes the wait-for graph acyclic).
        while self.cursor < self.neighbors.len() {
            let j = self.cursor;
            if self.get(j, flag::FORK) || suspicion.suspects(self.neighbors[j]) {
                self.cursor += 1;
            } else {
                if self.get(j, flag::TOKEN) {
                    sends.push((self.neighbors[j], DiningMsg::Request { color: self.color }));
                    self.set(j, flag::TOKEN, false);
                }
                return; // wait for this fork before touching the next
            }
        }
        self.state = DinerState::Eating;
    }
}

impl DiningAlgorithm for HierarchicalProcess {
    type Msg = DiningMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        match input {
            DiningInput::Hungry => {
                if self.state == DinerState::Thinking {
                    self.state = DinerState::Hungry;
                    self.cursor = 0;
                }
            }
            DiningInput::DoneEating => {
                if self.state == DinerState::Eating {
                    self.state = DinerState::Thinking;
                    self.cursor = 0;
                    for j in 0..self.neighbors.len() {
                        if self.get(j, flag::DEFERRED) && self.get(j, flag::FORK) {
                            sends.push((self.neighbors[j], DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                            self.set(j, flag::DEFERRED, false);
                        }
                    }
                }
            }
            DiningInput::Message { from, msg } => {
                let j = self.idx(from);
                match msg {
                    DiningMsg::Request { .. } => {
                        debug_assert!(self.get(j, flag::FORK), "request without fork");
                        self.set(j, flag::TOKEN, true);
                        // A hungry process holding the fork keeps it only
                        // while it has not passed it in acquisition order:
                        // holding lower-order forks while granting
                        // higher-order ones would break the hierarchy, so
                        // defer iff eating, or hungry and this fork is at
                        // or below the cursor (already "locked in").
                        let locked = match self.state {
                            DinerState::Eating => true,
                            DinerState::Hungry => j < self.cursor.min(self.neighbors.len()),
                            DinerState::Thinking => false,
                        };
                        if locked {
                            self.set(j, flag::DEFERRED, true);
                        } else {
                            sends.push((from, DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                        }
                    }
                    DiningMsg::Fork => {
                        debug_assert!(!self.get(j, flag::FORK), "duplicate fork");
                        self.set(j, flag::FORK, true);
                    }
                    DiningMsg::Ping | DiningMsg::Ack => {
                        debug_assert!(false, "hierarchical dining has no doorway traffic");
                    }
                }
            }
            DiningInput::SuspicionChange => {}
        }
        self.internal_actions(suspicion, sends);
    }

    fn state(&self) -> DinerState {
        self.state
    }

    /// 2 (state) + ⌈log₂(δ+1)⌉ (color) + ⌈log₂(δ+1)⌉ (cursor) + 3δ.
    fn state_bits(&self) -> usize {
        let delta = self.neighbors.len();
        let width = (usize::BITS - delta.max(1).leading_zeros()) as usize;
        2 + 2 * width + 3 * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    #[test]
    fn requests_forks_one_at_a_time() {
        // p1 with neighbors p0 (higher color) and p2 (higher color): holds
        // neither fork, must request p0's first, p2's only after.
        let mut proc_ = HierarchicalProcess::new(p(1), 0, [(p(0), 1), (p(2), 2)]);
        let mut out = Vec::new();
        proc_.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(out, vec![(p(0), DiningMsg::Request { color: 0 })]);
        // First fork arrives → only now the second request goes out.
        let mut out = Vec::new();
        proc_.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(2), DiningMsg::Request { color: 0 })]);
        let mut out = Vec::new();
        proc_.handle(
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut out,
        );
        assert_eq!(proc_.state(), DinerState::Eating);
    }

    #[test]
    fn locked_forks_are_deferred_until_exit() {
        let mut proc_ = HierarchicalProcess::new(p(1), 0, [(p(0), 1), (p(2), 2)]);
        proc_.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        proc_.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut Vec::new(),
        );
        // p0's fork is now "locked in" (cursor has moved past it): a
        // request for it is deferred even though p1 is still hungry.
        let mut out = Vec::new();
        proc_.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Request { color: 1 },
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "locked fork deferred");
        // Finish acquiring and eating; exit returns the deferred fork.
        proc_.handle(
            DiningInput::Message {
                from: p(2),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut Vec::new(),
        );
        assert_eq!(proc_.state(), DinerState::Eating);
        let mut out = Vec::new();
        proc_.handle(DiningInput::DoneEating, &none(), &mut out);
        assert_eq!(out, vec![(p(0), DiningMsg::Fork)]);
    }

    #[test]
    fn thinking_holder_grants_immediately() {
        let mut holder = HierarchicalProcess::new(p(0), 1, [(p(1), 0)]);
        let mut out = Vec::new();
        holder.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Fork)]);
    }

    #[test]
    fn suspicion_skips_dead_fork_owners() {
        let mut proc_ = HierarchicalProcess::new(p(1), 0, [(p(0), 1), (p(2), 2)]);
        let suspects: BTreeSet<ProcessId> = [p(0), p(2)].into_iter().collect();
        let mut out = Vec::new();
        proc_.handle(DiningInput::Hungry, &suspects, &mut out);
        assert_eq!(proc_.state(), DinerState::Eating, "wait-free via ◇P₁");
        assert!(out.is_empty());
    }

    #[test]
    fn state_bits_accounting() {
        let h = HierarchicalProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        assert_eq!(h.state_bits(), 2 + 2 + 2 + 6);
    }
}
