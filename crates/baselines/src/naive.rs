use ekbd_detector::SuspicionView;
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg};
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};

mod flag {
    pub const FORK: u8 = 1 << 0;
    pub const TOKEN: u8 = 1 << 1;
}

/// Fork collection with static color priorities and **no doorway**.
///
/// The hungry process requests every missing fork; the holder grants unless
/// it is eating or is itself hungry with the higher color. Eating requires
/// every fork to be held or its holder suspected (so the algorithm is
/// crash-tolerant via ◇P₁, like Algorithm 1's phase 2 alone).
///
/// What it lacks is *fairness*: nothing stops a higher-color neighbor from
/// re-acquiring a contested fork again and again while a lower-color diner
/// stays hungry. The overtaking count is bounded only by the neighbor's
/// appetite — this is the baseline the asynchronous doorway (and the
/// paper's ◇2-BW theorem) improves on, measured in experiment E3.
#[derive(Clone, Debug)]
pub struct NaivePriorityProcess {
    id: ProcessId,
    color: Color,
    neighbors: Vec<ProcessId>,
    state: DinerState,
    vars: Vec<u8>,
}

impl NaivePriorityProcess {
    /// Creates the process; fork at the higher-color endpoint, token at the
    /// lower, as in Algorithm 1.
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut pairs: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut vars = Vec::with_capacity(pairs.len());
        for (q, qcolor) in pairs {
            assert!(q != id, "a process is not its own neighbor");
            assert!(qcolor != color, "coloring must be proper");
            ids.push(q);
            vars.push(if color > qcolor {
                flag::FORK
            } else {
                flag::TOKEN
            });
        }
        NaivePriorityProcess {
            id,
            color,
            neighbors: ids,
            state: DinerState::Thinking,
            vars,
        }
    }

    /// Creates the process from a colored conflict graph.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    fn idx(&self, q: ProcessId) -> usize {
        self.neighbors
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id))
    }

    fn get(&self, j: usize, f: u8) -> bool {
        self.vars[j] & f != 0
    }

    fn set(&mut self, j: usize, f: u8, v: bool) {
        if v {
            self.vars[j] |= f;
        } else {
            self.vars[j] &= !f;
        }
    }

    fn internal_actions(
        &mut self,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        if self.state != DinerState::Hungry {
            return;
        }
        for j in 0..self.neighbors.len() {
            if self.get(j, flag::TOKEN) && !self.get(j, flag::FORK) {
                sends.push((self.neighbors[j], DiningMsg::Request { color: self.color }));
                self.set(j, flag::TOKEN, false);
            }
        }
        let all = (0..self.neighbors.len())
            .all(|j| self.get(j, flag::FORK) || suspicion.suspects(self.neighbors[j]));
        if all {
            self.state = DinerState::Eating;
        }
    }
}

impl DiningAlgorithm for NaivePriorityProcess {
    type Msg = DiningMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        suspicion: &dyn SuspicionView,
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        match input {
            DiningInput::Hungry => {
                if self.state == DinerState::Thinking {
                    self.state = DinerState::Hungry;
                }
            }
            DiningInput::DoneEating => {
                if self.state == DinerState::Eating {
                    self.state = DinerState::Thinking;
                    for j in 0..self.neighbors.len() {
                        if self.get(j, flag::TOKEN) && self.get(j, flag::FORK) {
                            sends.push((self.neighbors[j], DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                        }
                    }
                }
            }
            DiningInput::Message { from, msg } => {
                let j = self.idx(from);
                match msg {
                    DiningMsg::Request { color } => {
                        debug_assert!(self.get(j, flag::FORK), "request without fork");
                        self.set(j, flag::TOKEN, true);
                        // Defer while eating, or while hungry with the
                        // higher color; grant otherwise.
                        let grant = match self.state {
                            DinerState::Eating => false,
                            DinerState::Hungry => self.color < color,
                            DinerState::Thinking => true,
                        };
                        if grant {
                            sends.push((from, DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                        }
                    }
                    DiningMsg::Fork => {
                        debug_assert!(!self.get(j, flag::FORK), "duplicate fork");
                        self.set(j, flag::FORK, true);
                    }
                    DiningMsg::Ping | DiningMsg::Ack => {
                        debug_assert!(false, "naive dining has no doorway traffic");
                    }
                }
            }
            DiningInput::SuspicionChange => {}
        }
        self.internal_actions(suspicion, sends);
    }

    fn state(&self) -> DinerState {
        self.state
    }

    /// 2 (state) + ⌈log₂(δ+1)⌉ (color) + 2δ (fork, token).
    fn state_bits(&self) -> usize {
        let delta = self.neighbors.len();
        let color_bits = (usize::BITS - delta.max(1).leading_zeros()) as usize;
        2 + color_bits + 2 * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    #[test]
    fn fork_transfer_lets_low_color_eat() {
        let mut hi = NaivePriorityProcess::new(p(0), 1, [(p(1), 0)]);
        let mut lo = NaivePriorityProcess::new(p(1), 0, [(p(0), 1)]);
        let mut out = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(out, vec![(p(0), DiningMsg::Request { color: 0 })]);
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Fork)], "thinking holder grants");
        let mut out = Vec::new();
        lo.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut out,
        );
        assert_eq!(lo.state(), DinerState::Eating);
    }

    #[test]
    fn hungry_higher_color_defers_lower_request() {
        let mut hi = NaivePriorityProcess::new(p(0), 1, [(p(1), 0)]);
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        assert_eq!(hi.state(), DinerState::Eating, "held its only fork");
        // Make a fresh hungry-but-not-eating hi with two neighbors.
        let mut hi = NaivePriorityProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        let mut out = Vec::new();
        hi.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(hi.state(), DinerState::Hungry, "fork from p2 missing");
        assert_eq!(out, vec![(p(2), DiningMsg::Request { color: 1 })]);
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "hungry higher color defers");
    }

    #[test]
    fn suspicion_substitutes_for_forks() {
        let mut lo = NaivePriorityProcess::new(p(1), 0, [(p(0), 1)]);
        let everyone: BTreeSet<ProcessId> = [p(0)].into_iter().collect();
        let mut out = Vec::new();
        lo.handle(DiningInput::Hungry, &everyone, &mut out);
        assert_eq!(lo.state(), DinerState::Eating, "wait-free via ◇P₁");
    }

    #[test]
    fn exit_grants_deferred_requests() {
        let mut hi = NaivePriorityProcess::new(p(0), 1, [(p(1), 0)]);
        hi.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        assert_eq!(hi.state(), DinerState::Eating);
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert!(out.is_empty(), "eating holder defers");
        let mut out = Vec::new();
        hi.handle(DiningInput::DoneEating, &none(), &mut out);
        assert_eq!(out, vec![(p(1), DiningMsg::Fork)]);
    }

    #[test]
    fn state_bits_is_leanest() {
        let n = NaivePriorityProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        assert_eq!(n.state_bits(), 2 + 2 + 4);
    }
}
