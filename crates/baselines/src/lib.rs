//! Baseline dining algorithms the paper is compared against.
//!
//! * [`ChoySinghProcess`] — the *original* asynchronous-doorway algorithm of
//!   Choy & Singh (ACM TOPLAS 1995) that Algorithm 1 refines: forks +
//!   doorway, but **no failure detector** and **unlimited acks per hungry
//!   session**. Crash-oblivious: a neighbor that crashes while holding a
//!   fork, or inside the doorway, blocks it forever — the starvation the
//!   paper's §1 argues makes stabilization impossible without crash-fault
//!   detection.
//! * [`NaivePriorityProcess`] — fork collection with static color
//!   priorities but **no doorway**. It uses ◇P₁, so it stays wait-free in
//!   our experiments' finite workloads, but nothing bounds how often a
//!   high-priority diner overtakes a continuously hungry low-priority
//!   neighbor: the contrast that motivates the doorway and the ◇2-BW claim
//!   (experiment E3).
//!
//! * [`HierarchicalProcess`] — Dijkstra's resource-hierarchy dining:
//!   forks acquired one at a time in a global order (no doorway, no
//!   deadlock by construction). Starvation-free but low-concurrency: the
//!   ordered chains serialize, which experiment E12 quantifies against
//!   Algorithm 1's doorway.
//!
//! All of them implement [`DiningAlgorithm`], so every harness, metric,
//! and benchmark in the workspace runs them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod choy_singh;
mod hierarchical;
mod naive;

pub use choy_singh::ChoySinghProcess;
pub use hierarchical::HierarchicalProcess;
pub use naive::NaivePriorityProcess;
