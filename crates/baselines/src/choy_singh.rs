use ekbd_detector::SuspicionView;
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg};
use ekbd_graph::coloring::Color;
use ekbd_graph::{ConflictGraph, ProcessId};

/// Per-neighbor flags (no `replied`: the original doorway grants acks
/// without a per-session limit).
mod flag {
    pub const PINGED: u8 = 1 << 0;
    pub const ACK: u8 = 1 << 1;
    pub const DEFERRED: u8 = 1 << 2;
    pub const FORK: u8 = 1 << 3;
    pub const TOKEN: u8 = 1 << 4;
}

/// The original Choy–Singh asynchronous-doorway dining algorithm, as
/// described in §3 of Song & Pike before their two modifications.
///
/// Differences from Algorithm 1:
///
/// 1. **No failure detector.** The doorway guard requires *all* acks and
///    the eating guard *all* forks; a crashed neighbor therefore blocks its
///    hungry neighbors forever (no wait-freedom).
/// 2. **Unlimited acks.** A hungry process outside the doorway grants every
///    ping (the original rule: defer only while inside the doorway), so a
///    neighbor can overtake more than twice while it waits.
///
/// The message protocol (ping/ack, token/fork with color priorities, FIFO
/// channels) is otherwise identical, which isolates the contribution of
/// ◇P₁ and of the revised doorway in the experiments.
#[derive(Clone, Debug)]
pub struct ChoySinghProcess {
    id: ProcessId,
    color: Color,
    neighbors: Vec<ProcessId>,
    state: DinerState,
    inside: bool,
    vars: Vec<u8>,
}

impl ChoySinghProcess {
    /// Creates the process; fork/token placement mirrors Algorithm 1 (fork
    /// at the higher-color endpoint).
    pub fn new(
        id: ProcessId,
        color: Color,
        neighbors: impl IntoIterator<Item = (ProcessId, Color)>,
    ) -> Self {
        let mut pairs: Vec<(ProcessId, Color)> = neighbors.into_iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut vars = Vec::with_capacity(pairs.len());
        for (q, qcolor) in pairs {
            assert!(q != id, "a process is not its own neighbor");
            assert!(qcolor != color, "coloring must be proper");
            ids.push(q);
            vars.push(if color > qcolor {
                flag::FORK
            } else {
                flag::TOKEN
            });
        }
        ChoySinghProcess {
            id,
            color,
            neighbors: ids,
            state: DinerState::Thinking,
            inside: false,
            vars,
        }
    }

    /// Creates the process from a colored conflict graph.
    pub fn from_graph(g: &ConflictGraph, colors: &[Color], id: ProcessId) -> Self {
        Self::new(
            id,
            colors[id.index()],
            g.neighbors(id).iter().map(|&q| (q, colors[q.index()])),
        )
    }

    fn idx(&self, q: ProcessId) -> usize {
        self.neighbors
            .binary_search(&q)
            .unwrap_or_else(|_| panic!("{q} is not a neighbor of {}", self.id))
    }

    fn get(&self, j: usize, f: u8) -> bool {
        self.vars[j] & f != 0
    }

    fn set(&mut self, j: usize, f: u8, v: bool) {
        if v {
            self.vars[j] |= f;
        } else {
            self.vars[j] &= !f;
        }
    }

    fn internal_actions(&mut self, sends: &mut Vec<(ProcessId, DiningMsg)>) {
        // Request acks (outside the doorway).
        if self.state == DinerState::Hungry && !self.inside {
            for j in 0..self.neighbors.len() {
                if !self.get(j, flag::PINGED) && !self.get(j, flag::ACK) {
                    sends.push((self.neighbors[j], DiningMsg::Ping));
                    self.set(j, flag::PINGED, true);
                }
            }
            // Enter the doorway: ALL acks required — no oracle substitute.
            if (0..self.neighbors.len()).all(|j| self.get(j, flag::ACK)) {
                self.inside = true;
                for j in 0..self.neighbors.len() {
                    self.set(j, flag::ACK, false);
                }
            }
        }
        // Request forks (inside the doorway).
        if self.state == DinerState::Hungry && self.inside {
            for j in 0..self.neighbors.len() {
                if self.get(j, flag::TOKEN) && !self.get(j, flag::FORK) {
                    sends.push((self.neighbors[j], DiningMsg::Request { color: self.color }));
                    self.set(j, flag::TOKEN, false);
                }
            }
            // Eat: ALL forks required.
            if (0..self.neighbors.len()).all(|j| self.get(j, flag::FORK)) {
                self.state = DinerState::Eating;
            }
        }
    }
}

impl DiningAlgorithm for ChoySinghProcess {
    type Msg = DiningMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn handle(
        &mut self,
        input: DiningInput<DiningMsg>,
        _suspicion: &dyn SuspicionView, // crash-oblivious: never consulted
        sends: &mut Vec<(ProcessId, DiningMsg)>,
    ) {
        match input {
            DiningInput::Hungry => {
                if self.state == DinerState::Thinking {
                    self.state = DinerState::Hungry;
                }
            }
            DiningInput::DoneEating => {
                if self.state == DinerState::Eating {
                    self.inside = false;
                    self.state = DinerState::Thinking;
                    for j in 0..self.neighbors.len() {
                        if self.get(j, flag::TOKEN) && self.get(j, flag::FORK) {
                            sends.push((self.neighbors[j], DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                        }
                        if self.get(j, flag::DEFERRED) {
                            sends.push((self.neighbors[j], DiningMsg::Ack));
                            self.set(j, flag::DEFERRED, false);
                        }
                    }
                }
            }
            DiningInput::Message { from, msg } => {
                let j = self.idx(from);
                match msg {
                    DiningMsg::Ping => {
                        // Original rule: defer only while inside the doorway.
                        if self.inside {
                            self.set(j, flag::DEFERRED, true);
                        } else {
                            sends.push((from, DiningMsg::Ack));
                        }
                    }
                    DiningMsg::Ack => {
                        let useful = self.state == DinerState::Hungry && !self.inside;
                        self.set(j, flag::ACK, useful);
                        self.set(j, flag::PINGED, false);
                    }
                    DiningMsg::Request { color } => {
                        debug_assert!(self.get(j, flag::FORK), "request without fork");
                        self.set(j, flag::TOKEN, true);
                        let grant = !self.inside
                            || (self.state == DinerState::Hungry && self.color < color);
                        if grant {
                            sends.push((from, DiningMsg::Fork));
                            self.set(j, flag::FORK, false);
                        }
                    }
                    DiningMsg::Fork => {
                        debug_assert!(!self.get(j, flag::FORK), "duplicate fork");
                        self.set(j, flag::FORK, true);
                    }
                }
            }
            DiningInput::SuspicionChange => {}
        }
        self.internal_actions(sends);
    }

    fn state(&self) -> DinerState {
        self.state
    }

    fn inside_doorway(&self) -> bool {
        self.inside
    }

    /// 2 (state) + 1 (inside) + ⌈log₂(δ+1)⌉ (color) + 5δ (one flag fewer
    /// than Algorithm 1: no `replied`).
    fn state_bits(&self) -> usize {
        let delta = self.neighbors.len();
        let color_bits = (usize::BITS - delta.max(1).leading_zeros()) as usize;
        2 + 1 + color_bits + 5 * delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn none() -> BTreeSet<ProcessId> {
        BTreeSet::new()
    }

    #[test]
    fn two_process_handshake_completes() {
        let mut hi = ChoySinghProcess::new(p(0), 1, [(p(1), 0)]);
        let mut lo = ChoySinghProcess::new(p(1), 0, [(p(0), 1)]);
        let mut out = Vec::new();
        lo.handle(DiningInput::Hungry, &none(), &mut out);
        assert_eq!(out, vec![(p(0), DiningMsg::Ping)]);
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Ping,
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Ack)]);
        let mut out = Vec::new();
        lo.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Ack,
            },
            &none(),
            &mut out,
        );
        assert!(lo.inside_doorway());
        assert_eq!(out, vec![(p(0), DiningMsg::Request { color: 0 })]);
        let mut out = Vec::new();
        hi.handle(
            DiningInput::Message {
                from: p(1),
                msg: DiningMsg::Request { color: 0 },
            },
            &none(),
            &mut out,
        );
        assert_eq!(out, vec![(p(1), DiningMsg::Fork)]);
        lo.handle(
            DiningInput::Message {
                from: p(0),
                msg: DiningMsg::Fork,
            },
            &none(),
            &mut Vec::new(),
        );
        assert_eq!(lo.state(), DinerState::Eating);
    }

    #[test]
    fn suspicion_is_ignored() {
        // Even with every neighbor suspected, the crash-oblivious doorway
        // still waits for real acks: no progress.
        let mut lo = ChoySinghProcess::new(p(1), 0, [(p(0), 1)]);
        let everyone: BTreeSet<ProcessId> = [p(0)].into_iter().collect();
        let mut out = Vec::new();
        lo.handle(DiningInput::Hungry, &everyone, &mut out);
        assert_eq!(lo.state(), DinerState::Hungry);
        assert!(!lo.inside_doorway());
        assert_eq!(
            out,
            vec![(p(0), DiningMsg::Ping)],
            "still pings, still waits"
        );
    }

    #[test]
    fn hungry_process_grants_unlimited_acks() {
        // The original doorway has no `replied` limit: a hungry process
        // outside the doorway acks every ping.
        let mut lo = ChoySinghProcess::new(p(1), 0, [(p(0), 1)]);
        lo.handle(DiningInput::Hungry, &none(), &mut Vec::new());
        for _ in 0..3 {
            let mut out = Vec::new();
            lo.handle(
                DiningInput::Message {
                    from: p(0),
                    msg: DiningMsg::Ping,
                },
                &none(),
                &mut out,
            );
            assert_eq!(out, vec![(p(0), DiningMsg::Ack)]);
        }
    }

    #[test]
    fn state_bits_smaller_than_algorithm1() {
        let cs = ChoySinghProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        assert_eq!(cs.state_bits(), 2 + 1 + 2 + 10);
    }
}
