//! Offline vendored stand-in for the `crossbeam-channel` crate (0.5 API
//! subset), backed by `std::sync::mpsc`.
//!
//! Provides [`unbounded`] channels with cloneable senders and a
//! [`Receiver::recv_deadline`] method, which is the surface this
//! workspace's threaded runtime uses. Unlike upstream crossbeam, the
//! receiver is not cloneable — the runtime gives each process thread its
//! own receiver, so MPSC semantics suffice.

#![forbid(unsafe_code)]

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by timed receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with no message available.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, never blocking. Fails only if the receiver was
    /// dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner
            .send(msg)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Receives a message, waiting until `deadline` at the latest.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        self.recv_timeout(deadline.saturating_duration_since(Instant::now()))
    }

    /// Receives a message if one is already queued, without blocking.
    pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
            mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// A non-blocking iterator over the messages already queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Creates an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_and_recv() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn cloned_senders_share_one_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_deadline_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
        drop(tx);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(
            rx.recv_deadline(deadline),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn past_deadline_still_drains_queued_message() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        // A deadline already in the past becomes a zero-duration wait,
        // which must still return an already-queued message.
        assert_eq!(rx.recv_deadline(Instant::now()), Ok(42));
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_iter().next(), None);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
