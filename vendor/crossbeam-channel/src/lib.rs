//! Offline vendored stand-in for the `crossbeam-channel` crate (0.5 API
//! subset), backed by `std::sync::mpsc`.
//!
//! Provides [`unbounded`] and [`bounded`] channels with cloneable senders,
//! a [`Receiver::recv_deadline`] method, and [`Sender::try_send`] — the
//! surface this workspace's threaded runtime and net server use. Unlike
//! upstream crossbeam, the receiver is not cloneable — the runtime gives
//! each process thread its own receiver, so MPSC semantics suffice.

#![forbid(unsafe_code)]

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and its buffer is full.
    Full(T),
    /// The receiver was dropped.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by timed receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with no message available.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    inner: AnySender<T>,
}

enum AnySender<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: match &self.inner {
                AnySender::Unbounded(tx) => AnySender::Unbounded(tx.clone()),
                AnySender::Bounded(tx) => AnySender::Bounded(tx.clone()),
            },
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message. On an unbounded channel this never blocks; on a
    /// bounded channel it blocks while the buffer is full. Fails only if
    /// the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.inner {
            AnySender::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            AnySender::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }

    /// Sends a message without ever blocking: a bounded channel whose
    /// buffer is full reports [`TrySendError::Full`] instead of waiting.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match &self.inner {
            AnySender::Unbounded(tx) => tx
                .send(msg)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
            AnySender::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
        }
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Receives a message, waiting until `deadline` at the latest.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        self.recv_timeout(deadline.saturating_duration_since(Instant::now()))
    }

    /// Receives a message if one is already queued, without blocking.
    pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
            mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// A non-blocking iterator over the messages already queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Creates an unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            inner: AnySender::Unbounded(tx),
        },
        Receiver { inner: rx },
    )
}

/// Creates a bounded channel holding at most `cap` queued messages:
/// [`Sender::send`] blocks while full, [`Sender::try_send`] reports
/// [`TrySendError::Full`] instead.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            inner: AnySender::Bounded(tx),
        },
        Receiver { inner: rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_and_recv() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn cloned_senders_share_one_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_deadline_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
        drop(tx);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(
            rx.recv_deadline(deadline),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn past_deadline_still_drains_queued_message() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        // A deadline already in the past becomes a zero-duration wait,
        // which must still return an already-queued message.
        assert_eq!(rx.recv_deadline(Instant::now()), Ok(42));
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_iter().next(), None);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn unbounded_try_send_never_fills() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.try_iter().count(), 1000);
    }
}
