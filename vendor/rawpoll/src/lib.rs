//! Vendored readiness-polling shim: the thinnest possible wrapper over the
//! kernel's `epoll` and `eventfd` interfaces, speaking [`std::os::fd`]
//! types. This crate exists so the workspace's network runtime can be
//! readiness-based without pulling in an async runtime **or** the `libc`
//! crate: the three `extern "C"` declarations below resolve against the C
//! library that `std` already links.
//!
//! All `unsafe` in the workspace's polling path is confined to this crate;
//! the caller-facing API is safe:
//!
//! * [`Epoll`] — create / add / modify / delete / wait, with a `u64` token
//!   per registration and a bitmask of [`EPOLLIN`]-style readiness flags.
//! * [`eventfd`] — a wakeup fd (nonblocking, close-on-exec). Write 8 bytes
//!   to wake a waiting `Epoll`, read 8 bytes to drain; both directions work
//!   through a plain `std::fs::File` built over the returned [`OwnedFd`].
//!
//! On non-Linux targets every call returns [`io::ErrorKind::Unsupported`],
//! keeping the workspace compiling; the network reactor is Linux-hosted.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{OwnedFd, RawFd};

/// Readiness: the fd is readable (or has pending accepts).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: the fd is in an error state.
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup — the peer closed its end.
pub const EPOLLHUP: u32 = 0x010;
/// Condition: the peer shut down the write half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::fd::{AsRawFd, FromRawFd};

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_NONBLOCK: i32 = 0x800;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EINTR: i32 = 4;

    /// The kernel ABI struct. On x86-64 the kernel declares it packed, and
    /// the packed layout is identical on the other Linux targets Rust
    /// supports here, so one definition serves them all.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance. Closed on drop.
    pub struct Epoll {
        fd: OwnedFd,
        /// Reused kernel-event buffer so `wait` allocates only on growth.
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: Vec::new(),
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
        }

        /// Registers `fd` for the `events` mask under `token`.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes the registration of `fd` to the `events` mask / `token`.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Removes `fd` from the interest set.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout_ms` (`-1` blocks indefinitely) for up to
        /// `max` events and appends `(token, readiness_mask)` pairs to
        /// `out`. Returns the number of events delivered; `EINTR` retries
        /// internally.
        pub fn wait(
            &mut self,
            out: &mut Vec<(u64, u32)>,
            max: usize,
            timeout_ms: i32,
        ) -> io::Result<usize> {
            let max = max.clamp(1, 4096);
            self.buf.resize(max, EpollEvent { events: 0, data: 0 });
            loop {
                let n = unsafe {
                    epoll_wait(
                        self.fd.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        max as i32,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.raw_os_error() == Some(EINTR) {
                        continue;
                    }
                    return Err(err);
                }
                for ev in &self.buf[..n as usize] {
                    // Copy out of the packed struct before use.
                    let (data, events) = (ev.data, ev.events);
                    out.push((data, events));
                }
                return Ok(n as usize);
            }
        }
    }

    /// Creates a nonblocking, close-on-exec event fd with counter 0.
    pub fn make_eventfd() -> io::Result<OwnedFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "rawpoll requires Linux epoll",
        ))
    }

    /// Stub epoll instance for non-Linux targets; every call fails with
    /// [`io::ErrorKind::Unsupported`].
    pub struct Epoll;

    impl Epoll {
        /// Always fails off Linux.
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }
        /// Always fails off Linux.
        pub fn add(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off Linux.
        pub fn modify(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off Linux.
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off Linux.
        pub fn wait(
            &mut self,
            _out: &mut Vec<(u64, u32)>,
            _max: usize,
            _timeout_ms: i32,
        ) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Always fails off Linux.
    pub fn make_eventfd() -> io::Result<OwnedFd> {
        unsupported()
    }
}

pub use imp::{make_eventfd, Epoll};

/// Creates a wakeup event fd — see [`make_eventfd`]. Named `eventfd` at the
/// crate root for call-site clarity.
pub fn eventfd() -> io::Result<OwnedFd> {
    make_eventfd()
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let mut ep = Epoll::new().unwrap();
        let efd = eventfd().unwrap();
        ep.add(efd.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing pending: times out with no events.
        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, 8, 0).unwrap(), 0);

        // A write wakes the poller with our token.
        let mut file = std::fs::File::from(efd);
        file.write_all(&1u64.to_ne_bytes()).unwrap();
        let n = ep.wait(&mut out, 8, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(out[0].0, 42);
        assert_ne!(out[0].1 & EPOLLIN, 0);

        // Draining resets it: the next wait times out again.
        let mut buf = [0u8; 8];
        file.read_exact(&mut buf).unwrap();
        out.clear();
        assert_eq!(ep.wait(&mut out, 8, 0).unwrap(), 0);
    }

    #[test]
    fn modify_and_delete_are_honored() {
        let mut ep = Epoll::new().unwrap();
        let efd = eventfd().unwrap();
        ep.add(efd.as_raw_fd(), EPOLLIN, 1).unwrap();
        let mut file = std::fs::File::from(efd);
        file.write_all(&1u64.to_ne_bytes()).unwrap();

        // Retag the registration; the new token is reported.
        ep.modify(file.as_raw_fd(), EPOLLIN, 2).unwrap();
        let mut out = Vec::new();
        ep.wait(&mut out, 8, 1000).unwrap();
        assert_eq!(out[0].0, 2);

        // Deleted fds stop reporting even though the counter is nonzero.
        ep.delete(file.as_raw_fd()).unwrap();
        out.clear();
        assert_eq!(ep.wait(&mut out, 8, 0).unwrap(), 0);
    }
}
