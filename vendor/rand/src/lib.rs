//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! numeric stream than upstream `StdRng` (ChaCha12), but every property the
//! workspace relies on holds: determinism in the seed, uniformity in
//! ranges, and independence of streams with different seeds.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by multiply-shift (Lemire); unbiased enough
/// for simulation purposes and, crucially, deterministic.
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_below(rng, span as u64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "shuffle moved something");
        assert_eq!([1u8; 0].choose(&mut rng), None);
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }

    #[test]
    fn from_seed_nudges_zero_state() {
        let mut z = StdRng::from_seed([0u8; 32]);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
