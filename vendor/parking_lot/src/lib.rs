//! Offline vendored stand-in for the `parking_lot` crate (0.12 API
//! subset), backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's panic-free
//! locking surface: `lock()` returns a guard directly (poisoning is
//! swallowed by taking the inner value regardless), and `into_inner`
//! consumes the lock without a `Result`.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never returns an
    /// error: a poisoned lock is recovered by taking its inner guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(10);
        assert_eq!(*l.read(), 10);
        *l.write() += 5;
        assert_eq!(l.into_inner(), 15);
    }
}
