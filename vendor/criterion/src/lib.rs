//! Offline vendored stand-in for the `criterion` crate (0.5 API subset).
//!
//! Provides [`Criterion`], [`Bencher`], benchmark groups,
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is a simple median-of-samples timing loop — no
//! statistical analysis, plots, or baselines — but the numbers it prints
//! are honest wall-clock medians, good enough to compare hot paths.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Measurement settings shared by a [`Criterion`] and its groups.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_count: usize,
    /// Target wall-clock budget per benchmark, nanoseconds.
    target_ns: u128,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_count: 30,
            target_ns: 300_000_000,
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments, mirroring upstream's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.settings, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }

    /// Runs any deferred analysis (none here).
    pub fn final_summary(&mut self) {}
}

/// A named cluster of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.settings, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let settings = self.settings;
        run_one(
            &format!("{}/{}", self.name, id.0),
            settings,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (parameter or name/parameter pair).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `function/parameter` id.
    pub fn new(function: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Hands the routine-under-test to the timing loop.
pub struct Bencher {
    samples_ns: Vec<u128>,
    settings: Settings,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample is neither trivially
        // short nor longer than the per-benchmark budget allows.
        let warmup = Instant::now();
        black_box(routine());
        let once_ns = warmup.elapsed().as_nanos().max(1);
        let budget_per_sample = self.settings.target_ns / self.settings.sample_count as u128;
        let batch = (budget_per_sample / once_ns).clamp(1, 1_000_000) as usize;
        for _ in 0..self.settings.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() / batch as u128);
        }
    }
}

fn run_one(name: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(settings.sample_count),
        settings,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples_ns.sort_unstable();
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let lo = b.samples_ns[0];
    let hi = b.samples_ns[b.samples_ns.len() - 1];
    println!(
        "{name:<40} median {} [{} .. {}]",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(
            format!("{:?}", BenchmarkId::new("f", 3)),
            "BenchmarkId(\"f/3\")"
        );
    }
}
