//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! range and tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports its case index and seed; the
//!   whole run is deterministic, so replaying is exact.
//! * **No regression persistence.** `.proptest-regressions` files are
//!   ignored; determinism makes them redundant here.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which is equivalent under this runner.

#![forbid(unsafe_code)]

/// Deterministic RNG for test-case generation.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Run-wide configuration (`cases` is the only knob honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The generator for one test case: a pure function of the case index,
    /// so every run of the suite explores the identical inputs.
    pub fn rng_for_case(case: u32) -> TestRng {
        TestRng::seed_from_u64(0x9E3779B97F4A7C15u64 ^ ((case as u64) << 17) ^ case as u64)
    }
}

pub use test_runner::Config as ProptestConfig;

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a dependent strategy from it with `f`,
        /// and draws from that.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternatives (the [`prop_oneof!`](crate::prop_oneof)
    /// combinator).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi_exclusive, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each listed function runs its body over
/// `cases` random draws of its `pat in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::rng_for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for_case(0);
        let s = (1usize..4, 10u64..=20, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((10..=20).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::rng_for_case(1);
        let s = crate::collection::vec(0usize..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::test_runner::rng_for_case(2);
        let s = (2usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, 1..3)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn oneof_covers_options() {
        let mut rng = crate::test_runner::rng_for_case(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, (a, b) in (0usize..5, 0usize..5)) {
            prop_assert!(x < 100);
            prop_assert!(a < 5 && b < 5, "a={} b={}", a, b);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(0u64..1_000, 1..10);
        let a = s.generate(&mut crate::test_runner::rng_for_case(7));
        let b = s.generate(&mut crate::test_runner::rng_for_case(7));
        assert_eq!(a, b);
    }
}
