//! Replays every committed chaos artifact under `tests/chaos-regressions/`
//! and checks it reproduces exactly the class its `expect` line records.
//!
//! Two kinds of artifact live there: schedules that must *keep failing*
//! the same way (they pin the watchdog's classification), and shrunk
//! repros of fixed bugs tagged `expect wait-free` (they pin the fix).
//! Either drifting is a regression.

use ekbd_chaos::codec;
use ekbd_harness::run_chaos;
use std::path::PathBuf;

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/chaos-regressions")
}

#[test]
fn committed_artifacts_reproduce_their_recorded_class() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(artifact_dir())
        .expect("tests/chaos-regressions exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "chaos"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no committed chaos artifacts");
    for path in paths {
        let schedule =
            codec::read_artifact(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let expected = schedule
            .expect
            .unwrap_or_else(|| panic!("{}: missing `expect` line", path.display()));
        let outcome = run_chaos(&schedule).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            outcome.class,
            expected,
            "{}: replayed to {}, artifact expects {} (repro: {})",
            path.display(),
            outcome.class,
            expected,
            codec::replay_command(&path)
        );
    }
}

#[test]
fn committed_artifacts_are_in_canonical_form() {
    // `encode ∘ parse` is the identity on the directive lines; keeping
    // artifacts canonical (modulo leading comments) means regenerating
    // one from the shrinker produces a clean diff.
    for entry in std::fs::read_dir(artifact_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "chaos") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let schedule = codec::parse(&text).unwrap();
        let canonical = codec::encode(&schedule);
        let stripped: String = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            stripped,
            canonical,
            "{}: directive lines are not in canonical order/form",
            path.display()
        );
    }
}
