//! Cross-crate behavior of the baseline algorithms, establishing the
//! contrasts the experiments measure.

use ekbd::baselines::{ChoySinghProcess, NaivePriorityProcess};
use ekbd::graph::{topology, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::sim::Time;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

#[test]
fn choy_singh_is_a_correct_dining_solution_crash_free() {
    // Without crashes the original doorway algorithm is live and safe.
    for seed in 0..4 {
        let report = Scenario::new(topology::ring(6))
            .seed(seed)
            .workload(Workload {
                sessions: 20,
                think: (1, 40),
                eat: (1, 10),
            })
            .horizon(Time(200_000))
            .run_with(|s, q| ChoySinghProcess::from_graph(&s.graph, &s.colors, q));
        assert!(report.progress().wait_free(), "seed {seed}");
        assert_eq!(report.exclusion().total(), 0, "seed {seed}");
        assert!(report.max_channel_high_water <= 4, "seed {seed}");
    }
}

#[test]
fn choy_singh_starves_neighbors_of_crashed_processes() {
    let report = Scenario::new(topology::ring(6))
        .seed(1)
        .crash(p(2), Time(500))
        .workload(Workload {
            sessions: 20,
            think: (1, 80),
            eat: (1, 10),
        })
        .horizon(Time(300_000))
        .run_with(|s, q| ChoySinghProcess::from_graph(&s.graph, &s.colors, q));
    let starving = report.progress().starving();
    assert!(!starving.is_empty(), "someone must starve");
    // Starvation spreads from the crash site: the starved set must include
    // a direct neighbor of p2.
    assert!(
        starving.contains(&p(1)) || starving.contains(&p(3)),
        "a neighbor of the crashed p2 is blocked: {starving:?}"
    );
}

#[test]
fn choy_singh_starvation_spreads_transitively() {
    // On a path, blocking the middle eventually wedges the whole doorway
    // chain: with long enough runs, processes far from the crash starve
    // too (their ack requests pend at a process that is itself blocked
    // inside its hungry session forever).
    let report = Scenario::new(topology::path(5))
        .seed(3)
        .crash(p(2), Time(300))
        .workload(Workload {
            sessions: 50,
            think: (1, 30),
            eat: (1, 8),
        })
        .horizon(Time(400_000))
        .run_with(|s, q| ChoySinghProcess::from_graph(&s.graph, &s.colors, q));
    let starving = report.progress().starving();
    assert!(starving.len() >= 2, "starvation cascades: {starving:?}");
}

#[test]
fn naive_priority_is_wait_free_but_unfair() {
    // Star with a low-priority hub: wait-free (suspicion handles crashes,
    // and here nothing crashes) but the hub is overtaken far more than
    // twice while continuously hungry.
    let g = topology::star(5);
    let mut colors = vec![1; 5];
    colors[0] = 0;
    let report = Scenario::new(g)
        .colors(colors)
        .seed(5)
        .workload(Workload {
            sessions: 60,
            think: (1, 4),
            eat: (8, 16),
        })
        .horizon(Time(400_000))
        .run_with(|s, q| NaivePriorityProcess::from_graph(&s.graph, &s.colors, q));
    assert!(report.progress().wait_free());
    assert!(
        report.fairness().max_overtakes() > 2,
        "no doorway ⇒ unbounded overtaking, got {}",
        report.fairness().max_overtakes()
    );
}

#[test]
fn naive_priority_respects_exclusion_without_oracle_mistakes() {
    let report = Scenario::new(topology::clique(4))
        .seed(8)
        .workload(Workload {
            sessions: 25,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(200_000))
        .run_with(|s, q| NaivePriorityProcess::from_graph(&s.graph, &s.colors, q));
    assert_eq!(report.exclusion().total(), 0);
    assert!(report.progress().wait_free());
}

#[test]
fn naive_priority_stays_wait_free_under_crashes_with_oracle() {
    let report = Scenario::new(topology::clique(5))
        .seed(9)
        .perfect_oracle()
        .crash(p(0), Time(400))
        .crash(p(3), Time(900))
        .workload(Workload {
            sessions: 20,
            think: (1, 30),
            eat: (1, 10),
        })
        .horizon(Time(300_000))
        .run_with(|s, q| NaivePriorityProcess::from_graph(&s.graph, &s.colors, q));
    assert!(report.progress().wait_free());
}

#[test]
fn algorithm1_outperforms_baseline_under_identical_crash_schedule() {
    // Same topology, workload, seed, crash schedule: Algorithm 1 completes
    // strictly more sessions than the blocked baseline.
    let make = |_: ()| {
        Scenario::new(topology::star(7))
            .seed(4)
            .crash(p(0), Time(600)) // hub dies; every leaf is its neighbor
            .workload(Workload {
                sessions: 25,
                think: (1, 60),
                eat: (1, 10),
            })
            .horizon(Time(300_000))
    };
    let ours = make(())
        .adversarial_oracle(Time(2_000), 40)
        .run_algorithm1();
    let theirs = make(()).run_with(|s, q| ChoySinghProcess::from_graph(&s.graph, &s.colors, q));
    assert!(ours.progress().wait_free());
    assert!(!theirs.progress().wait_free());
    assert!(
        ours.progress().total_sessions() > theirs.progress().total_sessions(),
        "{} vs {}",
        ours.progress().total_sessions(),
        theirs.progress().total_sessions()
    );
}
