//! Deterministic, message-by-message witnesses for Theorem 3.
//!
//! The paper's bound is *eventual 2-bounded waiting*: in the convergence
//! suffix, a neighbor can overtake a continuously hungry process at most
//! twice — once on an ack that was already in flight when the hungry
//! session began, and once on the single ack the revised doorway grants
//! per session. These tests replay the exact interleavings:
//!
//! * [`two_overtakes_witness`] — the bound is **tight**: a 3-process chain
//!   where `hi` eats twice during one hungry session of `lo`, and a third
//!   attempt is provably blocked (`replied` defers the ping).
//! * [`two_process_fifo_caps_at_one`] — with only two processes, FIFO
//!   ordering of the deferred ack before the next ping means the second
//!   doorway entry cannot happen: a stronger bound that emerges from the
//!   channel discipline, not from the doorway rule.

use ekbd::dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningProcess};
use ekbd::graph::ProcessId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A hand-cranked FIFO network over explicitly colored processes.
struct Net {
    procs: BTreeMap<ProcessId, DiningProcess>,
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<DiningMsg>>,
}

impl Net {
    fn new(spec: &[(usize, u32, &[usize])]) -> Self {
        let color_of: BTreeMap<usize, u32> = spec.iter().map(|&(i, c, _)| (i, c)).collect();
        let mut procs = BTreeMap::new();
        let mut channels = BTreeMap::new();
        for &(i, c, nbrs) in spec {
            let p = ProcessId::from(i);
            procs.insert(
                p,
                DiningProcess::new(
                    p,
                    c,
                    nbrs.iter().map(|&j| (ProcessId::from(j), color_of[&j])),
                ),
            );
            for &j in nbrs {
                channels.insert((p, ProcessId::from(j)), VecDeque::new());
            }
        }
        Net { procs, channels }
    }

    fn apply(&mut self, who: usize, input: DiningInput<DiningMsg>) {
        let who = ProcessId::from(who);
        let nobody = BTreeSet::new();
        let mut sends = Vec::new();
        self.procs
            .get_mut(&who)
            .expect("known process")
            .handle(input, &nobody, &mut sends);
        for (to, msg) in sends {
            self.channels
                .get_mut(&(who, to))
                .expect("known channel")
                .push_back(msg);
        }
    }

    /// Delivers the oldest message on `from → to`, asserting its kind.
    fn deliver(&mut self, from: usize, to: usize, expect: DiningMsg) {
        let (f, t) = (ProcessId::from(from), ProcessId::from(to));
        let msg = self
            .channels
            .get_mut(&(f, t))
            .and_then(|q| q.pop_front())
            .unwrap_or_else(|| panic!("nothing in flight {f} → {t}"));
        assert_eq!(msg, expect, "unexpected message on {f} → {t}");
        self.apply(to, DiningInput::Message { from: f, msg });
    }

    fn state(&self, who: usize) -> DinerState {
        self.procs[&ProcessId::from(who)].state()
    }

    fn proc_(&self, who: usize) -> &DiningProcess {
        &self.procs[&ProcessId::from(who)]
    }
}

const HI: usize = 0; // color 1
const LO: usize = 1; // color 0, neighbor of both HI and W
const W: usize = 2; // color 2, the slow third party

fn chain() -> Net {
    // Path HI — LO — W. Forks start at the higher-color endpoint:
    // HI holds fork(HI,LO); W holds fork(LO,W); LO holds both tokens.
    Net::new(&[(HI, 1, &[LO]), (LO, 0, &[HI, W]), (W, 2, &[LO])])
}

#[test]
fn two_overtakes_witness() {
    let mut net = chain();

    // A stale ack: HI hungry, LO (thinking) grants without `replied`.
    net.apply(HI, DiningInput::Hungry);
    net.deliver(HI, LO, DiningMsg::Ping);

    // LO's hungry session starts; its acks to HI and pings to both fly.
    net.apply(LO, DiningInput::Hungry);

    // OVERTAKE 1: the stale ack reaches HI → doorway → fork held → eats.
    net.deliver(LO, HI, DiningMsg::Ack);
    assert_eq!(net.state(HI), DinerState::Eating, "overtake 1");

    // LO's ping reaches the eating HI: deferred. W acks LO's ping, but
    // that ack is SLOW — we simply don't deliver it yet.
    net.deliver(LO, HI, DiningMsg::Ping);
    net.deliver(LO, W, DiningMsg::Ping);
    assert!(net.proc_(HI).deferring_ack(ProcessId::from(LO)));

    // HI finishes (deferred ack to LO flows) and is hungry again (ping
    // queued behind that ack).
    net.apply(HI, DiningInput::DoneEating);
    net.apply(HI, DiningInput::Hungry);

    // LO receives HI's deferred ack — but W's ack is still missing, so LO
    // stays OUTSIDE the doorway. This is why two processes are not
    // enough: a third, slower neighbor must hold LO at the door.
    net.deliver(HI, LO, DiningMsg::Ack);
    assert!(!net.proc_(LO).inside_doorway());

    // HI's new ping arrives: LO is hungry, outside, and has not replied
    // this session → grants its one in-session ack (`replied := true`).
    net.deliver(HI, LO, DiningMsg::Ping);
    assert!(net.proc_(LO).replied_to(ProcessId::from(HI)));

    // OVERTAKE 2: HI re-enters the doorway (it kept the fork) and eats.
    net.deliver(LO, HI, DiningMsg::Ack);
    assert_eq!(net.state(HI), DinerState::Eating, "overtake 2");

    // A third overtake is impossible: HI's next ping is deferred because
    // `replied` is set for this hungry session of LO.
    net.apply(HI, DiningInput::DoneEating); // nothing was deferred this meal
    net.apply(HI, DiningInput::Hungry);
    net.deliver(HI, LO, DiningMsg::Ping);
    assert!(net.proc_(LO).deferring_ack(ProcessId::from(HI)));
    assert_eq!(net.state(HI), DinerState::Hungry);
    assert!(!net.proc_(HI).inside_doorway(), "third entry blocked");

    // W's slow ack finally lands: LO enters, collects both forks, eats.
    net.deliver(W, LO, DiningMsg::Ack);
    assert!(net.proc_(LO).inside_doorway());
    net.deliver(LO, HI, DiningMsg::Request { color: 0 });
    net.deliver(LO, W, DiningMsg::Request { color: 0 });
    net.deliver(HI, LO, DiningMsg::Fork); // HI outside ⇒ granted
    net.deliver(W, LO, DiningMsg::Fork); // W thinking ⇒ granted
    assert_eq!(
        net.state(LO),
        DinerState::Eating,
        "LO eats after exactly 2 overtakes"
    );

    // And the deferred ack releases HI afterwards — nobody starves.
    net.apply(LO, DiningInput::DoneEating);
    net.deliver(LO, HI, DiningMsg::Ack);
    assert!(net.proc_(HI).inside_doorway());
    net.deliver(HI, LO, DiningMsg::Request { color: 1 });
    net.deliver(LO, HI, DiningMsg::Fork);
    assert_eq!(net.state(HI), DinerState::Eating);
}

#[test]
fn two_process_fifo_caps_at_one() {
    // With only two processes the deferred ack travels FIFO-before HI's
    // next ping, so LO has already entered the doorway when the ping
    // lands and defers it: the second doorway entry never happens.
    let mut net = Net::new(&[(HI, 1, &[LO]), (LO, 0, &[HI])]);

    net.apply(HI, DiningInput::Hungry);
    net.deliver(HI, LO, DiningMsg::Ping);
    net.apply(LO, DiningInput::Hungry);
    net.deliver(LO, HI, DiningMsg::Ack);
    assert_eq!(net.state(HI), DinerState::Eating, "overtake 1 (stale ack)");
    net.deliver(LO, HI, DiningMsg::Ping); // deferred at eating HI
    net.apply(HI, DiningInput::DoneEating);
    net.apply(HI, DiningInput::Hungry);

    // FIFO forces the deferred ack before the new ping: LO enters.
    net.deliver(HI, LO, DiningMsg::Ack);
    assert!(net.proc_(LO).inside_doorway());
    net.deliver(HI, LO, DiningMsg::Ping);
    assert!(
        net.proc_(LO).deferring_ack(ProcessId::from(HI)),
        "inside ⇒ defers"
    );

    // LO collects the fork and eats; HI stayed at one overtake.
    net.deliver(LO, HI, DiningMsg::Request { color: 0 });
    net.deliver(HI, LO, DiningMsg::Fork);
    assert_eq!(net.state(LO), DinerState::Eating);
    assert_eq!(net.state(HI), DinerState::Hungry);
    assert!(!net.proc_(HI).inside_doorway());
}
