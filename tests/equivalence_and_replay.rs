//! Two regression anchors:
//!
//! * a property test that [`BudgetedDiningProcess`] with budget 1 is
//!   *observationally identical* to the reference [`DiningProcess`] under
//!   arbitrary legal event sequences — the ablation code path cannot
//!   silently drift from the verified Algorithm 1;
//! * a golden replay of a small scenario, pinning the exact scheduling
//!   event stream for one seed so unintended semantic changes to the
//!   simulator, host, or algorithm show up as a diff.

use ekbd::dining::{
    BudgetedDiningProcess, DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningProcess,
};
use ekbd::graph::ProcessId;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

/// Legal-ish inputs for a process with neighbors p1 (color 0), p2 (color 2).
/// "Legal-ish": receive events are only generated when the protocol state
/// admits them, mirroring what a real network could deliver.
#[derive(Clone, Debug)]
enum Step {
    Hungry,
    DoneEating,
    SuspicionSet(Vec<usize>),
    Ping(usize),
    Ack(usize),
    Request(usize),
    Fork(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Hungry),
        Just(Step::DoneEating),
        proptest::collection::vec(1usize..3, 0..3).prop_map(Step::SuspicionSet),
        (1usize..3).prop_map(Step::Ping),
        (1usize..3).prop_map(Step::Ack),
        (1usize..3).prop_map(Step::Request),
        (1usize..3).prop_map(Step::Fork),
    ]
}

/// Tracks enough protocol context to only deliver receivable messages:
/// a `Request` only when the subject holds the fork; a `Fork` only when it
/// does not; `DoneEating` only while eating.
struct Gate {
    fork: [bool; 2],
}

impl Gate {
    fn admit(
        &mut self,
        step: &Step,
        state: DinerState,
    ) -> Option<(DiningInput<DiningMsg>, BTreeSet<ProcessId>)> {
        let nbr = |i: usize| p(i);
        match step {
            Step::Hungry => {
                (state == DinerState::Thinking).then(|| (DiningInput::Hungry, BTreeSet::new()))
            }
            Step::DoneEating => {
                (state == DinerState::Eating).then(|| (DiningInput::DoneEating, BTreeSet::new()))
            }
            Step::SuspicionSet(ids) => {
                let set: BTreeSet<ProcessId> = ids.iter().map(|&i| p(i)).collect();
                Some((DiningInput::SuspicionChange, set))
            }
            Step::Ping(j) => Some((
                DiningInput::Message {
                    from: nbr(*j),
                    msg: DiningMsg::Ping,
                },
                BTreeSet::new(),
            )),
            Step::Ack(j) => Some((
                DiningInput::Message {
                    from: nbr(*j),
                    msg: DiningMsg::Ack,
                },
                BTreeSet::new(),
            )),
            Step::Request(j) => {
                let idx = *j - 1;
                self.fork[idx].then(|| {
                    (
                        DiningInput::Message {
                            from: nbr(*j),
                            msg: DiningMsg::Request {
                                color: if *j == 1 { 0 } else { 2 },
                            },
                        },
                        BTreeSet::new(),
                    )
                })
            }
            Step::Fork(j) => {
                let idx = *j - 1;
                (!self.fork[idx]).then(|| {
                    (
                        DiningInput::Message {
                            from: nbr(*j),
                            msg: DiningMsg::Fork,
                        },
                        BTreeSet::new(),
                    )
                })
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Budget-1 process ≡ reference Algorithm 1 on arbitrary inputs.
    #[test]
    fn budget_one_is_algorithm_one(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        // Subject p0 (color 1) with neighbors p1 (color 0: p0 holds that
        // fork) and p2 (color 2: p0 holds that token).
        let mut reference = DiningProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)]);
        let mut budgeted = BudgetedDiningProcess::new(p(0), 1, [(p(1), 0), (p(2), 2)], 1);
        let mut gate = Gate { fork: [true, false] };
        let mut suspicion: BTreeSet<ProcessId> = BTreeSet::new();
        for step in steps {
            let Some((input, new_sus)) = gate.admit(&step, reference.state()) else {
                continue;
            };
            if matches!(step, Step::SuspicionSet(_)) {
                suspicion = new_sus;
            }
            let mut a = Vec::new();
            let mut b = Vec::new();
            reference.handle(input.clone(), &suspicion, &mut a);
            budgeted.handle(input, &suspicion, &mut b);
            prop_assert_eq!(&a, &b, "divergent sends after {:?}", step);
            prop_assert_eq!(reference.state(), budgeted.state());
            prop_assert_eq!(reference.inside_doorway(), budgeted.inside_doorway());
            // Mirror the subject's fork ownership for the gate, and check
            // the two implementations agree on resource possession too.
            for (idx, q) in [(0usize, p(1)), (1usize, p(2))] {
                gate.fork[idx] = reference.holds_fork(q);
                prop_assert_eq!(reference.holds_fork(q), budgeted.holds_fork(q));
                prop_assert_eq!(reference.holds_token(q), budgeted.holds_token(q));
            }
        }
    }
}

#[test]
fn golden_replay_ring3_seed42() {
    use ekbd::dining::DiningObs::*;
    use ekbd::harness::{Scenario, Workload};
    use ekbd::sim::Time;
    let report = Scenario::new(ekbd::graph::topology::ring(3))
        .seed(42)
        .workload(Workload {
            sessions: 2,
            think: (1, 10),
            eat: (1, 5),
        })
        .horizon(Time(10_000))
        .run_algorithm1();
    // The exact stream for this seed. If an *intentional* semantic change
    // alters it, re-record; an unintentional diff here is a regression.
    let got: Vec<(u64, u32, ekbd::dining::DiningObs)> = report
        .events
        .iter()
        .map(|e| (e.time.ticks(), e.process.0, e.obs))
        .collect();
    assert_eq!(
        report.events.len(),
        3 * 2 * 5,
        "3 procs × 2 sessions × 5 obs"
    );
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
    // Pin the first session of each process (timing and order).
    let firsts: Vec<&(u64, u32, ekbd::dining::DiningObs)> = got
        .iter()
        .filter(|(_, _, o)| *o == BecameHungry)
        .take(3)
        .collect();
    assert_eq!(firsts.len(), 3);
    // Determinism anchor: the full stream equals itself on a re-run.
    let report2 = Scenario::new(ekbd::graph::topology::ring(3))
        .seed(42)
        .workload(Workload {
            sessions: 2,
            think: (1, 10),
            eat: (1, 5),
        })
        .horizon(Time(10_000))
        .run_algorithm1();
    assert_eq!(report.events, report2.events);
    assert_eq!(report.dining_sends, report2.dining_sends);
}
