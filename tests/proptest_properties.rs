//! Property-based tests: the paper's guarantees over *randomized*
//! topologies, colorings, crash schedules, delays, and oracles.

use ekbd::graph::{coloring, random, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::sim::{DelayModel, Time};
use proptest::prelude::*;

/// Strategy: a connected random graph plus a legal crash schedule leaving
/// at least one correct process.
fn scenario_inputs() -> impl Strategy<Value = (usize, u64, Vec<(usize, u64)>, u64)> {
    (3usize..10, 0u64..1_000).prop_flat_map(|(n, seed)| {
        let crashes = proptest::collection::vec((0..n, 300u64..2_500), 0..n - 1).prop_map(
            move |mut v: Vec<(usize, u64)>| {
                v.sort();
                v.dedup_by_key(|e| e.0);
                v
            },
        );
        (Just(n), Just(seed), crashes, 0u64..1_000)
    })
}

fn build(n: usize, gseed: u64, crashes: &[(usize, u64)], seed: u64) -> Scenario {
    let g = random::connected_gnp(n, 0.35, gseed);
    let mut s = Scenario::new(g)
        .seed(seed)
        .adversarial_oracle(Time(2_000), 35)
        .workload(Workload {
            sessions: 15,
            think: (1, 80),
            eat: (1, 12),
        })
        .horizon(Time(250_000));
    for &(q, t) in crashes {
        s = s.crash(ProcessId::from(q), Time(t));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorems 1–3 and the §7 channel bound, randomized.
    #[test]
    fn randomized_runs_satisfy_all_theorems(
        (n, gseed, crashes, seed) in scenario_inputs()
    ) {
        let report = build(n, gseed, &crashes, seed).run_algorithm1();
        let progress = report.progress();
        prop_assert!(progress.wait_free(), "starving: {:?}", progress.starving());
        prop_assert_eq!(report.exclusion().after(Time(2_000)), 0);
        prop_assert!(report.fairness().max_overtakes_after(Time(2_000)) <= 2);
        prop_assert!(report.max_channel_high_water <= 4);
        prop_assert!(report.quiescence().quiescent_by(report.horizon));
    }

    /// Determinism: a run is a pure function of (scenario, seed).
    #[test]
    fn runs_are_reproducible(
        (n, gseed, crashes, seed) in scenario_inputs()
    ) {
        let a = build(n, gseed, &crashes, seed).run_algorithm1();
        let b = build(n, gseed, &crashes, seed).run_algorithm1();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.suspicions, b.suspicions);
        prop_assert_eq!(a.total_messages, b.total_messages);
    }

    /// Satellite of the crash-recovery model: random crash → corrupt →
    /// recover interleavings on a 3-clique never deadlock the rejoin
    /// handshake (every recovered process eats again) and always converge
    /// back to a single fork and token owner per edge.
    #[test]
    fn crash_corrupt_recover_interleavings_converge(
        seed in 0u64..500,
        // Per process: (crashes?, crash time, recovery delay, corrupt?) —
        // the two flags are 0/1 draws (the vendored shim has no Option or
        // bool strategies).
        cycles in proptest::collection::vec(
            (0u64..2, 300u64..1_500, 500u64..2_000, 0u64..2),
            3usize,
        ),
        corruptions in proptest::collection::vec((0usize..3, 300u64..4_000), 0..4),
    ) {
        use ekbd::dining::RecoverableDining;
        use ekbd::harness::{LiveRun, AUDIT_PERIOD};
        let mut s = Scenario::new(ekbd::graph::topology::clique(3))
            .seed(seed)
            .perfect_oracle()
            .workload(Workload { sessions: 8, think: (1, 30), eat: (1, 8) })
            .horizon(Time(80_000));
        for (i, &(crashes, crash_t, delay, corrupt)) in cycles.iter().enumerate() {
            if crashes == 1 {
                let q = ProcessId::from(i);
                s = s.crash(q, Time(crash_t));
                s = if corrupt == 1 {
                    s.recover_corrupted(q, Time(crash_t + delay))
                } else {
                    s.recover(q, Time(crash_t + delay))
                };
            }
        }
        for &(q, t) in &corruptions {
            s = s.corrupt_state(ProcessId::from(q), Time(t));
        }
        let graph = s.graph.clone();
        let last_fault = s
            .recoveries()
            .iter()
            .chain(s.corruptions().iter())
            .map(|&(_, t)| t)
            .max();
        let mut live = LiveRun::new(s, |sc, p| {
            RecoverableDining::from_graph(&sc.graph, &sc.colors, p)
        });
        while live.step() {}
        for e in graph.edges() {
            let a = live.algorithm(e.lo);
            let b = live.algorithm(e.hi);
            prop_assert_eq!(
                a.holds_fork(e.hi) as u32 + b.holds_fork(e.lo) as u32,
                1,
                "exactly one fork owner on {:?} after convergence",
                e
            );
            prop_assert_eq!(
                a.holds_token(e.hi) as u32 + b.holds_token(e.lo) as u32,
                1,
                "exactly one token owner on {:?} after convergence",
                e
            );
        }
        let report = live.finish();
        let progress = report.progress();
        prop_assert!(progress.wait_free(), "starving: {:?}", progress.starving());
        prop_assert!(
            report.readmissions().iter().all(|r| r.first_eat.is_some()),
            "rejoin deadlocked: {:?}",
            report.readmissions()
        );
        let stable = Time(last_fault.map_or(0, |t| t.0) + 20 * AUDIT_PERIOD);
        prop_assert_eq!(report.exclusion().after(stable), 0);
    }

    /// Proper colorings from both algorithms on arbitrary graphs.
    #[test]
    fn colorings_always_proper(n in 1usize..40, p in 0.0f64..1.0, seed in 0u64..500) {
        let g = random::gnp(n, p, seed);
        let greedy = coloring::greedy(&g);
        prop_assert!(coloring::validate(&g, &greedy).is_ok());
        prop_assert!(coloring::palette_size(&greedy) <= g.max_degree() + 1);
        let dsatur = coloring::dsatur(&g);
        prop_assert!(coloring::validate(&g, &dsatur).is_ok());
        prop_assert!(coloring::palette_size(&dsatur) <= g.max_degree() + 1);
    }

    /// connected_gnp always yields connected graphs.
    #[test]
    fn connected_gnp_is_connected(n in 1usize..30, p in 0.0f64..0.4, seed in 0u64..500) {
        prop_assert!(random::connected_gnp(n, p, seed).is_connected());
    }

    /// FIFO channels under arbitrary delay models: messages arrive in
    /// order regardless of the delay distribution.
    #[test]
    fn fifo_order_under_random_delays(
        seed in 0u64..1_000,
        min in 1u64..20,
        spread in 0u64..80,
        burst in 1usize..60,
    ) {
        use ekbd::sim::{Context, Node, NodeEvent, SimConfig, Simulator};
        struct Burst(usize);
        impl Node for Burst {
            type Msg = u32;
            type Ext = ();
            type Obs = u32;
            fn handle(&mut self, ev: NodeEvent<u32, ()>, ctx: &mut Context<'_, u32, u32>) {
                match ev {
                    NodeEvent::External(()) => {
                        for k in 0..self.0 as u32 {
                            ctx.send(ProcessId(1), k);
                        }
                    }
                    NodeEvent::Message { msg, .. } => ctx.observe(msg),
                    _ => {}
                }
            }
        }
        let cfg = SimConfig::default()
            .n(2)
            .seed(seed)
            .delay(DelayModel::Uniform { min, max: min + spread });
        let mut sim = Simulator::new(cfg, |_, _| Burst(burst));
        sim.schedule_external(ProcessId(0), Time(1), ());
        sim.run();
        let got: Vec<u32> = sim.observations().iter().map(|o| o.obs).collect();
        prop_assert_eq!(got, (0..burst as u32).collect::<Vec<_>>());
    }

    /// The GST delay model respects its post-stabilization bound.
    #[test]
    fn gst_delays_bounded_after_stabilization(seed in 0u64..300, delta in 1u64..30) {
        use ekbd::sim::{Context, Node, NodeEvent, SimConfig, Simulator};
        struct Echo;
        impl Node for Echo {
            type Msg = u64;
            type Ext = ();
            type Obs = u64;
            fn handle(&mut self, ev: NodeEvent<u64, ()>, ctx: &mut Context<'_, u64, u64>) {
                match ev {
                    NodeEvent::External(()) | NodeEvent::Timer { .. } => {
                        ctx.send(ProcessId(1), ctx.now().ticks());
                        ctx.set_timer(7, 9);
                    }
                    NodeEvent::Message { msg: sent_at, .. } => {
                        ctx.observe(ctx.now().ticks() - sent_at);
                    }
                    _ => {}
                }
            }
        }
        let gst = Time(500);
        let cfg = SimConfig::default().n(2).seed(seed).delay(DelayModel::Gst {
            gst,
            pre_max: 200,
            delta,
        });
        let mut sim = Simulator::new(cfg, |_, _| Echo);
        sim.schedule_external(ProcessId(0), Time(1), ());
        sim.run_until(Time(2_000));
        for o in sim.observations() {
            // FIFO lets a post-GST message queue behind a slow pre-GST one,
            // so the Δ bound provably applies once pre-GST traffic has
            // drained: for messages sent at or after gst + pre_max.
            let sent_at = o.time.ticks() - o.obs;
            if sent_at >= gst.ticks() + 200 {
                prop_assert!(o.obs <= delta, "delay {} > Δ {}", o.obs, delta);
            }
        }
    }
}
