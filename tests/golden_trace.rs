//! Golden-trace determinism suite for the fast simulation kernel.
//!
//! The indexed engine (timer-wheel queue, dense interned channel state,
//! pooled buffers) must be **observably identical** to the legacy engine,
//! which deliberately preserves the pre-optimization cost model
//! (binary-heap queue, hash-map channel state, per-event allocations).
//! These tests pin that contract at the strongest available granularity:
//! the full kernel trace — every send, delivery, loss, duplication,
//! reorder, crash, recovery, corruption, and timer firing, in order, with
//! timestamps — must be byte-equal between engines and across repeated
//! runs of the same seed, under every fault configuration the E-suite
//! exercises.
//!
//! The legacy engine *is* the golden reference: it shares none of the new
//! queue/interning code, so equality here means the rewrite changed the
//! kernel's cost, not its behavior.

use ekbd::harness::{Campaign, Scenario, Workload};
use ekbd::sim::{EngineKind, FaultPlan, ProcessId, Time, TraceEvent};
use ekbd_link::LinkConfig;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

/// FNV-1a over the debug rendering of the full trace: stable, dependency
/// free, and sensitive to every field of every event.
fn trace_hash(trace: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace {
        for b in format!("{ev:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The E-suite's fault configurations, each applied to the given base
/// scenario. Returned labels name the configuration in assertion messages.
fn fault_configs(base: Scenario) -> Vec<(&'static str, Scenario)> {
    vec![
        ("reliable", base.clone()),
        ("loss", base.clone().faults(FaultPlan::new().loss(0.10))),
        (
            "duplication",
            base.clone().faults(FaultPlan::new().duplication(0.15)),
        ),
        (
            "reorder",
            base.clone().faults(FaultPlan::new().reorder(0.20, 12)),
        ),
        (
            "partition",
            base.clone().faults(FaultPlan::new().loss(0.05).partition(
                vec![p(0), p(1)],
                Time(500),
                Time(3_000),
            )),
        ),
        (
            "loss+dup+reorder",
            base.faults(
                FaultPlan::new()
                    .loss(0.05)
                    .duplication(0.10)
                    .reorder(0.15, 12),
            ),
        ),
    ]
}

fn base_scenario(graph: ekbd::graph::ConflictGraph, seed: u64) -> Scenario {
    Scenario::new(graph)
        .seed(seed)
        .adversarial_oracle(Time(2_000), 40)
        .workload(Workload {
            sessions: 5,
            think: (1, 25),
            eat: (1, 10),
        })
        .reliable_link(LinkConfig::default())
        .horizon(Time(60_000))
        .record_trace(true)
}

/// Runs one scenario on both engines and asserts full-trace equality plus
/// repeat-run determinism of the indexed engine.
fn assert_golden(label: &str, scenario: &Scenario) {
    let legacy = scenario.clone().engine(EngineKind::Legacy).run_algorithm1();
    let indexed = scenario
        .clone()
        .engine(EngineKind::Indexed)
        .run_algorithm1();
    assert!(
        !legacy.kernel_trace.is_empty(),
        "{label}: trace recording must be on for this test to mean anything"
    );
    // Event-by-event equality — pinpoints the first divergence on failure.
    let n = legacy.kernel_trace.len().min(indexed.kernel_trace.len());
    for i in 0..n {
        assert_eq!(
            legacy.kernel_trace[i], indexed.kernel_trace[i],
            "{label}: engines diverge at trace index {i}"
        );
    }
    assert_eq!(
        legacy.kernel_trace.len(),
        indexed.kernel_trace.len(),
        "{label}: engines agree on a prefix but one trace is longer"
    );
    assert_eq!(
        trace_hash(&legacy.kernel_trace),
        trace_hash(&indexed.kernel_trace),
        "{label}: trace hashes must match"
    );
    // Same seed, same engine, run again: byte-identical trace.
    let again = scenario
        .clone()
        .engine(EngineKind::Indexed)
        .run_algorithm1();
    assert_eq!(
        trace_hash(&indexed.kernel_trace),
        trace_hash(&again.kernel_trace),
        "{label}: repeat run of the indexed engine must be deterministic"
    );
    // The report-level aggregates the E-suite consumes must agree too.
    assert_eq!(
        legacy.events_processed, indexed.events_processed,
        "{label}: events processed"
    );
    assert_eq!(legacy.events, indexed.events, "{label}: sched events");
    assert_eq!(
        legacy.total_messages, indexed.total_messages,
        "{label}: total messages"
    );
    assert_eq!(
        legacy.final_states, indexed.final_states,
        "{label}: final states"
    );
}

#[test]
fn ring8_traces_identical_across_engines_and_faults() {
    for (label, scenario) in fault_configs(base_scenario(ekbd::graph::topology::ring(8), 42)) {
        assert_golden(&format!("ring-8/{label}"), &scenario);
    }
}

#[test]
fn clique6_traces_identical_across_engines_and_faults() {
    for (label, scenario) in fault_configs(base_scenario(ekbd::graph::topology::clique(6), 7)) {
        assert_golden(&format!("clique-6/{label}"), &scenario);
    }
}

#[test]
fn crash_recovery_traces_identical_across_engines() {
    // Crash + recovery (one blank, one corrupted reboot) and a live-state
    // corruption, under loss — the crash-recovery E-suite configuration.
    let scenario = base_scenario(ekbd::graph::topology::ring(8), 11)
        .crash(p(2), Time(4_000))
        .recover(p(2), Time(9_000))
        .crash(p(5), Time(6_000))
        .recover_corrupted(p(5), Time(12_000))
        .corrupt_state(p(0), Time(15_000))
        .faults(FaultPlan::new().loss(0.05));
    let legacy = scenario
        .clone()
        .engine(EngineKind::Legacy)
        .run_recoverable();
    let indexed = scenario.engine(EngineKind::Indexed).run_recoverable();
    assert!(!legacy.kernel_trace.is_empty());
    assert_eq!(
        legacy.kernel_trace, indexed.kernel_trace,
        "crash-recovery: full kernel traces must be identical"
    );
    assert_eq!(legacy.incarnations, indexed.incarnations);
    assert_eq!(legacy.final_states, indexed.final_states);
}

#[test]
fn journaling_without_restarts_is_trace_invisible() {
    // The stable-storage journal is written on every transition but only
    // ever *read* during a restart. With no restarts scheduled, a
    // journaled run must therefore be byte-identical to an unjournaled
    // one: commits touch no RNG, no timers, no channels. This pins the
    // zero-overhead-when-unused contract of the journal layer.
    for (label, scenario) in fault_configs(base_scenario(ekbd::graph::topology::ring(8), 42)) {
        let plain = scenario.clone().journal(false).run_recoverable();
        let journaled = scenario.clone().journal(true).run_recoverable();
        assert!(
            !plain.kernel_trace.is_empty(),
            "{label}: trace recording must be on"
        );
        assert_eq!(
            plain.kernel_trace, journaled.kernel_trace,
            "{label}: journaling must not perturb the kernel trace"
        );
        assert_eq!(plain.events, journaled.events, "{label}: sched events");
        assert_eq!(
            plain.total_messages, journaled.total_messages,
            "{label}: total messages"
        );
        assert_eq!(
            trace_hash(&plain.kernel_trace),
            trace_hash(&journaled.kernel_trace),
            "{label}: trace hashes must match"
        );
    }
}

#[test]
fn campaign_parallel_merge_matches_serial_byte_for_byte() {
    // The campaign runner must be a pure parallelization: fanning the same
    // jobs across workers cannot change any report, and the merged
    // (seed-ordered) rendering must be byte-identical to the serial one.
    let base = Scenario::new(ekbd::graph::topology::ring(8))
        .adversarial_oracle(Time(2_000), 40)
        .workload(Workload {
            sessions: 4,
            think: (1, 20),
            eat: (1, 10),
        })
        .faults(FaultPlan::new().loss(0.05))
        .reliable_link(LinkConfig::default())
        .horizon(Time(40_000));
    let campaign = Campaign::new().seeds("ring-8", &base, 1..=12);
    let serial = campaign.run_serial();
    let parallel = campaign.run_with_workers(4);
    assert_eq!(
        serial.merged(),
        parallel.merged(),
        "parallel campaign must merge to the serial bytes"
    );
    assert_eq!(serial.total_events(), parallel.total_events());
    assert_eq!(serial.total_sessions(), parallel.total_sessions());
}
