//! Stepwise global-invariant checks: properties the paper proves as lemmas
//! (fork/token uniqueness, channel bounds) asserted at *every* step of
//! live runs, not just at the end.

use ekbd::dining::{DiningProcess, RecoverableDining};
use ekbd::graph::{topology, ConflictGraph};
use ekbd::harness::{LiveRun, Scenario, Workload, AUDIT_PERIOD};
use ekbd::sim::Time;

/// Lemma 1.2: the fork is unique per edge. At any instant, at most one
/// endpoint holds it (it may also be in transit — then neither does).
/// Same for the token. Also §7: ≤ 4 messages in transit per channel.
fn assert_edge_invariants(live: &LiveRun<DiningProcess>, graph: &ConflictGraph) {
    for e in graph.edges() {
        let a = live.algorithm(e.lo);
        let b = live.algorithm(e.hi);
        assert!(
            !(a.holds_fork(e.hi) && b.holds_fork(e.lo)),
            "duplicated fork on {:?} at {}",
            e,
            live.now()
        );
        assert!(
            !(a.holds_token(e.hi) && b.holds_token(e.lo)),
            "duplicated token on {:?} at {}",
            e,
            live.now()
        );
    }
    assert!(
        live.max_channel_high_water() <= 4,
        "channel capacity exceeded at {}",
        live.now()
    );
}

fn run_with_invariants(scenario: Scenario) {
    let graph = scenario.graph.clone();
    let mut live = LiveRun::new(scenario, |s, p| {
        DiningProcess::from_graph(&s.graph, &s.colors, p)
    });
    // The lemma is an *every-instant* property: a check at each trace step
    // (O(E) apiece) is what makes the assertion meaningful.
    while live.step() {
        assert_edge_invariants(&live, &graph);
    }
    assert_edge_invariants(&live, &graph);
    let report = live.finish();
    assert!(report.progress().wait_free());
}

#[test]
fn fork_uniqueness_holds_throughout_contended_run() {
    run_with_invariants(
        Scenario::new(topology::clique(5))
            .seed(31)
            .workload(Workload {
                sessions: 30,
                think: (1, 5),
                eat: (1, 10),
            })
            .horizon(Time(100_000)),
    );
}

#[test]
fn fork_uniqueness_holds_with_adversarial_oracle_and_crash() {
    run_with_invariants(
        Scenario::new(topology::grid(3, 3))
            .seed(32)
            .adversarial_oracle(Time(1_500), 40)
            .crash(ekbd::graph::ProcessId(4), Time(800))
            .workload(Workload {
                sessions: 25,
                think: (1, 40),
                eat: (1, 10),
            })
            .horizon(Time(150_000)),
    );
}

#[test]
fn fork_uniqueness_on_rings_many_seeds() {
    for seed in 0..6 {
        run_with_invariants(
            Scenario::new(topology::ring(6))
                .seed(seed)
                .workload(Workload {
                    sessions: 15,
                    think: (1, 10),
                    eat: (1, 8),
                })
                .horizon(Time(60_000)),
        );
    }
}

#[test]
fn final_state_is_clean_after_quiescence() {
    // After everyone finishes all sessions (no crashes): every process is
    // thinking, outside the doorway, and every edge has exactly one fork
    // and one token *held* (nothing left in transit).
    let scenario = Scenario::new(topology::ring(5))
        .seed(77)
        .workload(Workload {
            sessions: 10,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(200_000));
    let graph = scenario.graph.clone();
    let mut live = LiveRun::new(scenario, |s, p| {
        DiningProcess::from_graph(&s.graph, &s.colors, p)
    });
    while live.step() {}
    for e in graph.edges() {
        let a = live.algorithm(e.lo);
        let b = live.algorithm(e.hi);
        assert_eq!(
            a.holds_fork(e.hi) as u32 + b.holds_fork(e.lo) as u32,
            1,
            "exactly one fork held on {e:?} after quiescence"
        );
        assert_eq!(
            a.holds_token(e.hi) as u32 + b.holds_token(e.lo) as u32,
            1,
            "exactly one token held on {e:?} after quiescence"
        );
    }
    let report = live.finish();
    assert!(report
        .final_states
        .iter()
        .all(|s| *s == ekbd::dining::DinerState::Thinking));
}

/// Per-edge fork/token uniqueness for crash-recovery runs. A corrupted
/// restart or a live state fault *deliberately* duplicates forks, so the
/// every-step assertion only starts once the last scheduled fault has had
/// a few audit periods to be repaired; from then on the lemma must hold at
/// every remaining trace step, crashed endpoints excepted.
#[test]
fn fork_uniqueness_restored_after_recovery_and_corruption() {
    let scenario = Scenario::new(topology::clique(4))
        .seed(91)
        .perfect_oracle()
        .workload(Workload {
            sessions: 12,
            think: (1, 20),
            eat: (1, 8),
        })
        .crash(ekbd::graph::ProcessId(1), Time(400))
        .recover_corrupted(ekbd::graph::ProcessId(1), Time(2_000))
        .corrupt_state(ekbd::graph::ProcessId(3), Time(3_000))
        .horizon(Time(120_000));
    let graph = scenario.graph.clone();
    let stable_from = Time(3_000 + 10 * AUDIT_PERIOD);
    let mut live = LiveRun::new(scenario, |s, p| {
        RecoverableDining::from_graph(&s.graph, &s.colors, p)
    });
    let mut checked = 0u64;
    while live.step() {
        if live.now() < stable_from {
            continue;
        }
        checked += 1;
        for e in graph.edges() {
            let a = live.algorithm(e.lo);
            let b = live.algorithm(e.hi);
            assert!(
                !(a.holds_fork(e.hi) && b.holds_fork(e.lo)),
                "duplicated fork on {:?} at {} (post-stabilization)",
                e,
                live.now()
            );
            assert!(
                !(a.holds_token(e.hi) && b.holds_token(e.lo)),
                "duplicated token on {:?} at {} (post-stabilization)",
                e,
                live.now()
            );
        }
    }
    assert!(checked > 0, "the run must outlive the stabilization window");
    let report = live.finish();
    assert!(report.progress().wait_free());
    assert!(
        report.readmissions().iter().all(|r| r.first_eat.is_some()),
        "the recovered process must eat again"
    );
}
