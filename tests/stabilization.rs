//! Integration of the stabilization layer with the daemon across
//! protocols, topologies, daemons, and fault loads.

use ekbd::baselines::ChoySinghProcess;
use ekbd::dining::DiningProcess;
use ekbd::graph::{topology, ProcessId};
use ekbd::harness::Scenario;
use ekbd::sim::Time;
use ekbd::stabilize::{
    ColoringProtocol, MisProtocol, Protocol, ScheduledRun, StabilizationConfig, TokenRingProtocol,
};

fn algorithm1(s: &Scenario, p: ProcessId) -> DiningProcess {
    DiningProcess::from_graph(&s.graph, &s.colors, p)
}

fn faults(n: usize, count: u64, from: u64) -> Vec<(Time, ProcessId)> {
    (0..count)
        .map(|k| {
            (
                Time(from + 300 * k),
                ProcessId::from((k as usize * 3 + 1) % n),
            )
        })
        .collect()
}

#[test]
fn coloring_converges_across_topologies() {
    for (g, seed) in [
        (topology::ring(7), 1u64),
        (topology::grid(3, 4), 2),
        (topology::binary_tree(10), 3),
        (topology::clique(5), 4),
    ] {
        let n = g.len();
        let scenario = Scenario::new(g).seed(seed).horizon(Time(300_000));
        let cfg = StabilizationConfig {
            seed: seed * 7,
            think: (1, 8),
            transient_faults: faults(n, 6, 2_000),
        };
        let r = ScheduledRun::execute(&ColoringProtocol::default(), scenario, &cfg, algorithm1);
        assert!(r.legitimate_at_end, "coloring failed (seed {seed})");
        assert!(r.converged_at.is_some());
        assert_eq!(r.faults_injected, 6);
    }
}

#[test]
fn mis_converges_with_crashes_and_adversarial_oracle() {
    let scenario = Scenario::new(topology::grid(3, 3))
        .seed(6)
        .adversarial_oracle(Time(1_500), 45)
        .crash(ProcessId(0), Time(900))
        .horizon(Time(500_000));
    let cfg = StabilizationConfig {
        seed: 20,
        think: (1, 8),
        transient_faults: faults(9, 8, 3_000),
    };
    let r = ScheduledRun::execute(&MisProtocol, scenario, &cfg, algorithm1);
    assert!(r.legitimate_at_end, "MIS must converge despite the crash");
    assert!(r.dining.progress().wait_free());
}

#[test]
fn scheduling_mistakes_only_delay_convergence() {
    // With a late-converging oracle, ◇WX mistakes during the prefix act as
    // extra transient faults; the suffix still converges.
    let scenario = Scenario::new(topology::clique(4))
        .seed(8)
        .adversarial_oracle(Time(4_000), 60)
        .horizon(Time(500_000));
    let cfg = StabilizationConfig {
        seed: 3,
        think: (1, 5),
        transient_faults: Vec::new(),
    };
    let r = ScheduledRun::execute(&ColoringProtocol::default(), scenario, &cfg, algorithm1);
    assert!(r.legitimate_at_end);
    // The dining layer may well have made mistakes pre-convergence; the
    // point is that convergence happened anyway.
    assert_eq!(r.dining.exclusion().after(Time(4_000)), 0);
}

#[test]
fn token_ring_stabilizes_and_circulates() {
    let scenario = Scenario::new(topology::ring(4))
        .seed(10)
        .horizon(Time(300_000));
    let cfg = StabilizationConfig {
        seed: 4,
        think: (1, 5),
        transient_faults: vec![(Time(2_000), ProcessId(1))],
    };
    let r = ScheduledRun::execute(&TokenRingProtocol::new(6), scenario, &cfg, algorithm1);
    assert!(r.legitimate_at_end);
    // The ring keeps moving after convergence: plenty of steps executed.
    assert!(r.steps_executed > 50, "steps: {}", r.steps_executed);
}

#[test]
fn adversarial_faults_cannot_defeat_the_wait_free_daemon() {
    // Worst-case corruptions (clone a neighbor's color), repeatedly, with
    // a crash: Algorithm 1 still converges.
    let scenario = Scenario::new(topology::grid(3, 3))
        .seed(12)
        .perfect_oracle()
        .crash(ProcessId(4), Time(800))
        .horizon(Time(600_000));
    let cfg = StabilizationConfig {
        seed: 5,
        think: (1, 8),
        transient_faults: (0..16)
            .map(|k| {
                let victims = [1usize, 3, 5, 7];
                (
                    Time(3_000 + 400 * k),
                    ProcessId::from(victims[k as usize % 4]),
                )
            })
            .collect(),
    };
    let r = ScheduledRun::execute(&ColoringProtocol::adversarial(), scenario, &cfg, algorithm1);
    assert!(r.legitimate_at_end);
    assert!(r.dining.progress().wait_free());
}

#[test]
fn crash_oblivious_daemon_fails_deterministically_under_adversarial_faults() {
    let scenario = Scenario::new(topology::grid(3, 3))
        .seed(12)
        .crash(ProcessId(4), Time(800))
        .horizon(Time(600_000));
    let cfg = StabilizationConfig {
        seed: 5,
        think: (1, 8),
        transient_faults: (0..16)
            .map(|k| {
                let victims = [1usize, 3, 5, 7];
                (
                    Time(3_000 + 400 * k),
                    ProcessId::from(victims[k as usize % 4]),
                )
            })
            .collect(),
    };
    let r = ScheduledRun::execute(&ColoringProtocol::adversarial(), scenario, &cfg, |s, p| {
        ChoySinghProcess::from_graph(&s.graph, &s.colors, p)
    });
    assert!(!r.dining.progress().wait_free(), "neighbors of p4 starve");
    assert!(
        !r.legitimate_at_end,
        "a corrupted, starved process can never repair its state"
    );
}

#[test]
fn protocols_report_names() {
    assert_eq!(ColoringProtocol::default().name(), "coloring");
    assert_eq!(MisProtocol.name(), "mis");
    assert_eq!(TokenRingProtocol::new(5).name(), "token-ring");
}
