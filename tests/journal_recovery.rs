//! End-to-end tests of the crash-consistent state journal (`ekbd-journal`)
//! under the simulation harness: the `JournalResume` fast path on clean
//! restarts, graceful degradation to the blank rejoin path under every
//! stable-storage corruption mode, and partition-tolerant rejoin — a
//! restarting process whose journal resume is cut off by a network
//! partition keeps those edges suppressed (no algorithm traffic) until the
//! partition heals, then readmits.

use ekbd::dining::{BlankReason, RestartPath};
use ekbd::harness::{Scenario, Workload};
use ekbd::journal::StorageFaultPlan;
use ekbd::sim::{ProcessId, Time};
use ekbd_harness::AUDIT_PERIOD;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

fn crash_recover_scenario(seed: u64) -> Scenario {
    Scenario::new(ekbd::graph::topology::ring(5))
        .seed(seed)
        .perfect_oracle()
        .crash(p(2), Time(600))
        .recover(p(2), Time(4_000))
        .workload(Workload {
            sessions: 8,
            think: (1, 30),
            eat: (1, 10),
        })
        .horizon(Time(60_000))
}

#[test]
fn clean_journaled_restart_takes_the_fast_path() {
    let report = crash_recover_scenario(17).journal(true).run_recoverable();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
    let ra = report.readmissions();
    assert_eq!(ra.len(), 1);
    assert!(ra[0].first_eat.is_some(), "readmitted: {ra:?}");
    // Both ring edges of the restarted process confirm the journal.
    assert_eq!(
        ra[0].path,
        Some(RestartPath::Journal {
            resumed: 2,
            rejoined: 0,
            stale: 0
        }),
        "clean journal ⇒ full fast resume: {ra:?}"
    );
    let stats = report.recovery.expect("recovery layer active");
    assert_eq!(stats.fast_resumes, 2, "{stats:?}");
}

#[test]
fn every_storage_fault_degrades_safely() {
    // Each corruption mode must end with a readmitted process, zero
    // post-convergence exclusion mistakes, and no starved correct process.
    // Undecodable journals (torn write, bit rot) must additionally be
    // *detected* and routed through the blank restart path.
    type Build = fn(StorageFaultPlan, ProcessId) -> StorageFaultPlan;
    let cases: [(&str, Build); 4] = [
        ("torn-write", StorageFaultPlan::torn_write),
        ("bit-rot", StorageFaultPlan::bit_rot),
        ("stale-snapshot", StorageFaultPlan::stale_snapshot),
        ("dropped-sync", StorageFaultPlan::dropped_sync),
    ];
    for (label, build) in cases {
        for seed in [3, 17, 92] {
            let plan = build(StorageFaultPlan::new().seed(seed), p(2));
            let report = crash_recover_scenario(seed)
                .storage_faults(plan)
                .run_recoverable();
            assert!(
                report.progress().wait_free(),
                "{label}/seed {seed}: starving {:?}",
                report.progress().starving()
            );
            // Perfect oracle ⇒ converged from the start: *zero* mistakes,
            // not just eventually-zero.
            assert_eq!(
                report.exclusion().total(),
                0,
                "{label}/seed {seed}: post-convergence ◇WX mistakes"
            );
            let ra = report.readmissions();
            assert!(
                ra[0].first_eat.is_some(),
                "{label}/seed {seed}: never readmitted"
            );
            let path = ra[0].path.expect("restart log present");
            match label {
                // An undecodable journal (bad CRC or structure) must be
                // *detected* and routed through the blank restart path —
                // never silently accepted.
                "torn-write" | "bit-rot" => assert_eq!(
                    path,
                    RestartPath::Blank {
                        reason: BlankReason::Corrupt
                    },
                    "{label}/seed {seed}: undecodable journal must be detected"
                ),
                // A stale snapshot decodes but may lie about edge state;
                // any lie is caught per edge by the ResumeAck exactly-one
                // consistency check, which falls back to the rejoin
                // handshake (truthful stale edges may legitimately still
                // fast-resume). A dropped sync serves a snapshot so old it
                // reads as missing or corrupt, or likewise lies per edge.
                _ => assert!(
                    matches!(
                        path,
                        RestartPath::Journal { .. } | RestartPath::Blank { .. }
                    ),
                    "{label}/seed {seed}: {path:?}"
                ),
            }
        }
    }
}

#[test]
fn partitioned_resume_suppresses_edges_until_heal_then_readmits() {
    // p2 restarts at t=4000 while a partition (t=3500..=12000) cuts it off
    // from both ring neighbors. Its JournalResume probes die in the void:
    // the edges stay unsynced — and unsynced edges carry no algorithm
    // traffic (`suppressed` counts each muzzled hungry attempt) — until
    // the heal lets the audit's retry complete the resume. After the heal
    // it must still readmit with zero mistakes.
    let base = crash_recover_scenario(29).journal(true);
    // `recover` schedules live inside the fault plan: extend it rather
    // than replace it.
    let plan = base
        .faults
        .clone()
        .partition(vec![p(2)], Time(3_500), Time(12_000));
    let report = base.faults(plan).horizon(Time(90_000)).run_recoverable();
    assert!(
        report.progress().wait_free(),
        "starving: {:?}",
        report.progress().starving()
    );
    assert_eq!(report.exclusion().total(), 0, "◇WX across the partition");
    let stats = report.recovery.expect("recovery layer active");
    assert!(
        stats.suppressed > 0,
        "cut edges must suppress hungry traffic while unsynced: {stats:?}"
    );
    let ra = report.readmissions();
    let eat = ra[0].first_eat.expect("readmitted after heal");
    assert!(
        eat >= Time(12_000),
        "cannot eat before the partition heals: {ra:?}"
    );
    // The journal survived the partition: the audit keeps retrying
    // JournalResume (not Rejoin), so the edges still fast-resume.
    assert_eq!(
        ra[0].path,
        Some(RestartPath::Journal {
            resumed: 2,
            rejoined: 0,
            stale: 0
        }),
        "fast path must survive the partition: {ra:?}"
    );
    assert_eq!(stats.fast_resumes, 2, "{stats:?}");
}

#[test]
fn replay_narrative_matches_the_live_restart_log() {
    // The post-mortem replay of the captured journals must tell the same
    // story the live run recorded: one restart of p2, booted from the
    // journal, with the same per-edge resume/rejoin/stale split.
    let report = crash_recover_scenario(17).journal(true).run_recoverable();
    let ra = report.readmissions();
    let Some(RestartPath::Journal {
        resumed,
        rejoined,
        stale,
    }) = ra[0].path
    else {
        panic!("clean journal must take the fast path: {ra:?}");
    };
    let replays = report.replay();
    assert_eq!(replays.len(), report.graph.len());
    let p2 = &replays[2];
    assert_eq!(p2.label, "p2");
    assert_eq!(p2.undecodable, 0);
    assert_eq!(p2.incarnations.len(), 2, "genesis + one restart: {p2:?}");
    let reborn = &p2.incarnations[1];
    assert_eq!(reborn.incarnation, 1);
    assert_eq!(reborn.boot, ekbd::journal::BootPath::Journal);
    assert_eq!(
        reborn.resync_counts(),
        (resumed, rejoined, stale),
        "replay and live restart log must agree"
    );
    // Un-restarted processes replay as a single genesis incarnation.
    for (i, pr) in replays.iter().enumerate() {
        if i != 2 {
            assert_eq!(pr.incarnations.len(), 1, "p{i}: {pr:?}");
        }
    }
}

#[test]
fn dumped_journal_dir_replays_byte_identically() {
    // `dump_journals` + `replay::load_dir` must reconstruct the same
    // narrative as the in-memory `report.replay()`, and rendering the same
    // directory twice must be byte-identical (post-mortem determinism).
    let report = crash_recover_scenario(17).journal(true).run_recoverable();
    let dir = std::env::temp_dir().join(format!("ekbd-replay-int-{}-{}", std::process::id(), 17));
    let _ = std::fs::remove_dir_all(&dir);
    report.dump_journals(&dir).expect("dump journals");
    let from_dir = ekbd::journal::replay::load_dir(&dir).expect("load journal dir");
    let rendered_live = ekbd::journal::replay::render(&report.replay());
    let rendered_dir = ekbd::journal::replay::render(&from_dir);
    assert_eq!(
        rendered_live, rendered_dir,
        "on-disk round trip changes the narrative"
    );
    let again = ekbd::journal::replay::load_dir(&dir).expect("reload journal dir");
    assert_eq!(
        rendered_dir,
        ekbd::journal::replay::render(&again),
        "same journal dir must render byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_period_and_strikes_knobs_shape_repair_latency() {
    // A tighter audit period retries the interrupted resume sooner, so the
    // post-heal readmission lands no later than with a sluggish audit; the
    // run stays correct at both extremes and at a higher strike threshold.
    let run = |period: u64, strikes: u8| {
        let base = crash_recover_scenario(41)
            .journal(true)
            .audit_period(period)
            .audit_strikes(strikes);
        let plan = base
            .faults
            .clone()
            .partition(vec![p(2)], Time(3_500), Time(12_000));
        base.faults(plan).horizon(Time(90_000)).run_recoverable()
    };
    let fast = run(AUDIT_PERIOD / 2, 2);
    let slow = run(AUDIT_PERIOD * 4, 2);
    let strict = run(AUDIT_PERIOD, 3);
    for (label, report) in [("fast", &fast), ("slow", &slow), ("strict", &strict)] {
        assert!(report.progress().wait_free(), "{label}: wait-freedom");
        assert_eq!(report.exclusion().total(), 0, "{label}: ◇WX");
        assert!(
            report.readmissions()[0].first_eat.is_some(),
            "{label}: readmitted"
        );
    }
    // Post-heal readmission is completed by the audit's resume retry, so
    // it can lag the heal by at most one audit period (plus messaging).
    // The tight audit may still land a few ticks after the sluggish one
    // when the latter's phase happens to align with the heal — but never
    // by more than its own (short) period.
    let t = |r: &ekbd::harness::RunReport| r.readmissions()[0].time_to_readmission().unwrap();
    assert!(
        t(&fast) <= t(&slow) + AUDIT_PERIOD / 2,
        "tight audit lags by more than its own period: fast={} slow={}",
        t(&fast),
        t(&slow)
    );
}
