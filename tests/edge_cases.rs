//! Boundary conditions: degenerate graphs, extreme crash schedules, and
//! odd-but-legal configurations.

use ekbd::dining::{DinerState, DiningAlgorithm, DiningInput, DiningProcess};
use ekbd::graph::{topology, ConflictGraph, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::sim::{DelayModel, Time};
use std::collections::BTreeSet;

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

#[test]
fn isolated_diner_eats_instantly() {
    // A process with no conflict edges needs no doorway and no forks.
    let mut lone = DiningProcess::new(p(0), 0, []);
    let mut out = Vec::new();
    lone.handle(DiningInput::Hungry, &BTreeSet::new(), &mut out);
    assert_eq!(lone.state(), DinerState::Eating);
    assert!(out.is_empty(), "no one to talk to");
    assert!(lone.inside_doorway());
}

#[test]
fn edgeless_graph_scenario() {
    // Three mutually independent processes: everyone eats immediately and
    // simultaneously, and that is *not* a mistake (no conflict edges).
    let g = ConflictGraph::from_pairs(3, &[]);
    let report = Scenario::new(g)
        .seed(1)
        .workload(Workload {
            sessions: 5,
            think: (1, 5),
            eat: (1, 5),
        })
        .horizon(Time(10_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
    assert_eq!(report.total_messages, 0, "no edges, no traffic");
    assert_eq!(report.progress().total_sessions(), 15);
}

#[test]
fn two_process_system_works() {
    let report = Scenario::new(topology::path(2))
        .seed(2)
        .workload(Workload {
            sessions: 25,
            think: (1, 5),
            eat: (1, 5),
        })
        .horizon(Time(60_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
    assert!(report.fairness().max_overtakes() <= 2);
}

#[test]
fn crash_at_time_zero() {
    // A process that crashes before doing anything: neighbors proceed via
    // suspicion; the dead process's initial fork is simply lost.
    let report = Scenario::new(topology::ring(4))
        .seed(3)
        .perfect_oracle()
        .crash(p(0), Time(0))
        .workload(Workload {
            sessions: 10,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(100_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.progress().per_process[0].completed, 0);
    assert!(report.progress().per_process[1].completed > 0);
}

#[test]
fn all_but_one_crash() {
    // n-1 of n crash: the survivor must keep getting scheduled.
    let n = 6;
    let mut s = Scenario::new(topology::clique(n))
        .seed(4)
        .perfect_oracle()
        .workload(Workload {
            sessions: 12,
            think: (1, 40),
            eat: (1, 10),
        })
        .horizon(Time(200_000));
    for i in 1..n {
        s = s.crash(p(i), Time(100 * i as u64));
    }
    let report = s.run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.progress().per_process[0].completed, 12);
}

#[test]
fn everyone_crashes() {
    // Vacuously wait-free: nobody is correct.
    let mut s = Scenario::new(topology::ring(3))
        .seed(5)
        .perfect_oracle()
        .workload(Workload {
            sessions: 10,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(50_000));
    for i in 0..3 {
        s = s.crash(p(i), Time(50 + 10 * i as u64));
    }
    let report = s.run_algorithm1();
    assert!(report.progress().wait_free(), "vacuous: no correct process");
    // Nothing can happen after the last crash.
    let last_crash = Time(70);
    assert!(report.events.iter().all(|e| e.time <= last_crash));
}

#[test]
fn fixed_delay_degenerate_network() {
    // Delay 1 everywhere: the most synchronous legal network.
    let report = Scenario::new(topology::ring(5))
        .seed(6)
        .delay(DelayModel::Fixed(1))
        .workload(Workload {
            sessions: 10,
            think: (1, 3),
            eat: (1, 3),
        })
        .horizon(Time(30_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
}

#[test]
fn huge_delay_variance() {
    // Delays spanning three orders of magnitude stress FIFO convoying.
    let report = Scenario::new(topology::ring(4))
        .seed(7)
        .delay(DelayModel::Uniform { min: 1, max: 900 })
        .workload(Workload {
            sessions: 6,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(500_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
    assert!(report.max_channel_high_water <= 4);
}

#[test]
fn zero_sessions_idle_system() {
    let report = Scenario::new(topology::ring(4))
        .seed(8)
        .workload(Workload {
            sessions: 0,
            think: (1, 1),
            eat: (1, 1),
        })
        .horizon(Time(10_000))
        .run_algorithm1();
    assert_eq!(report.events.len(), 0);
    assert_eq!(report.total_messages, 0);
    assert!(report.progress().wait_free());
}

#[test]
fn manual_hunger_while_busy_is_ignored() {
    // Injecting hunger into a non-thinking process must not corrupt state.
    let report = Scenario::new(topology::path(2))
        .seed(9)
        .workload(Workload {
            sessions: 2,
            think: (1, 2),
            eat: (50, 60),
        })
        .hunger(p(0), Time(5))
        .hunger(p(0), Time(6))
        .hunger(p(0), Time(7))
        .horizon(Time(20_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    // Sessions: the two automatic ones plus at most one manual that landed
    // while thinking.
    assert!(report.progress().per_process[0].completed <= 3 + 1);
}

#[test]
fn colorings_with_gaps_are_legal() {
    // The algorithm only needs neighbor-distinct colors, not consecutive
    // ones: use widely spaced priorities.
    let report = Scenario::new(topology::ring(4))
        .colors(vec![10, 500, 10, 999])
        .seed(10)
        .workload(Workload {
            sessions: 8,
            think: (1, 5),
            eat: (1, 5),
        })
        .horizon(Time(40_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0);
}

#[test]
fn repeated_crash_schedule_entries_are_tolerated() {
    // Scheduling the same crash twice is idempotent.
    let report = Scenario::new(topology::ring(4))
        .seed(11)
        .perfect_oracle()
        .crash(p(1), Time(100))
        .crash(p(1), Time(100))
        .workload(Workload {
            sessions: 5,
            think: (1, 10),
            eat: (1, 10),
        })
        .horizon(Time(50_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
}
