//! Acceptance tests for the adversarial-channel fault injection and the
//! self-healing link layer (ISSUE: robustness PR).
//!
//! The headline scenario: 10% message loss plus a link partition that
//! heals, dining traffic wrapped by `ekbd-link`. Every correct hungry
//! diner eats (Theorem 2), there are no exclusion violations after oracle
//! convergence (Theorem 1), and the whole run is deterministic per seed.

use ekbd_harness::{Scenario, Workload};
use ekbd_link::LinkConfig;
use ekbd_sim::{FaultPlan, LinkFault, ProcessId, Time};

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

/// The ISSUE's acceptance scenario: 10% loss everywhere, a partition that
/// isolates two diners for a while and heals, link layer on.
fn acceptance_scenario(seed: u64) -> Scenario {
    Scenario::new(ekbd_graph::topology::ring(6))
        .seed(seed)
        .adversarial_oracle(Time(2_000), 40)
        .workload(Workload {
            sessions: 6,
            think: (1, 30),
            eat: (1, 10),
        })
        .faults(
            FaultPlan::new()
                .loss(0.10)
                .partition(vec![p(0), p(1)], Time(500), Time(3_000)),
        )
        .reliable_link(LinkConfig::default())
        .horizon(Time(120_000))
}

#[test]
fn ten_percent_loss_and_healed_partition_stay_wait_free() {
    let report = acceptance_scenario(42).run_algorithm1();
    // Faults actually happened.
    assert!(report.messages_dropped > 0, "the fault plan must bite");
    let link = report.link.expect("link layer was enabled");
    assert!(link.retransmissions > 0, "loss must force retransmission");
    assert_eq!(
        link.delivered, link.payloads_sent,
        "every logical dining send is eventually delivered exactly once"
    );
    // Theorem 2 (wait-freedom): every hungry session completes.
    let progress = report.progress();
    assert!(progress.wait_free(), "starving: {:?}", progress.starving());
    assert_eq!(progress.total_sessions(), 6 * 6);
    // Theorem 1 (◇WX): no mistakes after the oracle converges.
    assert_eq!(
        report.exclusion().after(Time(2_000)),
        0,
        "no post-convergence exclusion violations"
    );
    // Theorem 3 (◇2-BW) in the convergence suffix.
    assert!(report.fairness().max_overtakes_after(Time(2_000)) <= 2);
}

#[test]
fn faulty_runs_are_fully_deterministic_per_seed() {
    let a = acceptance_scenario(7).run_algorithm1();
    let b = acceptance_scenario(7).run_algorithm1();
    assert_eq!(a.events, b.events);
    assert_eq!(a.suspicions, b.suspicions);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.messages_dropped, b.messages_dropped);
    assert_eq!(a.messages_duplicated, b.messages_duplicated);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.link, b.link);

    let c = acceptance_scenario(8).run_algorithm1();
    assert_ne!(
        (a.events_processed, a.messages_dropped),
        (c.events_processed, c.messages_dropped),
        "different seeds should diverge"
    );
}

#[test]
fn duplication_and_reordering_are_masked_by_the_link_layer() {
    let report = Scenario::new(ekbd_graph::topology::clique(4))
        .seed(11)
        .workload(Workload {
            sessions: 5,
            think: (1, 25),
            eat: (1, 10),
        })
        .faults(
            FaultPlan::new()
                .loss(0.05)
                .duplication(0.10)
                .reorder(0.15, 12),
        )
        .reliable_link(LinkConfig::default())
        .horizon(Time(100_000))
        .run_algorithm1();
    assert!(report.messages_duplicated > 0, "duplication must bite");
    let link = report.link.expect("link enabled");
    assert!(
        link.duplicates_suppressed > 0,
        "link must have suppressed duplicates"
    );
    assert_eq!(
        link.delivered, link.payloads_sent,
        "exactly once despite dup/reorder"
    );
    assert!(report.progress().wait_free());
    assert_eq!(report.exclusion().total(), 0, "silent oracle ⇒ no mistakes");
}

#[test]
fn heavy_loss_on_one_edge_only_slows_that_edge() {
    let report = Scenario::new(ekbd_graph::topology::ring(4))
        .seed(3)
        .workload(Workload {
            sessions: 4,
            think: (1, 20),
            eat: (1, 8),
        })
        .faults(FaultPlan::new().edge_fault(p(0), p(1), LinkFault::lossy(0.5)))
        .reliable_link(LinkConfig::default())
        .horizon(Time(150_000))
        .run_algorithm1();
    assert!(
        report.progress().wait_free(),
        "50% loss on one edge is survivable"
    );
    let link = report.link.expect("link enabled");
    assert_eq!(link.delivered, link.payloads_sent);
}

/// Quiescence toward a crashed neighbor (§7 S3): once ◇P suspects the
/// crashed process, the link layer stops retransmitting to it, so the
/// total number of messages addressed to it stays finite and small.
#[test]
fn retransmission_to_crashed_neighbor_ceases_after_suspicion() {
    let report = Scenario::new(ekbd_graph::topology::ring(5))
        .seed(17)
        .perfect_oracle()
        .crash(p(2), Time(400))
        .workload(Workload {
            sessions: 8,
            think: (1, 30),
            eat: (1, 10),
        })
        .faults(FaultPlan::new().loss(0.10))
        .reliable_link(LinkConfig::default())
        .horizon(Time(120_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    // Network-level counter includes link retransmissions: it must be
    // finite and front-loaded (quiescent well before the horizon).
    let to_crashed = &report.sends_to_crashed;
    assert!(
        to_crashed.len() < 60,
        "sends to crashed must stay bounded, got {}",
        to_crashed.len()
    );
    let last = to_crashed
        .iter()
        .map(|&(t, _, _)| t)
        .max()
        .unwrap_or(Time::ZERO);
    assert!(
        last < Time(60_000),
        "retransmission to the crashed process must cease, last send at {last:?}"
    );
}
