//! Sharded-kernel golden gate (scale-tier satellite): shard-count
//! invariance, rerun byte-identity, and cross-check against the legacy
//! engine's semantics on small graphs.
//!
//! The packed kernel promises that its result is a pure function of
//! `(graph, colors, seed)` — the shard count and thread interleaving must
//! be unobservable. These tests pin that promise over the reference
//! topologies and both random-graph families.

use ekbd_graph::partition::greedy_edge_cut;
use ekbd_graph::{coloring, random, topology, ConflictGraph};
use ekbd_sim::{run_sharded, PackedKernel, ScaleConfig, ScaleRunReport};

fn run(g: &ConflictGraph, shards: usize, seed: u64) -> ScaleRunReport {
    let colors = coloring::greedy(g);
    let part = greedy_edge_cut(g, shards);
    let kernel = PackedKernel::new(g, &colors, &part, ScaleConfig::default().seed(seed));
    run_sharded(kernel)
}

/// Same verdict, per-process eat counts, and full fingerprint for shard
/// counts 1, 2, and 4.
fn assert_shard_invariant(g: &ConflictGraph, seed: u64, label: &str) {
    let one = run(g, 1, seed);
    assert!(one.verdict(), "{label}: single-shard run must pass");
    assert_eq!(one.mistakes, 0, "{label}: fault-free run must be clean");
    for shards in [2, 4] {
        let many = run(g, shards, seed);
        assert_eq!(
            many.verdict(),
            one.verdict(),
            "{label}: verdict diverged at {shards} shards"
        );
        assert_eq!(
            many.eats, one.eats,
            "{label}: per-process eat counts diverged at {shards} shards"
        );
        assert_eq!(
            many.fingerprint(),
            one.fingerprint(),
            "{label}: fingerprint diverged at {shards} shards"
        );
    }
}

#[test]
fn ring_is_shard_count_invariant() {
    assert_shard_invariant(&topology::ring(32), 3, "ring-32");
}

#[test]
fn grid_is_shard_count_invariant() {
    assert_shard_invariant(&topology::grid(6, 6), 7, "grid-6x6");
}

#[test]
fn gnp_is_shard_count_invariant() {
    assert_shard_invariant(&random::connected_gnp(48, 0.1, 5), 9, "gnp-48");
}

#[test]
fn powerlaw_is_shard_count_invariant() {
    assert_shard_invariant(&random::powerlaw(64, 3, 2), 4, "powerlaw-64");
}

#[test]
fn reruns_are_byte_identical_per_shard_count() {
    let g = random::powerlaw(60, 2, 13);
    for shards in [1, 2, 4] {
        let a = run(&g, shards, 21);
        let b = run(&g, shards, 21);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "rerun diverged at {shards} shards"
        );
        assert_eq!(a.eats, b.eats);
        assert_eq!(a.excerpts, b.excerpts);
        assert_eq!(a.final_tick, b.final_tick);
    }
}

#[test]
fn packed_semantics_cross_check_against_full_simulator() {
    // The packed kernel is a re-implementation of Algorithm 1, not a
    // re-skin of the simulator, so traces are not comparable event by
    // event — but the *safety theorems* must hold in both worlds. On the
    // reference topologies the packed run must be mistake-free and
    // wait-free, exactly as the golden-trace-pinned legacy engine is.
    for (g, label) in [
        (topology::ring(8), "ring-8"),
        (topology::clique(6), "clique-6"),
        (topology::grid(3, 4), "grid-3x4"),
    ] {
        let r = run(&g, 2, 17);
        assert!(r.verdict(), "{label}: {}", r.fingerprint());
        assert_eq!(r.mistakes, 0, "{label}: exclusion violated");
        assert_eq!(r.starving, 0, "{label}: wait-freedom violated");
        assert!(
            r.eats.iter().all(|&e| e == ScaleConfig::default().sessions),
            "{label}: every process must finish its sessions"
        );
    }
}
