//! Model-based fuzzing of the raw Algorithm 1 state machines.
//!
//! Independent of `ekbd-sim`, this harness shuttles messages between
//! `DiningProcess` instances through explicit per-edge FIFO queues, so the
//! conservation lemmas can be checked *including messages in flight*:
//!
//! * Lemma 1.2 — exactly one fork per edge (holders + in-transit `Fork`s),
//! * token conservation — exactly one token per edge (holders + in-transit
//!   `Request`s),
//! * Lemma 2.2 — at most one pending ping per direction, and the `pinged`
//!   flag exactly matches the pending evidence (a `Ping` in flight, a
//!   deferral at the peer, or an `Ack` on its way back).
//!
//! The driver explores random interleavings of deliveries, hunger, meal
//! endings, suspicion flips, and (in crash mode) crashes; a final
//! "convergence" phase checks message-level wait-freedom: once suspicions
//! are exact and all traffic drains, every hungry live process eats.

use ekbd::dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningProcess};
use ekbd::graph::{coloring, random, topology, ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

struct Shuttle {
    graph: ConflictGraph,
    procs: Vec<DiningProcess>,
    /// FIFO queue per ordered neighbor pair.
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<DiningMsg>>,
    crashed: Vec<bool>,
    suspects: Vec<BTreeSet<ProcessId>>,
    rng: StdRng,
}

impl Shuttle {
    fn new(graph: ConflictGraph, seed: u64) -> Self {
        let colors = coloring::greedy(&graph);
        let procs = graph
            .processes()
            .map(|p| DiningProcess::from_graph(&graph, &colors, p))
            .collect();
        let mut channels = BTreeMap::new();
        for e in graph.edges() {
            channels.insert((e.lo, e.hi), VecDeque::new());
            channels.insert((e.hi, e.lo), VecDeque::new());
        }
        let n = graph.len();
        Shuttle {
            graph,
            procs,
            channels,
            crashed: vec![false; n],
            suspects: vec![BTreeSet::new(); n],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn apply(&mut self, p: ProcessId, input: DiningInput<DiningMsg>) {
        if self.crashed[p.index()] {
            return;
        }
        let mut sends = Vec::new();
        let suspects = self.suspects[p.index()].clone();
        self.procs[p.index()].handle(input, &suspects, &mut sends);
        for (to, msg) in sends {
            self.channels
                .get_mut(&(p, to))
                .expect("sends only go to neighbors")
                .push_back(msg);
        }
    }

    /// Delivers the head of one nonempty channel; drops at crashed dests.
    fn deliver_one(&mut self) -> bool {
        let nonempty: Vec<(ProcessId, ProcessId)> = self
            .channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&k, _)| k)
            .collect();
        let Some(&(from, to)) = nonempty.choose(&mut self.rng) else {
            return false;
        };
        let msg = self
            .channels
            .get_mut(&(from, to))
            .and_then(|q| q.pop_front())
            .expect("chosen channel is nonempty");
        if !self.crashed[to.index()] {
            self.apply(to, DiningInput::Message { from, msg });
        }
        true
    }

    fn in_transit(&self, a: ProcessId, b: ProcessId, pred: impl Fn(&DiningMsg) -> bool) -> usize {
        [(a, b), (b, a)]
            .iter()
            .map(|k| self.channels[k].iter().filter(|m| pred(m)).count())
            .sum()
    }

    fn both_live_never_crashed(&self, a: ProcessId, b: ProcessId) -> bool {
        !self.crashed[a.index()] && !self.crashed[b.index()]
    }

    /// The conservation invariants, checked over every edge.
    fn check_invariants(&self, label: &str) {
        for e in self.graph.edges() {
            let (a, b) = (e.lo, e.hi);
            let forks_held = self.procs[a.index()].holds_fork(b) as usize
                + self.procs[b.index()].holds_fork(a) as usize;
            let forks_wire = self.in_transit(a, b, |m| matches!(m, DiningMsg::Fork));
            let fork_total = forks_held + forks_wire;
            let tokens_held = self.procs[a.index()].holds_token(b) as usize
                + self.procs[b.index()].holds_token(a) as usize;
            let tokens_wire = self.in_transit(a, b, |m| matches!(m, DiningMsg::Request { .. }));
            let token_total = tokens_held + tokens_wire;
            if self.both_live_never_crashed(a, b) {
                assert_eq!(fork_total, 1, "{label}: fork conservation on {e:?}");
                assert_eq!(token_total, 1, "{label}: token conservation on {e:?}");
            } else {
                // Messages to a crashed endpoint are dropped: the resource
                // can be lost but never duplicated.
                assert!(fork_total <= 1, "{label}: duplicated fork on {e:?}");
                assert!(token_total <= 1, "{label}: duplicated token on {e:?}");
            }
            // Lemma 2.2 per direction, crash-free edges only (drops break
            // the conservation but never create duplicates).
            for (i, j) in [(a, b), (b, a)] {
                let ping_wire = self.channels[&(i, j)]
                    .iter()
                    .filter(|m| matches!(m, DiningMsg::Ping))
                    .count();
                let ack_wire = self.channels[&(j, i)]
                    .iter()
                    .filter(|m| matches!(m, DiningMsg::Ack))
                    .count();
                let deferred = self.procs[j.index()].deferring_ack(i) as usize;
                let evidence = ping_wire + ack_wire + deferred;
                if self.both_live_never_crashed(a, b) {
                    assert_eq!(
                        self.procs[i.index()].ping_pending(j) as usize,
                        evidence,
                        "{label}: Lemma 2.2 evidence mismatch {i}→{j}"
                    );
                }
                assert!(evidence <= 1, "{label}: more than one pending ping {i}→{j}");
            }
        }
    }

    /// Sets suspicion to exactly the crashed neighbors and notifies.
    fn converge_suspicions(&mut self) {
        for i in 0..self.procs.len() {
            if self.crashed[i] {
                continue;
            }
            let p = ProcessId::from(i);
            let exact: BTreeSet<ProcessId> = self
                .graph
                .neighbors(p)
                .iter()
                .copied()
                .filter(|q| self.crashed[q.index()])
                .collect();
            if self.suspects[i] != exact {
                self.suspects[i] = exact;
                self.apply(p, DiningInput::SuspicionChange);
            }
        }
    }

    /// Drains all channels and ends all meals until quiescent; returns the
    /// number of iterations used.
    fn settle(&mut self, max_iters: usize, label: &str) -> usize {
        for iter in 0..max_iters {
            let mut progress = false;
            // End every meal (finite eating).
            for i in 0..self.procs.len() {
                if !self.crashed[i] && self.procs[i].state() == DinerState::Eating {
                    self.apply(ProcessId::from(i), DiningInput::DoneEating);
                    progress = true;
                }
            }
            while self.deliver_one() {
                progress = true;
            }
            self.check_invariants(label);
            if !progress {
                return iter;
            }
        }
        panic!("{label}: did not settle within {max_iters} iterations");
    }
}

fn fuzz(graph: ConflictGraph, seed: u64, steps: usize, crash_prob: f64) {
    let mut s = Shuttle::new(graph, seed);
    let n = s.procs.len();
    for step in 0..steps {
        let roll: f64 = s.rng.gen();
        if roll < 0.55 {
            s.deliver_one();
        } else if roll < 0.75 {
            let p = ProcessId::from(s.rng.gen_range(0..n));
            if s.procs[p.index()].state() == DinerState::Thinking {
                s.apply(p, DiningInput::Hungry);
            }
        } else if roll < 0.90 {
            let p = ProcessId::from(s.rng.gen_range(0..n));
            if s.procs[p.index()].state() == DinerState::Eating {
                s.apply(p, DiningInput::DoneEating);
            }
        } else if roll < 0.97 {
            // Random (possibly false) suspicion flip of one neighbor.
            let p = ProcessId::from(s.rng.gen_range(0..n));
            if !s.crashed[p.index()] && s.graph.degree(p) > 0 {
                let nbrs = s.graph.neighbors(p);
                let q = nbrs[s.rng.gen_range(0..nbrs.len())];
                if !s.suspects[p.index()].remove(&q) {
                    s.suspects[p.index()].insert(q);
                }
                s.apply(p, DiningInput::SuspicionChange);
            }
        } else if s.rng.gen_bool(crash_prob) {
            let p = s.rng.gen_range(0..n);
            s.crashed[p] = true;
        }
        if step % 7 == 0 {
            s.check_invariants("fuzz");
        }
    }
    // Convergence phase: exact suspicions, drain everything, and verify
    // message-level wait-freedom — every live hungry process eats.
    s.converge_suspicions();
    // Hungry processes may need several grant/drain rounds (doorway, then
    // forks, with fork bouncing between hungry insiders).
    for _ in 0..3 * n + 10 {
        s.settle(10_000, "converge");
        s.converge_suspicions();
        let any_hungry = (0..n).any(|i| !s.crashed[i] && s.procs[i].state() == DinerState::Hungry);
        if !any_hungry {
            break;
        }
        // Feed one meal ending per round so doorway insiders cycle through.
        for i in 0..n {
            if !s.crashed[i] && s.procs[i].state() == DinerState::Eating {
                s.apply(ProcessId::from(i), DiningInput::DoneEating);
            }
        }
    }
    s.settle(10_000, "final");
    for i in 0..n {
        if !s.crashed[i] {
            assert_ne!(
                s.procs[i].state(),
                DinerState::Hungry,
                "p{i} starved at the message level (seed {seed})"
            );
        }
    }
}

#[test]
fn fuzz_ring_crash_free() {
    for seed in 0..12 {
        fuzz(topology::ring(5), seed, 2_000, 0.0);
    }
}

#[test]
fn fuzz_clique_crash_free() {
    for seed in 0..8 {
        fuzz(topology::clique(5), seed, 2_500, 0.0);
    }
}

#[test]
fn fuzz_with_crashes() {
    for seed in 0..12 {
        fuzz(topology::grid(3, 3), seed, 3_000, 0.6);
    }
}

#[test]
fn fuzz_random_graphs_with_crashes() {
    for seed in 0..8 {
        let g = random::connected_gnp(8, 0.4, 100 + seed);
        fuzz(g, seed, 2_500, 0.5);
    }
}

#[test]
fn fuzz_star_and_wheel() {
    for seed in 0..6 {
        fuzz(topology::star(6), seed, 2_000, 0.3);
        fuzz(topology::wheel(6), seed, 2_000, 0.3);
    }
}
