//! Integration of the threaded real-time runtime: the same state machines
//! on OS threads, with wall-clock heartbeats and genuine thread crashes.
//!
//! Timings are deliberately generous — these tests assert liveness shapes,
//! not latency numbers, so they stay robust on loaded CI machines.

use ekbd::dining::DiningObs;
use ekbd::graph::{topology, ProcessId};
use ekbd::metrics::{ExclusionReport, SchedEvent};
use ekbd::runtime::{RuntimeConfig, ThreadedDining};
use ekbd::sim::Time;
use std::time::Duration;

fn eats_per_process(events: &[SchedEvent], n: usize) -> Vec<u32> {
    let mut eats = vec![0u32; n];
    for e in events {
        if e.obs == DiningObs::StartedEating {
            eats[e.process.index()] += 1;
        }
    }
    eats
}

#[test]
fn threaded_clique_schedules_everyone_exclusively() {
    let g = topology::clique(4);
    // A deliberately huge suspicion timeout: on a loaded machine a thread
    // can stall past the default 100 ms and trigger a *legal* ◇WX mistake
    // via false suspicion; with no crash in this test we want the
    // mistake-free regime, so rule false suspicion out entirely.
    let cfg = RuntimeConfig {
        heartbeat: ekbd::detector::HeartbeatConfig {
            period: 10,
            initial_timeout: 60_000,
            timeout_increment: 50,
        },
        eat_ms: 5,
        ..RuntimeConfig::default()
    };
    let sys = ThreadedDining::spawn(g.clone(), cfg);
    for _ in 0..8 {
        for i in 0..4 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    let events = sys.shutdown_after(Duration::from_millis(200));
    let eats = eats_per_process(&events, 4);
    assert!(
        eats.iter().all(|&e| e >= 2),
        "everyone eats repeatedly: {eats:?}"
    );
    // No false suspicion on a local machine ⇒ no exclusion mistakes at all.
    let ex = ExclusionReport::analyze(&g, &events, &|_| None, Time(600_000));
    assert_eq!(ex.total(), 0, "{:?}", ex.mistakes);
}

#[test]
fn threaded_crash_mid_protocol_is_tolerated() {
    let g = topology::ring(4);
    let sys = ThreadedDining::spawn(g, RuntimeConfig::default());
    // Warm everyone up, then kill p2 while traffic is flowing.
    for i in 0..4 {
        sys.make_hungry(ProcessId::from(i));
    }
    std::thread::sleep(Duration::from_millis(30));
    sys.crash(ProcessId(2));
    for _ in 0..12 {
        for i in [0usize, 1, 3] {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    let events = sys.shutdown_after(Duration::from_millis(400));
    let eats = eats_per_process(&events, 4);
    // p1 and p3 are the crash's neighbors; both keep eating after the
    // detector (~100ms) kicks in.
    assert!(eats[1] >= 3 && eats[3] >= 3, "{eats:?}");
}

#[test]
fn threaded_events_are_well_formed() {
    // Event stream sanity: per process, hungry → eat → stop cycles in
    // order, with timestamps non-decreasing.
    let sys = ThreadedDining::spawn(topology::path(3), RuntimeConfig::default());
    for _ in 0..5 {
        for i in 0..3 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let events = sys.shutdown_after(Duration::from_millis(150));
    for p in 0..3 {
        let seq: Vec<DiningObs> = events
            .iter()
            .filter(|e| e.process.index() == p)
            .map(|e| e.obs)
            .collect();
        let mut expect = DiningObs::BecameHungry;
        for obs in seq {
            assert_eq!(obs, expect, "p{p} event order");
            expect = match obs {
                DiningObs::BecameHungry => DiningObs::StartedEating,
                DiningObs::StartedEating => DiningObs::StoppedEating,
                _ => DiningObs::BecameHungry,
            };
        }
    }
    let mut last = Time::ZERO;
    for e in events.iter().filter(|e| e.process == ProcessId(0)) {
        assert!(e.time >= last, "timestamps regress");
        last = e.time;
    }
}
