//! End-to-end checks of the paper's three theorems across topologies,
//! oracles, crash schedules, and seeds.

use ekbd::graph::{random, topology, ConflictGraph, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::sim::{DelayModel, Time};

fn p(i: usize) -> ProcessId {
    ProcessId::from(i)
}

fn busy_workload() -> Workload {
    Workload {
        sessions: 40,
        think: (1, 100),
        eat: (1, 15),
    }
}

/// Theorem 1 + 2 + 3 on one adversarial run; reused across shapes.
fn check_all_theorems(graph: ConflictGraph, crashes: &[(usize, u64)], seed: u64) {
    let converge = Time(2_500);
    let mut s = Scenario::new(graph)
        .seed(seed)
        .adversarial_oracle(converge, 45)
        .workload(busy_workload())
        .horizon(Time(300_000));
    for &(q, t) in crashes {
        s = s.crash(p(q), Time(t));
    }
    let report = s.run_algorithm1();
    let progress = report.progress();
    assert!(
        progress.wait_free(),
        "Theorem 2 violated (seed {seed}): starving {:?}",
        progress.starving()
    );
    assert_eq!(
        report.exclusion().after(converge),
        0,
        "Theorem 1 violated (seed {seed})"
    );
    assert!(
        report.fairness().max_overtakes_after(converge) <= 2,
        "Theorem 3 violated (seed {seed})"
    );
    assert!(
        report.max_channel_high_water <= 4,
        "§7 channel bound violated (seed {seed})"
    );
}

#[test]
fn theorems_on_ring_with_scattered_crashes() {
    for seed in 0..4 {
        check_all_theorems(topology::ring(8), &[(1, 700), (5, 1_800)], seed);
    }
}

#[test]
fn theorems_on_clique_with_majority_crashes() {
    // Arbitrarily many crashes: 4 of 6 processes die.
    for seed in 0..3 {
        check_all_theorems(
            topology::clique(6),
            &[(0, 400), (2, 900), (4, 1_500), (5, 2_200)],
            seed,
        );
    }
}

#[test]
fn theorems_on_tree_and_grid() {
    check_all_theorems(topology::binary_tree(15), &[(0, 1_000)], 11);
    check_all_theorems(topology::grid(4, 4), &[(5, 600), (10, 1_400)], 12);
}

#[test]
fn theorems_on_random_graphs() {
    for seed in 0..3 {
        let g = random::connected_gnp(12, 0.3, seed + 50);
        check_all_theorems(g, &[(3, 800)], seed);
    }
}

#[test]
fn crash_while_eating_does_not_block_neighbors() {
    // Force p0 to be mid-meal when it crashes: long eats, crash early.
    let report = Scenario::new(topology::ring(5))
        .seed(2)
        .perfect_oracle()
        .workload(Workload {
            sessions: 20,
            think: (1, 10),
            eat: (200, 300),
        })
        .crash(p(0), Time(150)) // during its (probable) first meal
        .horizon(Time(400_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    // Its fork-starved neighbors still completed all their sessions.
    for i in [1usize, 4] {
        assert_eq!(report.progress().per_process[i].completed, 20, "p{i}");
    }
}

#[test]
fn heartbeat_detector_end_to_end_under_gst() {
    // A genuinely-implemented ◇P₁ (no scripting): the run must still
    // satisfy all theorems relative to the *measured* convergence time.
    let hb = ekbd::detector::HeartbeatConfig {
        period: 10,
        initial_timeout: 40,
        timeout_increment: 30,
    };
    for seed in 0..3 {
        let report = Scenario::new(topology::ring(6))
            .seed(seed)
            .heartbeat_oracle(hb)
            .delay(DelayModel::Gst {
                gst: Time(1_000),
                pre_max: 150,
                delta: 5,
            })
            .crash(p(3), Time(1_500))
            .workload(busy_workload())
            .horizon(Time(400_000))
            .run_algorithm1();
        let conv = report.detector_convergence();
        assert!(conv < report.horizon, "detector converged (seed {seed})");
        assert!(report.progress().wait_free(), "seed {seed}");
        assert_eq!(report.exclusion().after(conv), 0, "seed {seed}");
        assert!(
            report.fairness().max_overtakes_after(conv) <= 2,
            "seed {seed}"
        );
    }
}

#[test]
fn continuously_hungry_victim_is_overtaken_at_most_twice() {
    // One process (the star hub, lowest priority) is kept continuously
    // hungry by greedy high-priority leaves; in the suffix it may be
    // overtaken at most twice per session by any single neighbor.
    let g = topology::star(5);
    let mut colors = vec![1; 5];
    colors[0] = 0;
    let report = Scenario::new(g)
        .colors(colors)
        .seed(9)
        .workload(Workload {
            sessions: 80,
            think: (1, 4),
            eat: (10, 20),
        })
        .horizon(Time(500_000))
        .run_algorithm1();
    assert!(report.progress().wait_free());
    // Silent oracle and no crashes: the ◇2-BW bound holds from time zero.
    assert!(report.fairness().max_overtakes() <= 2);
}

#[test]
fn quiescence_and_finite_mistakes_are_per_run_bounded() {
    let report = Scenario::new(topology::grid(3, 3))
        .seed(4)
        .adversarial_oracle(Time(2_000), 30)
        .crash(p(4), Time(1_200))
        .workload(busy_workload())
        .horizon(Time(300_000))
        .run_algorithm1();
    let q = report.quiescence();
    assert!(q.quiescent_by(report.horizon));
    assert!(q.total() <= 4 * 4, "≤ 4 messages per live neighbor of p4");
    // Finitely many mistakes: the last one ends strictly before the horizon.
    if let Some(last) = report.exclusion().last_mistake_end() {
        assert!(last < Time(2_100), "mistakes stop at convergence");
    }
}

#[test]
fn no_oracle_no_crash_equals_classic_dining() {
    // With a silent oracle and no crashes Algorithm 1 is a classic dining
    // solution: perpetual exclusion (zero mistakes in the whole run) and
    // 2-bounded waiting throughout.
    for seed in 0..5 {
        let report = Scenario::new(topology::ring(7))
            .seed(seed)
            .workload(busy_workload())
            .horizon(Time(300_000))
            .run_algorithm1();
        assert_eq!(report.exclusion().total(), 0, "seed {seed}");
        assert!(report.fairness().max_overtakes() <= 2, "seed {seed}");
        assert!(report.progress().wait_free(), "seed {seed}");
        assert_eq!(report.progress().total_sessions(), 7 * 40);
    }
}

#[test]
fn probe_detector_end_to_end_under_gst() {
    // The pull-based ◇P₁ implementation drives the same guarantees.
    let cfg = ekbd::detector::ProbeConfig {
        period: 10,
        initial_timeout: 60,
        timeout_increment: 30,
    };
    for seed in 0..3 {
        let report = Scenario::new(topology::ring(6))
            .seed(seed)
            .probe_oracle(cfg)
            .delay(DelayModel::Gst {
                gst: Time(1_000),
                pre_max: 150,
                delta: 5,
            })
            .crash(p(3), Time(1_500))
            .workload(busy_workload())
            .horizon(Time(400_000))
            .run_algorithm1();
        let conv = report.detector_convergence();
        assert!(
            conv < report.horizon,
            "probe ◇P₁ must converge (seed {seed})"
        );
        assert!(report.progress().wait_free(), "seed {seed}");
        assert_eq!(report.exclusion().after(conv), 0, "seed {seed}");
        assert!(
            report.fairness().max_overtakes_after(conv) <= 2,
            "seed {seed}"
        );
        assert!(
            report.quiescence().quiescent_by(report.horizon),
            "seed {seed}"
        );
    }
}
