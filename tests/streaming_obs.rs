//! Streaming-vs-dense observation equivalence (scale-tier satellite).
//!
//! The streaming aggregator (`Scenario::run_algorithm1_streaming`) must
//! report *exactly* the dense pipeline's headline numbers — latency
//! median, mistake count, convergence tick — on the reference topologies,
//! including a scenario adversarial enough to produce non-zero mistakes.

use ekbd_graph::{topology, ConflictGraph, ProcessId};
use ekbd_harness::{Scenario, StreamingRunReport, Workload};
use ekbd_sim::Time;

fn scenario(g: ConflictGraph, seed: u64) -> Scenario {
    Scenario::new(g)
        .seed(seed)
        .workload(Workload {
            sessions: 6,
            think: (1, 40),
            eat: (1, 12),
        })
        .horizon(Time(60_000))
}

/// Asserts the streaming report matches the dense analyses of the same
/// scenario, claim by claim.
fn assert_equivalent(s: &Scenario, label: &str) -> StreamingRunReport {
    let dense = s.run_algorithm1();
    let streaming = s.run_algorithm1_streaming();

    let exclusion = dense.exclusion();
    assert_eq!(
        streaming.mistakes,
        exclusion.total() as u64,
        "{label}: mistake counts diverged"
    );

    let progress = dense.progress();
    assert_eq!(
        streaming.total_sessions(),
        progress.total_sessions() as u64,
        "{label}: completed-session counts diverged"
    );
    for (i, stats) in progress.per_process.iter().enumerate() {
        assert_eq!(
            streaming.eats[i] as usize, stats.completed,
            "{label}: p{i} session count diverged"
        );
    }
    let summary = progress.latency_summary();
    assert_eq!(
        streaming.latency.count(),
        summary.count as u64,
        "{label}: latency sample counts diverged"
    );
    assert_eq!(
        streaming.latency.quantile(0.5),
        summary.p50,
        "{label}: latency medians diverged"
    );
    assert_eq!(
        streaming.latency.quantile(0.99),
        summary.p99,
        "{label}: latency p99 diverged"
    );
    assert_eq!(
        streaming.latency.min(),
        summary.min,
        "{label}: latency minima diverged"
    );
    assert_eq!(
        streaming.latency.max(),
        summary.max,
        "{label}: latency maxima diverged"
    );

    assert_eq!(
        streaming.convergence,
        dense.detector_convergence(),
        "{label}: convergence ticks diverged"
    );
    assert_eq!(
        streaming.starving,
        progress.starving(),
        "{label}: starvation witnesses diverged"
    );
    assert_eq!(
        streaming.dining_sends,
        dense.dining_sends.len() as u64,
        "{label}: dining-send counts diverged"
    );
    streaming
}

#[test]
fn ring_8_fault_free() {
    let r = assert_equivalent(&scenario(topology::ring(8), 11), "ring-8");
    assert_eq!(r.mistakes, 0, "fault-free run must be mistake-free");
    assert!(r.wait_free());
    assert_eq!(r.total_sessions(), 8 * 6);
}

#[test]
fn clique_6_fault_free() {
    let r = assert_equivalent(&scenario(topology::clique(6), 23), "clique-6");
    assert_eq!(r.mistakes, 0);
    assert!(r.wait_free());
}

#[test]
fn grid_3x4_fault_free() {
    let r = assert_equivalent(&scenario(topology::grid(3, 4), 31), "grid-3x4");
    assert_eq!(r.mistakes, 0);
    assert!(r.wait_free());
}

#[test]
fn adversarial_oracle_with_crash_still_matches() {
    // An adversarial oracle plus a crash exercises every streaming code
    // path: suspicion churn (convergence bookkeeping), a crashed process
    // (cut-time trimming in the mistake and starvation checks), and a
    // completeness obligation for the crash.
    let s = scenario(topology::ring(8), 47)
        .adversarial_oracle(Time(9_000), 60)
        .crash(ProcessId(3), Time(4_000));
    let r = assert_equivalent(&s, "ring-8-adversarial");
    assert!(
        r.convergence > Time::ZERO,
        "suspicion churn must leave a convergence witness"
    );
}

#[test]
fn naive_baseline_mistakes_match_too() {
    // The naive crash-oblivious workload on a dense graph with adversarial
    // suspicions: Algorithm 1 still avoids overlaps after convergence, but
    // pre-convergence false suspicions make it eat through the doorway —
    // the scenario most likely to produce real overlap pairs. Whatever the
    // count is, streaming and dense must agree on it (the equivalence is
    // the claim here, and this seed deterministically produces dozens).
    let s = scenario(topology::clique(5), 5)
        .adversarial_oracle(Time(12_000), 40)
        .workload(Workload {
            sessions: 8,
            think: (1, 10),
            eat: (4, 14),
        });
    let r = assert_equivalent(&s, "clique-5-adversarial");
    assert!(
        r.mistakes > 0,
        "this scenario must exercise the non-zero-mistake path"
    );
}
