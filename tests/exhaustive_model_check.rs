//! Exhaustive model checking of Algorithm 1 on small instances.
//!
//! Unlike the randomized fuzzers, this explores **every** reachable
//! configuration of the composed system (process states × channel
//! contents × remaining workload) by memoized depth-first search over all
//! interleavings of message deliveries and environment actions, and
//! asserts in every reachable state:
//!
//! * **safety** — with an accurate-from-the-start oracle (only genuinely
//!   crashed processes suspected), no two live neighbors are ever eating
//!   simultaneously, in *any* schedule (perpetual weak exclusion, the
//!   special case of Theorem 1 where convergence happened at time 0);
//! * **fork/token conservation** (Lemmas 1.1–1.2), counting in-flight
//!   messages;
//! * **channel bound** — every directed channel holds ≤ 2 messages, i.e.
//!   ≤ 4 per edge (§7);
//! * **deadlock-freedom** — every *terminal* state (no deliveries or
//!   environment actions possible) has no live hungry process: progress
//!   cannot wedge, under any schedule.
//!
//! This is the strongest correctness statement in the test suite: for
//! these instances the theorems hold not just on sampled runs but on the
//! complete reachable state space.

use ekbd::dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningProcess};
use ekbd::graph::{ConflictGraph, ProcessId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// The composed system configuration.
#[derive(Clone, PartialEq, Eq, Hash)]
struct World {
    procs: Vec<DiningProcess>,
    /// One FIFO queue per directed edge, indexed as in `Model::dirs`.
    chans: Vec<VecDeque<DiningMsg>>,
    /// Hungry sessions each process may still start.
    sessions_left: Vec<u8>,
}

struct Model {
    graph: ConflictGraph,
    /// Directed edges (from, to) in a fixed order.
    dirs: Vec<(ProcessId, ProcessId)>,
    crashed: Vec<bool>,
    /// Static, exact suspicion: each live process suspects exactly its
    /// crashed neighbors from time zero.
    suspects: Vec<BTreeSet<ProcessId>>,
    /// Safety valve for the search.
    max_states: usize,
}

impl Model {
    fn new(graph: ConflictGraph, colors: &[u32], crashed_ids: &[usize]) -> Self {
        let n = graph.len();
        let crashed: Vec<bool> = (0..n).map(|i| crashed_ids.contains(&i)).collect();
        let suspects: Vec<BTreeSet<ProcessId>> = (0..n)
            .map(|i| {
                graph
                    .neighbors(ProcessId::from(i))
                    .iter()
                    .copied()
                    .filter(|q| crashed[q.index()])
                    .collect()
            })
            .collect();
        let mut dirs = Vec::new();
        for e in graph.edges() {
            dirs.push((e.lo, e.hi));
            dirs.push((e.hi, e.lo));
        }
        let _ = colors;
        Model {
            graph,
            dirs,
            crashed,
            suspects,
            max_states: 6_000_000,
        }
    }

    fn initial(&self, colors: &[u32], sessions: u8) -> World {
        let procs = self
            .graph
            .processes()
            .map(|p| DiningProcess::from_graph(&self.graph, colors, p))
            .collect();
        World {
            procs,
            chans: vec![VecDeque::new(); self.dirs.len()],
            sessions_left: vec![sessions; self.graph.len()],
        }
    }

    fn dir_index(&self, from: ProcessId, to: ProcessId) -> usize {
        self.dirs
            .iter()
            .position(|&(f, t)| f == from && t == to)
            .expect("message sent on a non-edge")
    }

    /// Applies one input to process `p`, routing its sends.
    fn apply(&self, w: &mut World, p: ProcessId, input: DiningInput<DiningMsg>) {
        let mut sends = Vec::new();
        let sus = &self.suspects[p.index()];
        w.procs[p.index()].handle(input, sus, &mut sends);
        for (to, msg) in sends {
            w.chans[self.dir_index(p, to)].push_back(msg);
        }
    }

    /// All successor worlds.
    fn successors(&self, w: &World) -> Vec<World> {
        let mut next = Vec::new();
        // Deliveries: head of each nonempty channel.
        for (d, &(from, to)) in self.dirs.iter().enumerate() {
            if w.chans[d].is_empty() {
                continue;
            }
            let mut w2 = w.clone();
            let msg = w2.chans[d].pop_front().expect("nonempty");
            if !self.crashed[to.index()] {
                self.apply(&mut w2, to, DiningInput::Message { from, msg });
            }
            next.push(w2);
        }
        // Environment: hunger and meal endings.
        for i in 0..w.procs.len() {
            if self.crashed[i] {
                continue;
            }
            let p = ProcessId::from(i);
            if w.procs[i].state() == DinerState::Thinking && w.sessions_left[i] > 0 {
                let mut w2 = w.clone();
                w2.sessions_left[i] -= 1;
                self.apply(&mut w2, p, DiningInput::Hungry);
                next.push(w2);
            }
            if w.procs[i].state() == DinerState::Eating {
                let mut w2 = w.clone();
                self.apply(&mut w2, p, DiningInput::DoneEating);
                next.push(w2);
            }
        }
        next
    }

    /// Invariants that must hold in every reachable world.
    fn check(&self, w: &World) {
        for e in self.graph.edges() {
            let (a, b) = (e.lo, e.hi);
            let live = |q: ProcessId| !self.crashed[q.index()];
            // Safety: with exact suspicion from time 0, exclusion is
            // perpetual for live pairs.
            if live(a) && live(b) {
                assert!(
                    !(w.procs[a.index()].state() == DinerState::Eating
                        && w.procs[b.index()].state() == DinerState::Eating),
                    "live neighbors {a} and {b} eating simultaneously"
                );
            }
            // Conservation (drops only happen at crashed endpoints).
            let wire = |pred: &dyn Fn(&DiningMsg) -> bool| -> usize {
                w.chans[self.dir_index(a, b)]
                    .iter()
                    .filter(|m| pred(m))
                    .count()
                    + w.chans[self.dir_index(b, a)]
                        .iter()
                        .filter(|m| pred(m))
                        .count()
            };
            let forks = w.procs[a.index()].holds_fork(b) as usize
                + w.procs[b.index()].holds_fork(a) as usize
                + wire(&|m| matches!(m, DiningMsg::Fork));
            let tokens = w.procs[a.index()].holds_token(b) as usize
                + w.procs[b.index()].holds_token(a) as usize
                + wire(&|m| matches!(m, DiningMsg::Request { .. }));
            if live(a) && live(b) {
                assert_eq!(forks, 1, "fork conservation on {e:?}");
                assert_eq!(tokens, 1, "token conservation on {e:?}");
            } else {
                assert!(forks <= 1 && tokens <= 1, "duplication on {e:?}");
            }
        }
        // §7: at most 2 messages per directed channel (4 per edge).
        for (d, q) in w.chans.iter().enumerate() {
            assert!(
                q.len() <= 2,
                "channel {:?} holds {} messages",
                self.dirs[d],
                q.len()
            );
        }
    }

    /// Memoized DFS over the full reachable state space. Returns the number
    /// of distinct states and the number of terminal states seen.
    fn explore(&self, start: World) -> (usize, usize) {
        let mut seen: HashSet<World> = HashSet::new();
        let mut stack = vec![start];
        let mut terminals = 0usize;
        while let Some(w) = stack.pop() {
            if !seen.insert(w.clone()) {
                continue;
            }
            assert!(
                seen.len() <= self.max_states,
                "state space exceeded {} states",
                self.max_states
            );
            self.check(&w);
            let succ = self.successors(&w);
            if succ.is_empty() {
                terminals += 1;
                // Deadlock-freedom / liveness: a terminal world has no
                // live hungry process (everyone who wanted to eat ate).
                for i in 0..w.procs.len() {
                    if !self.crashed[i] {
                        assert_ne!(
                            w.procs[i].state(),
                            DinerState::Hungry,
                            "p{i} wedged hungry in a terminal state"
                        );
                    }
                }
            } else {
                stack.extend(succ);
            }
        }
        (seen.len(), terminals)
    }
}

fn path2() -> (ConflictGraph, Vec<u32>) {
    (ConflictGraph::from_pairs(2, &[(0, 1)]), vec![1, 0])
}

fn path3() -> (ConflictGraph, Vec<u32>) {
    (
        ConflictGraph::from_pairs(3, &[(0, 1), (1, 2)]),
        vec![1, 0, 2],
    )
}

fn triangle() -> (ConflictGraph, Vec<u32>) {
    (
        ConflictGraph::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]),
        vec![0, 1, 2],
    )
}

#[test]
fn exhaustive_two_processes_two_sessions() {
    let (g, colors) = path2();
    let model = Model::new(g, &colors, &[]);
    let start = model.initial(&colors, 2);
    let (states, terminals) = model.explore(start);
    println!("2-path: {states} states, {terminals} terminal");
    assert!(states > 100, "the search actually explored something");
    assert!(terminals >= 1);
}

#[test]
fn exhaustive_three_path_two_sessions() {
    let (g, colors) = path3();
    let model = Model::new(g, &colors, &[]);
    let start = model.initial(&colors, 2);
    let (states, _) = model.explore(start);
    println!("3-path: {states} states");
    assert!(states > 5_000);
}

#[test]
fn exhaustive_triangle_two_sessions() {
    let (g, colors) = triangle();
    let model = Model::new(g, &colors, &[]);
    let start = model.initial(&colors, 2);
    let (states, _) = model.explore(start);
    println!("triangle: {states} states");
    assert!(states > 10_000);
}

#[test]
fn exhaustive_with_crashed_neighbor() {
    // p1 (the middle of a 3-path) is crashed from the start and exactly
    // suspected by both neighbors: in EVERY schedule both outer processes
    // complete their sessions (wait-freedom, exhaustively).
    let (g, colors) = path3();
    let model = Model::new(g, &colors, &[1]);
    let start = model.initial(&colors, 2);
    let (states, terminals) = model.explore(start);
    println!("3-path with crashed middle: {states} states, {terminals} terminal");
    assert!(terminals >= 1);
}

#[test]
fn exhaustive_two_processes_one_crashed() {
    // The lone live process must always reach its meals despite the dead
    // fork holder.
    let (g, colors) = path2();
    let model = Model::new(g, &colors, &[0]); // p0 (fork holder) dead
    let start = model.initial(&colors, 3);
    let (states, terminals) = model.explore(start);
    println!("2-path, fork holder dead: {states} states, {terminals} terminal");
    assert!(terminals >= 1);
}
